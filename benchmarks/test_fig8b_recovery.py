"""Fig. 8b — recovery bandwidth right after the update phase (HDD).

Paper shape: TSUE's recovery bandwidth is closest to FO's (the no-log
reference) because real-time recycling leaves ~no log debt to settle; the
deferred-log methods (PL, PLR, PARIX) pay log settlement before rebuilding.
"""

from repro.harness import fig8


def test_fig8b_recovery_bandwidth(once):
    text, rows = once(lambda: fig8.run_fig8b())
    print("\n" + text)

    for volume, vals in rows.items():
        fo = vals["FO"]
        # FO (no logs to settle) is the reference ceiling
        assert fo == max(vals.values()), (volume, vals)
        # the deferred-log methods pay heavy log settlement before rebuild:
        # TSUE's real-time recycling beats PL and PARIX by a wide margin
        assert vals["TSUE"] > 3.0 * vals["PL"], (volume, vals)
        assert vals["TSUE"] > 3.0 * vals["PARIX"], (volume, vals)
        # TSUE retains a usable fraction of the no-log ceiling.  The paper
        # reports TSUE ~= FO: at full scale a node rebuild moves hundreds of
        # GB against a quota-bounded log backlog, so the settle term
        # vanishes; at sim scale the rebuilt volume is small and the
        # constant settle shows as a gap (see EXPERIMENTS.md deviations).
        assert vals["TSUE"] > 0.08 * fo, (volume, vals)
