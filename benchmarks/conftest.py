"""Benchmark-suite configuration.

Each benchmark regenerates one table/figure of the paper on a scaled-down
cluster (see DESIGN.md §5) and asserts the paper's qualitative *shape* —
who wins and by roughly what factor.  Set ``REPRO_SCALE=full`` for runs
closer to paper scale.

The experiments are single-shot simulations (deterministic, seconds long),
so every benchmark uses ``benchmark.pedantic(..., rounds=1)``.
"""

import pathlib

import pytest

_BENCH_DIR = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(items):
    # every benchmark regenerates a full table/figure: slow by definition,
    # excluded from the fast CI tier (pytest -m "not slow").  The hook sees
    # the whole session's items, so scope to this directory.
    for item in items:
        if _BENCH_DIR in pathlib.Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture
def once(benchmark):
    """Run a zero-arg callable exactly once under pytest-benchmark timing."""

    def run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

    return run
