"""Fig. 5 — aggregate update throughput on the SSD cluster.

Paper shape: TSUE wins every (trace, RS, clients) cell; its advantage grows
with the parity count M (1.5x FO at M=2 -> 2.9x at M=4 in the paper); PLR is
the worst SOTA tier; PL is the best baseline.
"""

import pytest

from repro.harness import fig5


def _assert_tsue_wins_every_cell(data):
    for row, vals in data.items():
        best = max(vals, key=vals.get)
        assert best == "TSUE", f"{row}: {best} beat TSUE ({vals})"


def _assert_gap_grows_with_m(data):
    """TSUE/FO ratio at RS(6,4) must exceed the ratio at RS(6,2)."""
    for trace in ("alicloud", "tencloud"):
        lo = [v for r, v in data.items() if trace in r and "RS(6,2)" in r]
        hi = [v for r, v in data.items() if trace in r and "RS(6,4)" in r]
        if not lo or not hi:
            continue  # scale did not include both RS codes
        r_lo = lo[0]["TSUE"] / lo[0]["FO"]
        r_hi = hi[0]["TSUE"] / hi[0]["FO"]
        assert r_hi > r_lo, f"{trace}: ratio {r_lo:.2f} -> {r_hi:.2f} did not grow"


def _assert_pl_is_best_baseline(data):
    for row, vals in data.items():
        baselines = {k: v for k, v in vals.items() if k != "TSUE"}
        assert max(baselines, key=baselines.get) == "PL", (row, vals)


def _assert_plr_worst_tier(data):
    """PLR lands in the bottom two baselines in every cell."""
    for row, vals in data.items():
        baselines = sorted((v, k) for k, v in vals.items() if k != "TSUE")
        bottom_two = {k for _v, k in baselines[:2]}
        assert "PLR" in bottom_two, (row, baselines)


def _assert_ratio_bands(data):
    """TSUE/PL in [1.2, 3.5] and TSUE/PLR in [2, 12] — the paper reports
    1.5-2.2x and 3.9-10.1x; generous bands, the substrate is a simulator."""
    for row, vals in data.items():
        assert 1.2 <= vals["TSUE"] / vals["PL"] <= 3.5, (row, vals)
        assert 2.0 <= vals["TSUE"] / vals["PLR"] <= 12.0, (row, vals)


def test_fig5_throughput(once):
    text, data = once(lambda: fig5.run())
    print("\n" + text)

    _assert_tsue_wins_every_cell(data)
    _assert_gap_grows_with_m(data)
    _assert_pl_is_best_baseline(data)
    _assert_plr_worst_tier(data)
    _assert_ratio_bands(data)
