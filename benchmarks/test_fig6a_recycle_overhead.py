"""Fig. 6a — back-end recycle overhead on foreground updates.

Paper shape: with a 2-unit quota update throughput is "minimal" (appends
stall behind recycling); with >= 4 units it is significantly higher and
stable over the run.
"""

from repro.harness import fig6


def test_fig6a_quota_effect(once):
    text, data = once(lambda: fig6.run_fig6a())
    print("\n" + text)

    q2, q4 = data["quota=2"], data["quota=4"]
    # adequate quota clearly beats the starved configuration ...
    assert q4["iops"] > 1.2 * q2["iops"]
    # ... because the starved one stalls appends behind recycling more
    assert q2["stalls"] > q4["stalls"]
    # the 4-unit run sustains throughput across the run (no dead windows)
    import numpy as np

    series = np.asarray(q4["series_iops"])
    assert (series > 0).all()
