"""Engine-throughput perf tier: events/sec + sweep speedups -> BENCH_engine.json.

The tracked perf tier of the ROADMAP: every run appends one entry to the
``BENCH_engine.json`` trajectory file at the repo root (uploaded as a CI
artifact by the nightly job), recording

* **engine** — wall-clock, DES events, events/sec, and simulated-ops/sec
  of the profiled 1500-op TSUE experiment, against the recorded
  seed-engine baseline.  Events/sec rewards doing the same work with
  *more* scaffolding, so since macro-op batching (which removes events)
  the entry also carries ``sim_ops_per_sec`` — the honest throughput
  metric — and the regression gate tracks both;
* **thousand_osd** — a 1000-OSD smoke experiment (the scale regime the
  vectorized bulk ops and batched fan-outs target), recording wall-clock
  and both throughput metrics so scaling regressions show up nightly;
* **sweep** — wall-clock of a 4-cell Fig. 5 grid run serially, through the
  process pool, and from a warm content-addressed cache;
* **frontend** — per-class p99 latency and availability of the QoS x fault
  SLO grid (slo-qos-crash), so front-end service levels are tracked
  nightly alongside raw engine throughput;
* **background_interference** — foreground p99/availability of the
  maintenance-storm scenario pair with the SLO governor on vs off, plus
  per-stream grant/drain accounting: the unified background scheduler's
  foreground-protection contract, tracked nightly.

Assertions encode the perf bar:

* engine events/sec >= 2x the seed baseline,
* warm-cache sweep >= 3x faster than the cold serial sweep,
* 4-worker sweep >= 3x faster than serial — asserted only on hosts with
  >= 4 CPUs (a process pool cannot beat serial on fewer cores; the
  measurement is still recorded).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.harness.fig5 import cell_config
from repro.harness.runner import ExperimentConfig, run_experiment
from repro.harness.sweep import SweepExecutor

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
_BENCH_PATH = _REPO_ROOT / "BENCH_engine.json"

#: measured at the seed commit (PR 1 tree) on the reference container:
#: 1500-op TSUE experiment, 66220 events in 1.905 s wall
SEED_BASELINE = {
    "wall_seconds": 1.905,
    "events": 66220,
    "events_per_sec": 34760.0,
}

#: wall-clock of :func:`_calibrate` on the same reference container.  The
#: baseline above is meaningless on a host of different speed, so the
#: effective baseline is scaled by (calibration now / reference
#: calibration) — a slow shared CI runner raises its own bar accordingly
#: instead of failing without a code regression.
CALIBRATION_SECONDS = 0.205

#: required speedups (acceptance criteria of the engine overhaul PR)
MIN_ENGINE_SPEEDUP = 2.0
MIN_SWEEP_SPEEDUP = 3.0


def _calibrate() -> float:
    """Seconds for a fixed pure-Python + dict workload shaped like the
    event loop (attribute traffic, heap-ish tuples, small dict churn)."""
    t0 = time.perf_counter()
    acc = 0
    book: dict[int, int] = {}
    for i in range(600_000):
        tup = (float(i), 1, i)
        acc ^= hash(tup)
        book[i & 1023] = i
        acc += book.get((i + 7) & 1023, 0)
    assert acc != 1  # keep the loop observable
    return time.perf_counter() - t0


def _host_factor() -> tuple[float, float]:
    """``(host_factor, calibration_seconds)``, median of three samples.

    A single ~0.2s calibration sample can catch a frequency boost or a
    scheduler preemption and swing the host-speed estimate by ±25% —
    enough to push a genuine 2.2x engine speedup under the 2.0x bar (or
    mask a real regression behind a slow sample).  The median of three is
    robust to one bad sample in either direction."""
    samples = sorted(_calibrate() for _ in range(3))
    cal = samples[1]
    return (CALIBRATION_SECONDS / cal if cal > 0 else 1.0), cal


#: per-bench-kind history cap: the earliest entry of each kind (the seed
#: baseline of that trajectory) plus the most recent ones are kept; the
#: middle is dropped so the file stays reviewable instead of growing one
#: entry per nightly run forever
_KEEP_RECENT_PER_BENCH = 11


def _compact(entries: list[dict]) -> list[dict]:
    """Cap history per bench kind: first entry + last N, original order."""
    keep: set[int] = set()
    by_kind: dict[str, list[int]] = {}
    for i, entry in enumerate(entries):
        by_kind.setdefault(str(entry.get("bench")), []).append(i)
    for idxs in by_kind.values():
        keep.add(idxs[0])  # the kind's oldest entry: its seed baseline
        keep.update(idxs[-_KEEP_RECENT_PER_BENCH:])
    return [entry for i, entry in enumerate(entries) if i in keep]


def _append_bench(entry: dict) -> None:
    """Append one entry to the BENCH_engine.json trajectory file."""
    doc = {"schema": 1, "entries": []}
    if _BENCH_PATH.exists():
        try:
            doc = json.loads(_BENCH_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            pass
    doc.setdefault("entries", []).append(entry)
    doc["entries"] = _compact(doc["entries"])
    _BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")


def _sweep_cells() -> list[ExperimentConfig]:
    """The 4-cell figure sweep: one Fig. 5 subplot row (2 methods x 2 RS)."""
    return [
        cell_config(method, "tencloud", k, m, n_clients=16, n_ops=800)
        for method in ("tsue", "pl")
        for k, m in ((6, 2), (6, 4))
    ]


def test_engine_throughput(once):
    """>= 2x events/sec on the profiled 1500-op TSUE experiment.

    Best-of-5: the workload is deterministic (same event count every run),
    so run-to-run wall-clock spread is pure host noise — scheduler
    preemption, cache state, CI-runner neighbors.  The fastest run is the
    closest observation of the engine's actual cost; all five land in the
    ``runs`` field of the trajectory entry so the spread stays visible.
    """
    cfg = ExperimentConfig(method="tsue", n_ops=1500)
    results = [once(lambda: run_experiment(cfg))]
    results += [run_experiment(cfg) for _ in range(4)]
    runs = [r.perf for r in results]
    perf = max(runs, key=lambda p: p["events_per_sec"])
    # the event count is deterministic: any spread would mean the engine
    # itself went nondeterministic, which no amount of host noise excuses
    assert len({p["events"] for p in runs}) == 1, runs
    # scale the recorded reference-container baseline to this host's speed
    host_factor, cal = _host_factor()
    baseline_evps = SEED_BASELINE["events_per_sec"] * host_factor
    baseline_wall = SEED_BASELINE["wall_seconds"] / host_factor
    speedup_events = perf["events_per_sec"] / baseline_evps
    speedup_wall = baseline_wall / perf["wall_seconds"]
    _append_bench(
        {
            "bench": "engine",
            "timestamp": time.time(),
            "n_ops": cfg.n_ops,
            "macro_batching": cfg.macro_batching,
            "request_schedules": cfg.request_schedules,
            "schedule_hit_rate": perf["schedule_hit_rate"],
            "events": perf["events"],
            "wall_seconds": perf["wall_seconds"],
            "sim_seconds": perf["sim_seconds"],
            "events_per_sec": perf["events_per_sec"],
            "sim_ops_per_sec": perf["sim_ops_per_sec"],
            "runs": [
                {
                    "wall_seconds": p["wall_seconds"],
                    "events_per_sec": p["events_per_sec"],
                    "sim_ops_per_sec": p["sim_ops_per_sec"],
                }
                for p in runs
            ],
            "seed_baseline": SEED_BASELINE,
            "calibration_seconds": cal,
            "host_factor": host_factor,
            "speedup_events_per_sec": speedup_events,
            "speedup_wall": speedup_wall,
        }
    )
    assert speedup_events >= MIN_ENGINE_SPEEDUP, (
        f"engine throughput regressed: {perf['events_per_sec']:.0f} ev/s is "
        f"only {speedup_events:.2f}x the host-scaled seed baseline "
        f"({baseline_evps:.0f} ev/s); the bar is {MIN_ENGINE_SPEEDUP}x"
    )


def test_steady_state_write():
    """Isolate the path this PR's table-driven schedules optimize: a pure
    uncontended write loop (updates only, no reads, no faults, no drain),
    best-of-3.  The tracked ``engine`` entry dilutes the fast path with
    recycle/drain work; this entry is the undiluted steady-state number,
    and its ``schedule_hit_rate`` must stay at 1.0 — any admission decline
    on this workload means a probe went conservative on a fault-free
    cluster."""
    cfg = ExperimentConfig(
        method="tsue",
        trace="tencloud-writeonly",
        n_ops=1200,
        n_clients=16,
        hot_files=2,
        drain=False,
    )
    runs = [run_experiment(cfg).perf for _ in range(3)]
    perf = max(runs, key=lambda p: p["sim_ops_per_sec"])
    assert len({p["events"] for p in runs}) == 1, runs
    host_factor, cal = _host_factor()
    _append_bench(
        {
            "bench": "steady_state_write",
            "timestamp": time.time(),
            "n_ops": cfg.n_ops,
            "macro_batching": cfg.macro_batching,
            "request_schedules": cfg.request_schedules,
            "schedule_hit_rate": perf["schedule_hit_rate"],
            "events": perf["events"],
            "wall_seconds": perf["wall_seconds"],
            "events_per_sec": perf["events_per_sec"],
            "sim_ops_per_sec": perf["sim_ops_per_sec"],
            "runs": [
                {
                    "wall_seconds": p["wall_seconds"],
                    "sim_ops_per_sec": p["sim_ops_per_sec"],
                }
                for p in runs
            ],
            "calibration_seconds": cal,
            "host_factor": host_factor,
        }
    )
    # every update dispatch on a fault-free steady-state run must take the
    # compiled schedule (reads don't enter the update fast path)
    assert perf["schedule_hit_rate"] == 1.0, perf


def test_drain_phase():
    """Isolate the phase the bulk drain plane targets: replay a write-heavy
    trace, then time the drain/recycle tail on its own (the per-phase
    ``drain_*`` split in ``ExperimentResult.perf``), bulk plane on vs off,
    best-of-3 each.

    The event structure is flag-invariant by contract, so the drain event
    counts must agree across all six runs — the wall-clock ratio is then a
    pure host-math comparison: packed delta gathers + parity panels vs the
    per-extent oracle.  The ratio is recorded (with the plane's engagement
    counters) rather than pinned to a hard bar: on gather-bound workloads
    the per-byte GF table lookups are identical on both paths and the
    plane's winnable margin is the bookkeeping around them.  The assert is
    a regression floor — the plane must never make the drain materially
    slower than the oracle it replaces."""
    import dataclasses

    base = ExperimentConfig(
        method="tsue",
        trace="tencloud-writeonly",
        n_ops=1200,
        n_clients=16,
        hot_files=2,
    )
    runs: dict[bool, list] = {}
    for flag in (True, False):
        cfg = dataclasses.replace(base, bulk_drain=flag)
        runs[flag] = [run_experiment(cfg) for _ in range(3)]
    # flag-invariant event structure: every run agrees on both phase counts
    assert len({r.perf["events"] for rs in runs.values() for r in rs}) == 1
    assert len({r.perf["drain_events"] for rs in runs.values() for r in rs}) == 1
    best = {
        flag: min(rs, key=lambda r: r.perf["drain_wall_seconds"])
        for flag, rs in runs.items()
    }
    on, off = best[True].perf, best[False].perf
    ratio = (
        off["drain_us_per_event"] / on["drain_us_per_event"]
        if on["drain_us_per_event"] > 0
        else float("inf")
    )
    host_factor, cal = _host_factor()
    _append_bench(
        {
            "bench": "drain_phase",
            "timestamp": time.time(),
            "n_ops": base.n_ops,
            "macro_batching": base.macro_batching,
            "request_schedules": base.request_schedules,
            "bulk_drain": True,
            "drain_events": on["drain_events"],
            "drain_wall_seconds": on["drain_wall_seconds"],
            "drain_us_per_event": on["drain_us_per_event"],
            "oracle_drain_wall_seconds": off["drain_wall_seconds"],
            "oracle_drain_us_per_event": off["drain_us_per_event"],
            "drain_speedup": ratio,
            "bulk_stats": best[True].extra.get("bulk_drain"),
            "runs": [
                {
                    "bulk_drain": flag,
                    "drain_wall_seconds": r.perf["drain_wall_seconds"],
                    "drain_us_per_event": r.perf["drain_us_per_event"],
                }
                for flag, rs in runs.items()
                for r in rs
            ],
            "calibration_seconds": cal,
            "host_factor": host_factor,
        }
    )
    stats = best[True].extra.get("bulk_drain") or {}
    # the plane must actually engage on this workload (else the bench
    # compares the oracle with itself and the ratio is meaningless)
    assert stats.get("consumed", 0) > 0 and stats.get("parity_panels", 0) > 0, stats
    # regression floor, not a speedup bar (see docstring): same tolerance
    # doctrine as the nightly gate
    assert ratio >= 0.70, (
        f"bulk drain plane made the drain phase materially slower: "
        f"{on['drain_us_per_event']:.2f} us/ev (on) vs "
        f"{off['drain_us_per_event']:.2f} us/ev (off), ratio {ratio:.2f}"
    )


def test_thousand_osd_smoke():
    """Thousand-OSD smoke: one modest-op experiment at the cluster scale
    the vectorized bulk ops and macro-op fan-out batching exist for.  No
    speedup bar (the regime is setup-dominated and host-noisy); the entry
    lands in BENCH_engine.json so a scaling step-function — placement
    resolution, per-device setup, fan-out scaffolding — shows up in the
    nightly trajectory.  Best-of-2 to shave scheduler noise."""
    cfg = ExperimentConfig(
        method="tsue",
        n_osds=1000,
        n_clients=8,
        n_ops=300,
        n_files=8,
        stripes_per_file=4,
    )
    runs = [run_experiment(cfg).perf for _ in range(2)]
    perf = max(runs, key=lambda p: p["events_per_sec"])
    assert len({p["events"] for p in runs}) == 1, runs
    host_factor, cal = _host_factor()
    _append_bench(
        {
            "bench": "thousand_osd",
            "timestamp": time.time(),
            "n_osds": cfg.n_osds,
            "n_ops": cfg.n_ops,
            "macro_batching": cfg.macro_batching,
            "request_schedules": cfg.request_schedules,
            "schedule_hit_rate": perf["schedule_hit_rate"],
            "events": perf["events"],
            "wall_seconds": perf["wall_seconds"],
            "sim_seconds": perf["sim_seconds"],
            "events_per_sec": perf["events_per_sec"],
            "sim_ops_per_sec": perf["sim_ops_per_sec"],
            "calibration_seconds": cal,
            "host_factor": host_factor,
        }
    )
    # sanity floor only: the simulation must actually have run at scale
    assert perf["events"] > 10_000
    assert perf["sim_ops_per_sec"] > 0


def _timed_sweep(executor, cells):
    """Run one sweep with the cyclic GC parked (collect first, re-enable
    after).  The simulations allocate enough that ambient gen-2 passes —
    whose cost scales with everything *earlier* tests left alive — can
    multiply a ~1s sweep's wall clock several-fold, drowning the executor
    costs this bench compares (pytest-benchmark disables GC for the same
    reason)."""
    import gc

    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        results = executor.run(cells)
        return time.perf_counter() - t0, results
    finally:
        gc.enable()


def test_sweep_executor_speedup(tmp_path):
    """4-cell sweep: warm cache >= 3x serial always; 4 workers >= 3x serial
    on hosts that have the cores for it (recorded regardless).

    Every wall is best-of-2: a single scheduler preemption inside one
    ~1s measurement window otherwise flips the serial/parallel ratio on a
    noisy host, and the fastest observation of each executor is the
    closest to its actual cost (same doctrine as the engine bench)."""
    cells = _sweep_cells()
    cache_dir = tmp_path / "cache"

    wall_serial, serial = _timed_sweep(
        SweepExecutor(workers=1, cache_dir=str(cache_dir)), cells
    )
    wall_serial2, _ = _timed_sweep(
        SweepExecutor(workers=1, cache_dir=str(tmp_path / "cold2")), cells
    )
    wall_serial = min(wall_serial, wall_serial2)
    wall_cached, cached = _timed_sweep(
        SweepExecutor(workers=1, cache_dir=str(cache_dir)), cells
    )
    wall_cached2, _ = _timed_sweep(
        SweepExecutor(workers=1, cache_dir=str(cache_dir)), cells
    )
    wall_cached = min(wall_cached, wall_cached2)
    wall_parallel, parallel = _timed_sweep(
        SweepExecutor(workers=4, cache_dir=str(tmp_path / "c2")), cells
    )
    wall_parallel2, _ = _timed_sweep(
        SweepExecutor(workers=4, cache_dir=str(tmp_path / "c3")), cells
    )
    wall_parallel = min(wall_parallel, wall_parallel2)

    # parallel and cached sweeps reproduce the serial results exactly
    for s, c, p in zip(serial, cached, parallel):
        assert s.iops == c.iops == p.iops
        assert s.latency == c.latency == p.latency
        assert s.workload == c.workload == p.workload

    cpus = os.cpu_count() or 1
    cache_speedup = wall_serial / wall_cached if wall_cached > 0 else float("inf")
    parallel_speedup = wall_serial / wall_parallel if wall_parallel > 0 else 0.0
    _append_bench(
        {
            "bench": "sweep",
            "timestamp": time.time(),
            "cells": len(cells),
            "cpus": cpus,
            "wall_serial": wall_serial,
            "wall_parallel_4w": wall_parallel,
            "wall_cached": wall_cached,
            "speedup_parallel": parallel_speedup,
            "speedup_cached": cache_speedup,
        }
    )

    assert cache_speedup >= MIN_SWEEP_SPEEDUP, (
        f"warm-cache sweep only {cache_speedup:.1f}x faster than cold serial"
    )
    if cpus >= 4:
        assert parallel_speedup >= MIN_SWEEP_SPEEDUP, (
            f"4-worker sweep only {parallel_speedup:.1f}x faster than serial "
            f"on a {cpus}-cpu host"
        )
    elif cpus == 1:
        # the executor must detect the single core and fall back to serial
        # execution: the warm in-process prefix memos then keep the second
        # sweep at (noise-tolerance) parity with the cold serial one —
        # forking a pool here used to *lose* (0.5-0.6x) to per-child
        # start-up costs, and THAT regression is what this guards; a
        # serial-vs-serial rerun lands within a few percent of 1.0 either
        # side on a noisy host, so the floor sits below the noise band
        assert parallel_speedup >= 0.9, (
            f"1-cpu host: 4-worker sweep ran {parallel_speedup:.2f}x serial "
            f"— the executor should have gone serial and reused warm prefixes"
        )
    # between 2 and 3 CPUs a process pool cannot hit the 3x bar by
    # construction; the measurement is recorded in BENCH_engine.json anyway


def test_frontend_slo_bench():
    """Track the front-end's service levels: per-class p99 + availability
    of the crash cell of the SLO grid land in BENCH_engine.json nightly."""
    from repro.fault.runner import ScenarioRunner
    from repro.fault.scenarios import get_scenario

    result = ScenarioRunner(get_scenario("slo-qos-crash")).run(seed=2025)
    per_class = {
        who.split("/")[1]: {
            "p99_ms": stats["p99"] * 1e3,
            "p999_ms": stats["p999"] * 1e3,
            "availability": stats["availability"],
            "goodput": stats["goodput"],
            "error_budget": stats["error_budget"],
        }
        for who, stats in result.slo.items()
    }
    _append_bench(
        {
            "bench": "frontend",
            "timestamp": time.time(),
            "scenario": "slo-qos-crash",
            "digest": result.digest,
            "classes": per_class,
            "retries": result.frontend_stats["retries"],
            "hedges": result.frontend_stats["hedges"],
            "shed": result.frontend_stats["shed"],
        }
    )
    # the availability floor is the scenario's own invariant; here we only
    # pin that the grid served every class and the numbers are sane
    assert set(per_class) == {"gold", "silver", "bronze"}
    for qos, stats in per_class.items():
        assert 0.0 < stats["availability"] <= 1.0, qos
        assert stats["p99_ms"] > 0.0, qos


def test_background_interference_bench():
    """Track the maintenance plane's foreground-protection contract: the
    governor-on run of the bg storm must beat the governor-off control on
    overall foreground p99, with every background stream fully drained in
    both — asserted here and recorded in BENCH_engine.json nightly."""
    from repro.fault.runner import ScenarioRunner
    from repro.fault.scenarios import get_scenario

    results = {
        gov: ScenarioRunner(
            get_scenario(f"bg-rebalance-governor-{gov}")
        ).run(seed=2025)
        for gov in ("off", "on")
    }
    entry = {
        "bench": "background_interference",
        "timestamp": time.time(),
        "scenario_pair": "bg-rebalance-governor-{on,off}",
    }
    for gov, result in results.items():
        entry[gov] = {
            "digest": result.digest,
            "p99_ms": result.slo_overall["p99"] * 1e3,
            "p999_ms": result.slo_overall["p999"] * 1e3,
            "availability": result.slo_overall["availability"],
            "streams": {
                stream: {
                    "granted_bytes": stats["granted_bytes"],
                    "time_to_drain": stats["time_to_drain"],
                    "bandwidth": stats["bandwidth"],
                }
                for stream, stats in result.background.items()
                if stats["submitted_items"]
            },
            "governor": result.governor,
        }
    _append_bench(entry)
    on, off = results["on"], results["off"]
    assert on.slo_overall["p99"] < off.slo_overall["p99"], (
        f"governor failed to protect foreground p99: "
        f"{on.slo_overall['p99'] * 1e3:.3f}ms (on) vs "
        f"{off.slo_overall['p99'] * 1e3:.3f}ms (off)"
    )
    for gov, result in results.items():
        for stream, stats in result.background.items():
            assert stats["backlog_bytes"] == 0, (gov, stream)
