"""Fig. 8a — HDD-cluster update throughput over MSR volume twins.

Paper shape (RS(6,4)): TSUE leads on every volume — up to 16.2x FO, 4x PL,
9.1x PLR, 3.6x PARIX; on HDDs the in-place methods collapse because random
I/O costs a seek, while TSUE's appends stay sequential.
"""

from repro.harness import fig8


def test_fig8a_hdd_throughput(once):
    text, rows = once(lambda: fig8.run_fig8a())
    print("\n" + text)

    for volume, vals in rows.items():
        assert max(vals, key=vals.get) == "TSUE", (volume, vals)
        # the HDD random/seek penalty makes the gap larger than on SSDs:
        # TSUE is at least 3x FO on every volume (paper: up to 16.2x)
        assert vals["TSUE"] > 3.0 * vals["FO"], (volume, vals)
        # PLR's inline recycling is crippling on disks
        assert vals["PLR"] < vals["PL"], (volume, vals)
