"""Ablations beyond the paper's figures (DESIGN.md §6).

* DataLog replication count: 2-copy vs 3-copy front end (latency cost of
  durability),
* log-unit size: 16 MB -> 8 MB halves residence (§5.3.5's claim, scaled),
* read-cache effect: hot reads served from the log index vs the device.
"""

import pytest

from repro.cluster import ClusterConfig, ECFS
from repro.common.units import KiB
from repro.harness.runner import ExperimentConfig, run_experiment
from repro.traces import TraceReplayer, generate_trace, tencloud_spec
from repro.update.tsue import TSUEOptions


def test_ablation_replica_count_costs_latency(once):
    def run():
        out = {}
        for replicas in (1, 2):
            cfg = ExperimentConfig(
                method="tsue",
                trace="tencloud",
                n_clients=16,
                n_ops=800,
                method_options={
                    "options": TSUEOptions(datalog_replicas=replicas)
                },
            )
            res = run_experiment(cfg)
            out[replicas] = res.latency["mean"]
        return out

    latency = once(run)
    print(f"\nmean update latency: 2-copy={latency[1]*1e6:.1f}us "
          f"3-copy={latency[2]*1e6:.1f}us")
    # an extra synchronous replica hop costs latency, but not 2x
    assert latency[2] > latency[1]
    assert latency[2] < 2.0 * latency[1]


def test_ablation_unit_size_halves_residence(once):
    """§5.3.5: halving the log unit size roughly halves the buffer
    residence interval (scaled units here)."""

    def run():
        out = {}
        for unit in (512 * KiB, 256 * KiB):
            cfg = ExperimentConfig(
                method="tsue",
                trace="tencloud",
                n_clients=32,
                n_ops=2500,
                log_pools=1,
                method_options={"options": TSUEOptions(unit_size=unit)},
            )
            res = run_experiment(cfg, keep_cluster=True)
            stats = res.ecfs.method.residence_stats()
            out[unit] = stats["datalog"]["buffer"]
        return out

    residence = once(run)
    big, small = residence[512 * KiB], residence[256 * KiB]
    print(f"\ndatalog buffer residence: 512K unit={big*1e3:.2f}ms "
          f"256K unit={small*1e3:.2f}ms")
    assert small < big
    assert small == pytest.approx(big / 2, rel=0.6)  # "roughly halves"


def test_ablation_read_cache_serves_hot_reads(once):
    """Reads of freshly updated data hit the log index, not the device."""

    def run():
        ecfs = ECFS(
            ClusterConfig(n_osds=10, k=4, m=2, block_size=64 * KiB),
            method="tsue",
        )
        files = ecfs.populate(n_files=1, stripes_per_file=2, fill="zeros")
        (client,) = ecfs.add_clients(1)
        env = ecfs.env

        def flow():
            for i in range(20):
                yield env.process(client.update(files[0], i * 4096, 4096))
            for i in range(20):
                yield env.process(client.read(files[0], i * 4096, 4096))

        env.run(env.process(flow()))
        pools = [
            p
            for layers in ecfs.method.pools.values()
            for p in layers["datalog"]
        ]
        hits = sum(p.cache_hits for p in pools)
        misses = sum(p.cache_misses for p in pools)
        return hits, misses

    hits, misses = once(run)
    print(f"\nread-cache: {hits} hits, {misses} misses")
    assert hits == 20  # every hot read served from the in-memory index
