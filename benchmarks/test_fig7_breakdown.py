"""Fig. 7 — contribution breakdown (Baseline, O1..O5).

Paper shape: the log pool (O3) is the largest single step; DataLog locality
(O1) helps more than ParityLog locality (O2); multiple pools per SSD (O4)
contributes little; the DeltaLog (O5) adds roughly +30%.
"""

from repro.harness import fig7


def test_fig7_breakdown(once):
    text, rows = once(lambda: fig7.run())
    print("\n" + text)

    for label, steps in rows.items():
        base = steps["Baseline"]
        # the full ladder is a clear improvement over the baseline
        assert steps["O5"] > 1.5 * base, label
        # O3 (log pool) is the single largest multiplicative step
        gains = {
            step: steps[step] / steps[prev]
            for step, prev in zip(
                ("O1", "O2", "O3", "O4", "O5"),
                ("Baseline", "O1", "O2", "O3", "O4"),
            )
        }
        assert max(gains, key=gains.get) == "O3", (label, gains)
        # DataLog locality helps more than ParityLog locality (O1 > O2)
        assert gains["O1"] > gains["O2"], (label, gains)
        # O4 (more pools per device) contributes minimally
        assert gains["O4"] <= 1.10, (label, gains)
        # the DeltaLog step is non-negative and moderate.  Paper: ~+30%;
        # our scaled runs leave network/parity headroom, so the gain is
        # smaller (see EXPERIMENTS.md deviations).
        assert 0.95 <= gains["O5"] <= 1.8, (label, gains)
