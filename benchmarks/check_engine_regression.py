"""Nightly engine-throughput regression gate over the BENCH trajectory.

Compares the newest ``engine`` entry in ``BENCH_engine.json`` against the
median of the previous (up to) five entries and exits nonzero on a
regression beyond the tolerance.  Comparisons are host-normalized: each
entry's events/sec is divided by its recorded ``host_factor``, mapping the
measurement onto the reference container's speed, so a slow shared CI
runner doesn't read as a code regression (and a fast one doesn't mask
it).  A 25% tolerance keeps the gate quiet across ordinary CI-runner
noise while still catching the step-function slowdowns that matter.

Run from the repo root (CI runs it right after the perf tier appends the
night's entry)::

    python benchmarks/check_engine_regression.py
"""

from __future__ import annotations

import json
import pathlib
import statistics
import sys

_BENCH_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_engine.json"

#: newest entry must reach this fraction of the trailing median
TOLERANCE = 0.75

#: how many prior entries the trailing median is taken over
WINDOW = 5


def normalized_evps(entry: dict) -> float:
    """Events/sec mapped onto the reference container's speed."""
    host_factor = float(entry.get("host_factor", 1.0)) or 1.0
    return float(entry["events_per_sec"]) / host_factor


def main() -> int:
    if not _BENCH_PATH.exists():
        print(f"no {_BENCH_PATH.name}: nothing to gate")
        return 0
    doc = json.loads(_BENCH_PATH.read_text())
    engine = [e for e in doc.get("entries", []) if e.get("bench") == "engine"]
    if len(engine) < 2:
        print(f"{len(engine)} engine entr{'y' if len(engine) == 1 else 'ies'}: "
              "no history to compare against")
        return 0
    latest, prior = engine[-1], engine[-1 - WINDOW : -1]
    latest_evps = normalized_evps(latest)
    median_evps = statistics.median(normalized_evps(e) for e in prior)
    ratio = latest_evps / median_evps if median_evps > 0 else float("inf")
    print(
        f"latest: {latest_evps:,.0f} ev/s (normalized)  |  "
        f"median of last {len(prior)}: {median_evps:,.0f} ev/s  |  "
        f"ratio {ratio:.3f} (gate {TOLERANCE})"
    )
    if ratio < TOLERANCE:
        print(
            f"REGRESSION: engine throughput fell to {ratio:.0%} of the "
            f"trailing median (allowed floor {TOLERANCE:.0%})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
