"""Nightly engine-throughput regression gate over the BENCH trajectory.

Compares the newest ``engine`` entry in ``BENCH_engine.json`` against the
median of the previous (up to) five entries and exits nonzero on a
regression beyond the tolerance.  Two metrics are gated independently:

* **events/sec** — raw event-loop throughput.  Rewarding on its own terms:
  an optimization that *removes* scaffolding events (macro-op batching)
  can lower events/sec while making every run faster.
* **sim-ops/sec** — simulated client ops per host second, the honest
  end-to-end metric.  Gated only across entries that recorded it (older
  trajectory entries predate the field), so the gate tightens as history
  accumulates instead of comparing against absent data.

Comparisons are host-normalized: each entry's metric is divided by its
recorded ``host_factor``, mapping the measurement onto the reference
container's speed, so a slow shared CI runner doesn't read as a code
regression (and a fast one doesn't mask it).  A 25% tolerance keeps the
gate quiet across ordinary CI-runner noise while still catching the
step-function slowdowns that matter.

Run from the repo root (CI runs it right after the perf tier appends the
night's entry)::

    python benchmarks/check_engine_regression.py
"""

from __future__ import annotations

import json
import pathlib
import statistics
import sys

_BENCH_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_engine.json"

#: newest entry must reach this fraction of the trailing median
TOLERANCE = 0.75

#: how many prior entries the trailing median is taken over
WINDOW = 5

#: gated metrics: (entry key, printable label)
METRICS = [
    ("events_per_sec", "ev/s"),
    ("sim_ops_per_sec", "sim-ops/s"),
]


def normalized(entry: dict, key: str) -> float:
    """Metric mapped onto the reference container's speed."""
    host_factor = float(entry.get("host_factor", 1.0)) or 1.0
    return float(entry[key]) / host_factor


#: engine-path flags that change what the tracked workload measures; an
#: entry missing a flag predates it, which means the (default-on) behavior
FLAG_KEYS = ("macro_batching", "request_schedules", "bulk_drain")


def flag_config(entry: dict) -> tuple:
    """The entry's engine-flag configuration (missing keys default True)."""
    return tuple(bool(entry.get(key, True)) for key in FLAG_KEYS)


def check_metric(engine: list[dict], key: str, label: str) -> bool:
    """Gate one metric over the entries that recorded it; True = pass.

    Only entries whose engine-flag configuration matches the newest
    entry's are compared: a contrast run recorded with an oracle path
    (``--legacy-fanout`` / ``--legacy-schedules``) measures a deliberately
    slower engine and must neither trip the gate nor drag the median down
    for real regressions to hide behind.
    """
    recorded = [e for e in engine if key in e]
    if recorded:
        flags = flag_config(recorded[-1])
        recorded = [e for e in recorded if flag_config(e) == flags]
    if len(recorded) < 2:
        print(f"{label}: {len(recorded)} entr"
              f"{'y' if len(recorded) == 1 else 'ies'} with the metric: "
              "no history to compare against")
        return True
    latest, prior = recorded[-1], recorded[-1 - WINDOW : -1]
    latest_val = normalized(latest, key)
    median_val = statistics.median(normalized(e, key) for e in prior)
    ratio = latest_val / median_val if median_val > 0 else float("inf")
    print(
        f"{label}: latest {latest_val:,.0f} (normalized)  |  "
        f"median of last {len(prior)}: {median_val:,.0f}  |  "
        f"ratio {ratio:.3f} (gate {TOLERANCE})"
    )
    if ratio < TOLERANCE:
        print(
            f"REGRESSION: engine {label} fell to {ratio:.0%} of the "
            f"trailing median (allowed floor {TOLERANCE:.0%})",
            file=sys.stderr,
        )
        return False
    return True


def main() -> int:
    if not _BENCH_PATH.exists():
        print(f"no {_BENCH_PATH.name}: nothing to gate")
        return 0
    doc = json.loads(_BENCH_PATH.read_text())
    engine = [e for e in doc.get("entries", []) if e.get("bench") == "engine"]
    if len(engine) < 2:
        print(f"{len(engine)} engine entr{'y' if len(engine) == 1 else 'ies'}: "
              "no history to compare against")
        return 0
    ok = True
    for key, label in METRICS:
        ok = check_metric(engine, key, label) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
