"""Fig. 1 — per-method critical-path latency of a single 4 KiB update."""

from repro.harness import fig1


def test_fig1_update_path_latency(once):
    text, rows = once(lambda: fig1.run())
    print("\n" + text)

    warm = {m: v["warm update (us)"] for m, v in rows.items()}
    # replica-style sequential append gives TSUE the shortest path ...
    assert warm["TSUE"] == min(warm.values())
    # ... and the full in-place chain gives FO the longest warm path
    assert warm["FO"] == max(warm.values())
    # PARIX's cold (first-touch) update pays the extra serial network hop
    parix = rows["PARIX"]
    assert parix["cold update (us)"] > 1.3 * parix["warm update (us)"]
    # the write-after-read family sits between TSUE and FO
    for method in ("PL", "PLR", "CORD"):
        assert warm["TSUE"] < warm[method] < warm["FO"] * 1.01
