"""Table 1 — storage workload and network traffic (Ten-Cloud, RS(6,4)).

Paper shape: TSUE has the fewest read/write operations and by far the
fewest overwrites (8% of FO's count); its network traffic is in CoRD's
neighbourhood (CoRD is the traffic-optimized design) and well below the
PL/FO/PLR tier; TSUE's erase count is the lowest, giving the 2.5x-13x
lifespan advantage.
"""

from repro.harness import table1


def test_table1_workload(once):
    text, data = once(lambda: table1.run())
    print("\n" + text)
    rows = data["rows"]

    ops = {m: rows[m]["READ/WRITE Num."] for m in rows}
    ow = {m: rows[m]["OVERWRITE Num."] for m in rows}
    net = {m: rows[m]["NETWORK TRAFFIC (GB)"] for m in rows}
    erases = {m: rows[m]["ERASES"] for m in rows}

    # TSUE: fewest overwrites, by a wide margin (paper: 8% of FO)
    assert ow["TSUE"] == min(ow.values())
    assert ow["TSUE"] < 0.4 * ow["FO"]
    # PLR's reserved-space appends push its overwrite count past FO's
    assert ow["PLR"] > 0.5 * ow["FO"]
    # TSUE's op count is in CoRD's neighbourhood and far below PL's
    assert ops["TSUE"] < 0.5 * ops["PL"]
    assert ops["TSUE"] < 1.25 * ops["CORD"]
    # network: CoRD and TSUE form the low tier; PARIX is the highest
    assert net["TSUE"] < net["FO"]
    assert net["CORD"] <= net["TSUE"] * 1.4
    assert net["PARIX"] == max(net.values())
    # lifespan: TSUE is in the lowest-erase tier (within 10% of the best —
    # CoRD can tie at small scale) and strictly below the in-place methods;
    # the worst method erases >= 2.5x more (paper: 2.5x-13x)
    assert erases["TSUE"] <= 1.10 * min(erases.values())
    for method in ("FO", "PL", "PLR", "PARIX"):
        assert erases["TSUE"] < erases[method]
    worst = max(erases.values())
    assert worst / erases["TSUE"] >= 2.5
