"""Fig. 6b — update performance and memory versus the log-unit quota.

Paper shape: IOPS saturates at ~4 units per pool while memory rises with the
quota; memory stays a small fraction of node RAM (0.15%-1.5% on 256 GB).
"""

from repro.harness import fig6


def test_fig6b_memory_sweep(once):
    text, rows = once(lambda: fig6.run_fig6b())
    print("\n" + text)

    quotas = sorted(rows, key=lambda r: int(r.split()[0]))
    iops = [rows[q]["IOPS"] for q in quotas]
    mem = [rows[q]["peak mem (MiB/node)"] for q in quotas]

    # throughput saturates: the largest quota is not much better than 4 units
    four = next(rows[q]["IOPS"] for q in quotas if q.startswith("4"))
    assert iops[-1] < 1.3 * four
    # memory grows monotonically with the quota (peak allocation)
    assert all(a <= b * 1.001 for a, b in zip(mem, mem[1:]))
    # and stays a small fraction of a 256 GB node
    assert all(rows[q]["mem % of node"] < 5.0 for q in quotas)
