"""Table 2 — residence time of updated data in memory (TSUE, RS(12,4)).

Paper shape: appends and recycles are microseconds-to-milliseconds; the
BUFFER phase (waiting in a filling/queued unit) dominates total residence;
total residence is bounded (paper: ~10 s at full scale; bounded by the
unit-fill time at our scale).
"""

from repro.harness import table2


def test_table2_residence(once):
    text, raw = once(lambda: table2.run())
    print("\n" + text)

    for trace, stats in raw.items():
        dl = stats["datalog"]
        # append latency is micro/millisecond scale
        assert 0 < dl["append"] < 0.1, (trace, dl)
        # recycle work is fast relative to the buffered wait
        assert dl["buffer"] > dl["recycle"], (trace, dl)
        # the pipeline's total residence is bounded (well under a minute)
        total = sum(
            stats[layer][phase]
            for layer in stats
            for phase in ("append", "buffer", "recycle")
        )
        assert total < 60.0, (trace, total)
        # all three layers saw traffic under RS(12,4)
        assert stats["deltalog"]["append"] > 0
        assert stats["paritylog"]["append"] > 0
