#!/usr/bin/env python
"""SSD lifespan under different update methods (the Table 1 wear story).

Replays the same workload under each method and maps the resulting device
I/O through the flash wear model: page programs, GC erases, and the
relative lifespan factor (the paper: SSDs under TSUE endure 2.5x-13x
longer).  Also prints the random/sequential split that drives the result.

Run:  python examples/ssd_lifespan.py
"""

from repro import ClusterConfig, ECFS, TraceReplayer
from repro.common.units import KiB
from repro.metrics import aggregate_workload, format_table, lifespan_ratios
from repro.traces import generate_trace, tencloud_spec


def wear_for(method: str, n_ops: int = 1200) -> dict:
    config = ClusterConfig(n_osds=16, k=6, m=4, block_size=256 * KiB)
    ecfs = ECFS(config, method=method)
    files = ecfs.populate(n_files=4, stripes_per_file=6, fill="zeros")
    trace = generate_trace(
        tencloud_spec(), n_ops, files, ecfs.mds.lookup(files[0]).size, seed=11
    )
    TraceReplayer(ecfs, trace).run(n_clients=16)
    ecfs.drain()
    w = aggregate_workload(ecfs.osds, ecfs.net)
    return {
        "seq ops": w.seq_ops,
        "rand ops": w.rand_ops,
        "overwrites": w.overwrite_ops,
        "page programs": w.page_programs,
        "erases": w.total_erases,
    }


def main() -> None:
    rows = {m.upper(): wear_for(m) for m in ("fo", "pl", "plr", "parix", "cord", "tsue")}
    print(format_table(rows, title="Flash wear by update method (Ten-Cloud twin, RS(6,4))"))

    erases = {m.lower(): rows[m]["erases"] for m in rows}
    ratios = lifespan_ratios(erases, reference="tsue")
    print("\nLifespan relative to TSUE (how much sooner each method wears out):")
    for method, factor in sorted(ratios.items(), key=lambda kv: -kv[1]):
        if method != "tsue":
            print(f"  {method.upper():6s} wears out {factor:.1f}x faster")


if __name__ == "__main__":
    main()
