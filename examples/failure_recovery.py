#!/usr/bin/env python
"""Fail a storage node mid-workload and measure recovery.

Demonstrates the §4.2 recovery story: a node dies with logs outstanding;
the cluster settles surviving logs, replays the victim's replicated
DataLog, rebuilds every lost block by Reed-Solomon decode, and re-homes
them — after which the whole cluster verifies byte-for-byte.

Compares TSUE (real-time recycle, tiny log debt) against PL (deferred
recycle, large debt) — the Fig. 8b effect.

Run:  python examples/failure_recovery.py
"""

from repro import ClusterConfig, ECFS, RecoveryManager, TraceReplayer
from repro.common.units import KiB, fmt_bytes, fmt_time
from repro.traces import generate_trace, tencloud_spec


def run(method: str) -> None:
    config = ClusterConfig(n_osds=16, k=6, m=4, block_size=256 * KiB)
    ecfs = ECFS(config, method=method)
    files = ecfs.populate(n_files=4, stripes_per_file=6, fill="random")
    trace = generate_trace(
        tencloud_spec(), 800, files, ecfs.mds.lookup(files[0]).size, seed=3
    )
    TraceReplayer(ecfs, trace).run(n_clients=16)

    debt = ecfs.total_log_debt()
    print(f"[{method}] log debt at failure: {fmt_bytes(debt)}")

    manager = RecoveryManager(ecfs, parallel_stripes=4)
    report = ecfs.env.run(
        ecfs.env.process(manager.fail_and_recover(0), name="recovery")
    )
    print(
        f"[{method}] rebuilt {report.blocks_rebuilt} blocks "
        f"({fmt_bytes(report.bytes_rebuilt)}): "
        f"log settlement {fmt_time(report.prepare_seconds)}, "
        f"rebuild {fmt_time(report.rebuild_seconds)}, "
        f"bandwidth {report.bandwidth / 1e6:.1f} MB/s"
    )

    # the cluster must be fully consistent again
    ecfs.drain()
    stripes = ecfs.verify()
    print(f"[{method}] verified {stripes} stripes post-recovery\n")


def main() -> None:
    for method in ("tsue", "pl", "fo"):
        run(method)


if __name__ == "__main__":
    main()
