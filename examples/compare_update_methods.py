#!/usr/bin/env python
"""Compare all seven update methods on a Ten-Cloud-like workload.

Reproduces the core of the paper's Fig. 5 in miniature: replay the same
synthetic trace against FO, FL, PL, PLR, PARIX, CoRD and TSUE, and print
aggregate IOPS, mean latency, device workload and network traffic — then
verify that *every* method left the cluster byte-correct.

Run:  python examples/compare_update_methods.py
"""

from repro import ClusterConfig, ECFS, TraceReplayer
from repro.common.units import KiB, fmt_time
from repro.metrics import aggregate_workload, format_table
from repro.net.fabric import NetParams
from repro.traces import generate_trace, tencloud_spec
from repro.update import METHODS


def run_method(method: str, n_ops: int = 1500, n_clients: int = 32) -> dict:
    config = ClusterConfig(
        n_osds=16, k=6, m=4, block_size=256 * KiB, log_unit_size=1024 * KiB
    )
    ecfs = ECFS(config, method=method, net_params=NetParams(latency=120e-6))
    files = ecfs.populate(n_files=4, stripes_per_file=6, fill="random")
    trace = generate_trace(
        tencloud_spec(), n_ops, files, ecfs.mds.lookup(files[0]).size, seed=7
    )
    result = TraceReplayer(ecfs, trace).run(n_clients=n_clients)
    ecfs.drain()
    ecfs.verify()  # raises if any stripe is inconsistent
    workload = aggregate_workload(ecfs.osds, ecfs.net)
    latency = ecfs.metrics.latency_stats("updates")
    return {
        "IOPS": result.iops,
        "mean lat (us)": latency["mean"] * 1e6,
        "dev ops": workload.rw_ops,
        "overwrites": workload.overwrite_ops,
        "net (MB)": workload.network_bytes / 1e6,
        "erases": workload.total_erases,
    }


def main() -> None:
    rows = {}
    for method in sorted(METHODS):
        rows[method.upper()] = run_method(method)
        print(f"{method}: done")
    print()
    print(format_table(rows, title="Update-method comparison (Ten-Cloud twin, RS(6,4), 32 clients)"))
    tsue = rows["TSUE"]["IOPS"]
    print(f"\nTSUE speedups: " + "  ".join(
        f"{m}: {tsue / rows[m]['IOPS']:.1f}x" for m in rows if m != "TSUE"
    ))


if __name__ == "__main__":
    main()
