#!/usr/bin/env python
"""Operating through a failure: heartbeats, degraded reads, auto-recovery.

A cluster serves updates while one node dies mid-run.  The heartbeat
service detects the silence, recovery starts automatically, and client
reads targeting the dead node are served degraded (on-the-fly decode from
k survivors) until the blocks are re-homed.

Run:  python examples/degraded_service.py
"""

from repro import ClusterConfig, ECFS, RecoveryManager
from repro.cluster import HeartbeatService
from repro.common.units import KiB, fmt_time


def main() -> None:
    config = ClusterConfig(n_osds=12, k=4, m=2, block_size=128 * KiB)
    ecfs = ECFS(config, method="tsue")
    files = ecfs.populate(n_files=2, stripes_per_file=4, fill="random")
    (client,) = ecfs.add_clients(1)
    env = ecfs.env

    manager = RecoveryManager(ecfs)
    reports = []

    def auto_recover(osd_idx: int) -> None:
        print(f"  [t={fmt_time(env.now)}] MDS declared osd{osd_idx} failed "
              f"-> recovery launched")

        def job():
            report = yield env.process(manager.fail_and_recover(osd_idx))
            reports.append(report)
            print(f"  [t={fmt_time(env.now)}] recovery done: "
                  f"{report.blocks_rebuilt} blocks at "
                  f"{report.bandwidth / 1e6:.1f} MB/s")

        env.process(job(), name="auto-recovery")

    hb = HeartbeatService(ecfs, interval=0.2, timeout=0.7, on_failure=auto_recover)
    hb.start()

    # locate a block on the node we will kill, so reads hit the degraded path
    victim = 0
    target = next(
        b for b in sorted(ecfs.known_blocks)
        if ecfs.placement.osd_of(b) == victim and b.idx < ecfs.rs.k
    )
    file_off = (
        target.stripe * ecfs.rs.k + target.idx
    ) * config.block_size

    def workload():
        yield env.process(client.update(target.file_id, file_off, 4 * KiB))
        print(f"[t={fmt_time(env.now)}] update to {target} acked")
        ecfs.osds[victim].fail()
        print(f"[t={fmt_time(env.now)}] osd{victim} just died "
              f"(holds {target})")
        # this read arrives before recovery re-homes the block: degraded
        yield env.timeout(0.05)
        t0 = env.now
        data = yield env.process(client.read(target.file_id, file_off, 4 * KiB))
        print(f"[t={fmt_time(env.now)}] degraded read served in "
              f"{fmt_time(env.now - t0)} ({data.shape[0]} bytes, decoded "
              f"from {ecfs.rs.k} survivors)")

    env.process(workload(), name="workload")
    env.run(until=30.0)
    hb.stop()

    ecfs.drain()
    stripes = ecfs.verify()
    print(f"\nfinal state verified: {stripes} stripes consistent, "
          f"{len(reports)} recovery completed")


if __name__ == "__main__":
    main()
