#!/usr/bin/env python
"""Quickstart: build a TSUE cluster, run updates, read back, verify.

Walks the public API end to end:

1. build a 16-node SSD ECFS with the TSUE update method,
2. create and populate files,
3. issue a few updates and a read from a client,
4. drain the three-layer log pipeline and verify every stripe still
   satisfies the erasure-code invariant byte-for-byte.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ClusterConfig, ECFS
from repro.common.units import KiB, fmt_time


def main() -> None:
    config = ClusterConfig(n_osds=16, k=6, m=4, block_size=256 * KiB)
    ecfs = ECFS(config, method="tsue")

    # instant setup: two files of 8 stripes each, random contents + parity
    files = ecfs.populate(n_files=2, stripes_per_file=8, fill="random")
    (client,) = ecfs.add_clients(1)
    print(f"cluster up: {config.n_osds} OSDs, RS({config.k},{config.m}), "
          f"{len(ecfs.known_blocks)} blocks placed")

    env = ecfs.env

    def workload():
        # three updates: two hot (same address) and one elsewhere
        lat1 = yield env.process(client.update(files[0], 64 * KiB, 4 * KiB))
        lat2 = yield env.process(client.update(files[0], 64 * KiB, 4 * KiB))
        lat3 = yield env.process(client.update(files[1], 640 * KiB, 16 * KiB))
        print(f"update latencies: {fmt_time(lat1)}, {fmt_time(lat2)}, {fmt_time(lat3)}")

        # read while the data still lives in the DataLog: served from the
        # in-memory index (the §3.3.3 read cache)
        data = yield env.process(client.read(files[0], 64 * KiB, 4 * KiB))
        return data

    data = env.run(env.process(workload()))
    print(f"read back {data.shape[0]} bytes, first 8: {data[:8].tolist()}")

    # drain the DataLog -> DeltaLog -> ParityLog pipeline, then verify that
    # every data block matches the oracle and every parity block matches a
    # fresh Reed-Solomon encode
    ecfs.drain()
    stripes = ecfs.verify()
    print(f"verified {stripes} stripes after drain — parity consistent")

    stats = ecfs.metrics.latency_stats("updates")
    print(f"update latency mean={fmt_time(stats['mean'])} p99={fmt_time(stats['p99'])}")
    print(f"simulated time: {fmt_time(env.now)}")


if __name__ == "__main__":
    main()
