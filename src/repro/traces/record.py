"""Trace records: the normalized block-trace schema used everywhere."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TraceRecord"]


@dataclass(frozen=True)
class TraceRecord:
    """One I/O in a workload trace.

    ``op`` is "update" (write to already-written space), "write" (first
    write) or "read".  ``offset``/``size`` are file-relative bytes.
    """

    op: str
    file_id: int
    offset: int
    size: int

    def __post_init__(self) -> None:
        if self.op not in ("update", "write", "read"):
            raise ValueError(f"unknown op {self.op!r}")
        if self.size <= 0 or self.offset < 0:
            raise ValueError("bad trace record geometry")
