"""MSR Cambridge trace twins — the seven volumes of Fig. 8.

Per-volume parameters follow the published MSR analyses (Narayanan et al.
2008; Chan et al. FAST'14): across volumes ~60% of updates are < 4 KB, 90%
< 16 KB, and > 90% of writes are updates; individual volumes differ in
write-intensity and footprint, which is what spreads the Fig. 8 bars.
"""

from __future__ import annotations

from repro.traces.synthetic import SyntheticTraceSpec

__all__ = ["MSR_VOLUMES", "msr_spec"]

_KB = 1024

# name: (update_ratio, p4k, p8k, p16k, p64k, zipf_a, working_set, p_run)
MSR_VOLUMES: dict[str, tuple[float, float, float, float, float, float, float, float]] = {
    "src10": (0.89, 0.62, 0.18, 0.10, 0.10, 1.20, 0.10, 0.30),
    "src22": (0.85, 0.58, 0.20, 0.12, 0.10, 1.15, 0.12, 0.30),
    "proj2": (0.70, 0.50, 0.20, 0.15, 0.15, 1.00, 0.30, 0.40),
    "prn1":  (0.80, 0.55, 0.20, 0.15, 0.10, 1.10, 0.20, 0.30),
    "hm0":   (0.91, 0.65, 0.18, 0.10, 0.07, 1.25, 0.08, 0.25),
    "usr0":  (0.88, 0.60, 0.20, 0.12, 0.08, 1.20, 0.10, 0.30),
    "mds0":  (0.92, 0.68, 0.17, 0.09, 0.06, 1.30, 0.06, 0.25),
}


def msr_spec(volume: str) -> SyntheticTraceSpec:
    """Spec for one MSR volume (one of :data:`MSR_VOLUMES`)."""
    try:
        upd, p4, p8, p16, p64, zipf_a, ws, p_run = MSR_VOLUMES[volume]
    except KeyError:
        raise KeyError(
            f"unknown MSR volume {volume!r}; choose from {sorted(MSR_VOLUMES)}"
        ) from None
    return SyntheticTraceSpec(
        name=f"msr-{volume}",
        update_ratio=upd,
        size_buckets=(
            (4 * _KB, p4),
            (8 * _KB, p8),
            (16 * _KB, p16),
            (64 * _KB, p64),
        ),
        zipf_a=zipf_a,
        working_set=ws,
        p_run=p_run,
    )
