"""Closed- and open-loop multi-client trace replay.

Closed loop (:class:`TraceReplayer`): ``n_clients`` client processes share
the trace; each issues its next record as soon as the previous one
completes (zero think time), which is how the paper's client scaling
(4..64 clients) is driven.

Open loop (:class:`OpenLoopReplayer`): each :class:`TenantSpec` is an
independent arrival process — exponential inter-arrival gaps at the
tenant's rate, drawn from a per-tenant seeded RNG stream — submitting into
a QoS-aware :class:`~repro.frontend.dispatcher.FrontEnd` without waiting
for completions.  Arrivals keep coming while the cluster degrades, which
is what makes availability-under-faults measurable: a closed loop slows
its own arrival rate to match the outage and hides the damage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, Sequence

import numpy as np

from repro.cluster.ecfs import ECFS
from repro.common.errors import DecodeError, IntegrityError
from repro.traces.record import TraceRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.frontend.dispatcher import FrontEnd

__all__ = ["ReplayResult", "TraceReplayer", "TenantSpec", "OpenLoopReplayer"]


@dataclass
class ReplayResult:
    ops_issued: int
    updates: int
    reads: int
    elapsed: float
    failures: int = 0  # ops the cluster errored on (tolerate_failures mode)

    @property
    def iops(self) -> float:
        return self.ops_issued / self.elapsed if self.elapsed > 0 else 0.0


class TraceReplayer:
    """Replays a record list against a cluster with N concurrent clients."""

    def __init__(self, ecfs: ECFS, records: Sequence[TraceRecord]) -> None:
        self.ecfs = ecfs
        self.records = list(records)
        self._cursor = 0
        self._updates = 0
        self._reads = 0
        self._failures = 0
        self._tolerate = False

    # ------------------------------------------------------------------ API
    def run(
        self,
        n_clients: int,
        duration: float | None = None,
        tolerate_failures: bool = False,
    ) -> ReplayResult:
        """Replay with ``n_clients`` closed-loop clients.

        Stops when the trace is exhausted, or at ``duration`` simulated
        seconds if given (whichever comes first).  With
        ``tolerate_failures`` an op erroring on a failed node is counted in
        ``failures`` and the client moves on — how a fault-injection run
        keeps serving while nodes crash and recover under it.
        """
        ecfs = self.ecfs
        env = ecfs.env
        self._tolerate = tolerate_failures
        while len(ecfs.clients) < n_clients:
            ecfs.add_clients(1)
        start = env.now
        deadline = None if duration is None else start + duration
        procs = [
            env.process(self._client_loop(ecfs.clients[i], deadline), name=f"replay{i}")
            for i in range(n_clients)
        ]
        done = env.all_of(procs)
        env.run(done)
        return ReplayResult(
            ops_issued=self._updates + self._reads,
            updates=self._updates,
            reads=self._reads,
            elapsed=env.now - start,
            failures=self._failures,
        )

    # ------------------------------------------------------------ internals
    def _next_record(self) -> TraceRecord | None:
        if self._cursor >= len(self.records):
            return None
        rec = self.records[self._cursor]
        self._cursor += 1
        return rec

    def _client_loop(self, client, deadline: float | None) -> Generator:
        env = self.ecfs.env
        read_name = f"{client.name}-read"
        upd_name = f"{client.name}-upd"
        while True:
            if deadline is not None and env.now >= deadline:
                return
            rec = self._next_record()
            if rec is None:
                return
            if rec.op == "read":
                proc = env.process(
                    client.read(rec.file_id, rec.offset, rec.size),
                    name=read_name,
                )
            else:
                proc = env.process(
                    client.update(rec.file_id, rec.offset, rec.size),
                    name=upd_name,
                )
            try:
                yield proc
            except (IntegrityError, DecodeError):
                if not self._tolerate:
                    raise
                self._failures += 1
                continue
            if rec.op == "read":
                self._reads += 1
            else:
                self._updates += 1


# --------------------------------------------------------------- open loop
@dataclass(frozen=True)
class TenantSpec:
    """One tenant's arrival process and service expectations."""

    name: str
    qos: str = "silver"  # scheduling class (see repro.frontend.request)
    rate: float = 400.0  # mean arrivals/sec (exponential gaps)
    n_ops: int = 100  # arrivals this tenant generates
    deadline: float | None = None  # None: the QoS-class default
    trace: str = "tencloud"  # statistical fingerprint of the ops

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.n_ops <= 0:
            raise ValueError("tenant rate and n_ops must be positive")


@dataclass
class OpenLoopResult:
    """Totals of one open-loop run (per-request detail lives in the
    front end's :class:`~repro.frontend.slo.SLOTracker`)."""

    submitted: int
    ok: int
    shed: int
    failed: int
    deadline_missed: int
    elapsed: float
    per_tenant: dict[str, int] = field(default_factory=dict)


class OpenLoopReplayer:
    """Drives per-tenant Poisson arrivals into a front-end pipeline."""

    def __init__(
        self,
        ecfs: ECFS,
        frontend: "FrontEnd",
        tenants: Sequence[TenantSpec],
        files: Sequence[int],
    ) -> None:
        if not tenants:
            raise ValueError("need at least one tenant")
        self.ecfs = ecfs
        self.frontend = frontend
        self.tenants = list(tenants)
        self.files = list(files)
        for spec in self.tenants:
            frontend.register_tenant(spec.name, spec.qos, spec.deadline)

    def run(self, seed: int = 2025) -> OpenLoopResult:
        """Generate every tenant's arrivals, wait for all completions (and
        abandoned straggler legs), and return the totals."""
        from repro.harness.prefix import cached_trace
        from repro.harness.runner import resolve_trace

        ecfs = self.ecfs
        env = ecfs.env
        start = env.now
        file_bytes = ecfs.mds.lookup(self.files[0]).size
        completions: list = []
        arrival_procs = []
        for idx, spec in enumerate(sorted(self.tenants, key=lambda s: s.name)):
            records = cached_trace(
                resolve_trace(spec.trace),
                spec.n_ops,
                self.files,
                file_bytes,
                seed=seed + 7919 * (idx + 1),
            )
            rng = np.random.default_rng(
                np.random.SeedSequence([seed, 0x09E7100, idx])
            )
            gaps = rng.exponential(1.0 / spec.rate, spec.n_ops)
            arrivals = start + np.cumsum(gaps)
            arrival_procs.append(
                env.process(
                    self._arrive(spec, records, arrivals, completions),
                    name=f"arrivals-{spec.name}",
                )
            )
        env.run(env.all_of(arrival_procs))
        self.frontend.close()
        if completions:
            env.run(env.all_of(completions))
        env.run(env.process(self.frontend.quiesce(), name="fe-quiesce"))

        results = [ev.value for ev in completions]
        per_tenant: dict[str, int] = {}
        for spec in sorted(self.tenants, key=lambda s: s.name):
            per_tenant[spec.name] = spec.n_ops
        return OpenLoopResult(
            submitted=len(results),
            ok=sum(1 for r in results if r.status == "ok"),
            shed=sum(1 for r in results if r.status == "shed"),
            failed=sum(1 for r in results if r.status == "failed"),
            deadline_missed=sum(1 for r in results if r.status == "deadline"),
            elapsed=env.now - start,
            per_tenant=per_tenant,
        )

    def _arrive(self, spec, records, arrivals, completions) -> Generator:
        env = self.ecfs.env
        for record, when in zip(records, arrivals):
            if when > env.now:
                yield env.timeout_at(float(when))
            completions.append(
                self.frontend.submit(
                    "update" if record.op == "update" else "read",
                    spec.name,
                    record.file_id,
                    record.offset,
                    record.size,
                )
            )
