"""Closed-loop multi-client trace replay.

``n_clients`` client processes share the trace; each issues its next record
as soon as the previous one completes (closed loop, zero think time), which
is how the paper's client scaling (4..64 clients) is driven.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Sequence

from repro.cluster.ecfs import ECFS
from repro.traces.record import TraceRecord

__all__ = ["ReplayResult", "TraceReplayer"]


@dataclass
class ReplayResult:
    ops_issued: int
    updates: int
    reads: int
    elapsed: float

    @property
    def iops(self) -> float:
        return self.ops_issued / self.elapsed if self.elapsed > 0 else 0.0


class TraceReplayer:
    """Replays a record list against a cluster with N concurrent clients."""

    def __init__(self, ecfs: ECFS, records: Sequence[TraceRecord]) -> None:
        self.ecfs = ecfs
        self.records = list(records)
        self._cursor = 0
        self._updates = 0
        self._reads = 0

    # ------------------------------------------------------------------ API
    def run(self, n_clients: int, duration: float | None = None) -> ReplayResult:
        """Replay with ``n_clients`` closed-loop clients.

        Stops when the trace is exhausted, or at ``duration`` simulated
        seconds if given (whichever comes first).
        """
        ecfs = self.ecfs
        env = ecfs.env
        while len(ecfs.clients) < n_clients:
            ecfs.add_clients(1)
        start = env.now
        deadline = None if duration is None else start + duration
        procs = [
            env.process(self._client_loop(ecfs.clients[i], deadline), name=f"replay{i}")
            for i in range(n_clients)
        ]
        done = env.all_of(procs)
        env.run(done)
        return ReplayResult(
            ops_issued=self._updates + self._reads,
            updates=self._updates,
            reads=self._reads,
            elapsed=env.now - start,
        )

    # ------------------------------------------------------------ internals
    def _next_record(self) -> TraceRecord | None:
        if self._cursor >= len(self.records):
            return None
        rec = self.records[self._cursor]
        self._cursor += 1
        return rec

    def _client_loop(self, client, deadline: float | None) -> Generator:
        env = self.ecfs.env
        while True:
            if deadline is not None and env.now >= deadline:
                return
            rec = self._next_record()
            if rec is None:
                return
            if rec.op == "read":
                yield env.process(
                    client.read(rec.file_id, rec.offset, rec.size),
                    name=f"{client.name}-read",
                )
                self._reads += 1
            else:
                yield env.process(
                    client.update(rec.file_id, rec.offset, rec.size),
                    name=f"{client.name}-upd",
                )
                self._updates += 1
