"""Closed-loop multi-client trace replay.

``n_clients`` client processes share the trace; each issues its next record
as soon as the previous one completes (closed loop, zero think time), which
is how the paper's client scaling (4..64 clients) is driven.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Sequence

from repro.cluster.ecfs import ECFS
from repro.common.errors import DecodeError, IntegrityError
from repro.traces.record import TraceRecord

__all__ = ["ReplayResult", "TraceReplayer"]


@dataclass
class ReplayResult:
    ops_issued: int
    updates: int
    reads: int
    elapsed: float
    failures: int = 0  # ops the cluster errored on (tolerate_failures mode)

    @property
    def iops(self) -> float:
        return self.ops_issued / self.elapsed if self.elapsed > 0 else 0.0


class TraceReplayer:
    """Replays a record list against a cluster with N concurrent clients."""

    def __init__(self, ecfs: ECFS, records: Sequence[TraceRecord]) -> None:
        self.ecfs = ecfs
        self.records = list(records)
        self._cursor = 0
        self._updates = 0
        self._reads = 0
        self._failures = 0
        self._tolerate = False

    # ------------------------------------------------------------------ API
    def run(
        self,
        n_clients: int,
        duration: float | None = None,
        tolerate_failures: bool = False,
    ) -> ReplayResult:
        """Replay with ``n_clients`` closed-loop clients.

        Stops when the trace is exhausted, or at ``duration`` simulated
        seconds if given (whichever comes first).  With
        ``tolerate_failures`` an op erroring on a failed node is counted in
        ``failures`` and the client moves on — how a fault-injection run
        keeps serving while nodes crash and recover under it.
        """
        ecfs = self.ecfs
        env = ecfs.env
        self._tolerate = tolerate_failures
        while len(ecfs.clients) < n_clients:
            ecfs.add_clients(1)
        start = env.now
        deadline = None if duration is None else start + duration
        procs = [
            env.process(self._client_loop(ecfs.clients[i], deadline), name=f"replay{i}")
            for i in range(n_clients)
        ]
        done = env.all_of(procs)
        env.run(done)
        return ReplayResult(
            ops_issued=self._updates + self._reads,
            updates=self._updates,
            reads=self._reads,
            elapsed=env.now - start,
            failures=self._failures,
        )

    # ------------------------------------------------------------ internals
    def _next_record(self) -> TraceRecord | None:
        if self._cursor >= len(self.records):
            return None
        rec = self.records[self._cursor]
        self._cursor += 1
        return rec

    def _client_loop(self, client, deadline: float | None) -> Generator:
        env = self.ecfs.env
        while True:
            if deadline is not None and env.now >= deadline:
                return
            rec = self._next_record()
            if rec is None:
                return
            if rec.op == "read":
                proc = env.process(
                    client.read(rec.file_id, rec.offset, rec.size),
                    name=f"{client.name}-read",
                )
            else:
                proc = env.process(
                    client.update(rec.file_id, rec.offset, rec.size),
                    name=f"{client.name}-upd",
                )
            try:
                yield proc
            except (IntegrityError, DecodeError):
                if not self._tolerate:
                    raise
                self._failures += 1
                continue
            if rec.op == "read":
                self._reads += 1
            else:
                self._updates += 1
