"""Ali-Cloud trace twin.

Published statistics (paper §2.1 citing Li et al. 2020): 75% of requests are
updates; of those, 46% are exactly 4 KB and 60% are <= 16 KB.  Locality is
moderate relative to Ten-Cloud.
"""

from __future__ import annotations

from repro.traces.synthetic import SyntheticTraceSpec

__all__ = ["alicloud_spec"]

_KB = 1024


def alicloud_spec() -> SyntheticTraceSpec:
    return SyntheticTraceSpec(
        name="alicloud",
        update_ratio=0.75,
        size_buckets=(
            (4 * _KB, 0.46),  # 46% exactly 4 KB
            (8 * _KB, 0.08),
            (16 * _KB, 0.06),  # cumulative <=16K: 60%
            (32 * _KB, 0.14),
            (64 * _KB, 0.12),
            (128 * _KB, 0.09),
            (256 * _KB, 0.05),
        ),
        zipf_a=1.05,
        working_set=0.25,
        p_run=0.25,
    )
