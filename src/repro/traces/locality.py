"""Spatio-temporal locality engine for synthetic traces.

Two mechanisms compose:

* **temporal/hotspot locality** — target pages are drawn from a bounded
  Zipf distribution over a permuted page space: a small fraction of pages
  receives most accesses (Ten-Cloud: >80% of volumes touch <5% of their
  data).  ``zipf_a`` controls skew; ``working_set`` caps the fraction of the
  space the Zipf mass lands on.
* **spatial/run locality** — with probability ``p_run`` the next access
  continues at the previous end offset (sequential run), producing the
  adjacent-update patterns the DataLog coalesces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LocalityModel"]

_PAGE = 4096


@dataclass
class LocalityModel:
    """Samples file-relative page offsets with tunable locality."""

    file_bytes: int
    zipf_a: float = 1.1
    working_set: float = 0.2
    p_run: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.file_bytes < _PAGE:
            raise ValueError("file too small")
        if not 0 < self.working_set <= 1:
            raise ValueError("working_set must be in (0, 1]")
        if not 0 <= self.p_run < 1:
            raise ValueError("p_run must be in [0, 1)")
        self._rng = np.random.default_rng(self.seed)
        self.n_pages = self.file_bytes // _PAGE
        hot_pages = max(1, int(self.n_pages * self.working_set))
        # Zipf weights over the hot set; rank -> page via a fixed permutation
        ranks = np.arange(1, hot_pages + 1, dtype=np.float64)
        weights = ranks ** (-self.zipf_a)
        self._probs = weights / weights.sum()
        self._page_of_rank = self._rng.permutation(self.n_pages)[:hot_pages]
        self._last_end = 0

    def next_offset(self, size: int) -> int:
        """File offset for the next access of ``size`` bytes (page aligned)."""
        limit = self.file_bytes - size
        if limit <= 0:
            return 0
        if self._last_end and self._rng.random() < self.p_run:
            offset = min(self._last_end, limit)  # sequential continuation
        else:
            rank = self._rng.choice(len(self._probs), p=self._probs)
            offset = int(self._page_of_rank[rank]) * _PAGE
            offset = min(offset, limit)
        self._last_end = offset + size
        return offset

    def coverage_fraction(self, samples: int = 10_000, size: int = _PAGE) -> float:
        """Fraction of distinct pages touched by ``samples`` draws —
        a cheap locality self-check used by the trace tests."""
        seen: set[int] = set()
        for _ in range(samples):
            seen.add(self.next_offset(size) // _PAGE)
        return len(seen) / self.n_pages
