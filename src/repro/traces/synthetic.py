"""Synthetic trace generation from a statistical specification."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.traces.locality import LocalityModel
from repro.traces.record import TraceRecord

__all__ = ["SyntheticTraceSpec", "generate_trace"]

_PAGE = 4096


@dataclass(frozen=True)
class SyntheticTraceSpec:
    """Statistical fingerprint of a block trace.

    ``size_buckets`` is a sequence of (size bytes, probability); sizes are
    4K-aligned request sizes.  ``update_ratio`` is the fraction of *writes*
    among all ops that hit already-written space (the rest of the writes'
    share is reads — the paper's traces are replayed onto pre-written files,
    so "write" records do not occur during replay).
    """

    name: str
    update_ratio: float
    size_buckets: tuple[tuple[int, float], ...]
    zipf_a: float = 1.1
    working_set: float = 0.2
    p_run: float = 0.3

    def __post_init__(self) -> None:
        if not 0 < self.update_ratio <= 1:
            raise ValueError("update_ratio must be in (0, 1]")
        total = sum(p for _s, p in self.size_buckets)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"size bucket probabilities sum to {total}, not 1")
        for s, _p in self.size_buckets:
            if s <= 0 or s % _PAGE:
                raise ValueError(f"size {s} must be a positive multiple of 4K")

    @property
    def mean_size(self) -> float:
        return sum(s * p for s, p in self.size_buckets)


def generate_trace(
    spec: SyntheticTraceSpec,
    n_ops: int,
    file_ids: Sequence[int],
    file_bytes: int,
    seed: int = 0,
) -> list[TraceRecord]:
    """Materialize ``n_ops`` records over the given (pre-written) files."""
    if not file_ids:
        raise ValueError("need at least one file")
    rng = np.random.default_rng(seed)
    sizes = np.array([s for s, _p in spec.size_buckets])
    probs = np.array([p for _s, p in spec.size_buckets])
    localities = {
        fid: LocalityModel(
            file_bytes=file_bytes,
            zipf_a=spec.zipf_a,
            working_set=spec.working_set,
            p_run=spec.p_run,
            seed=int(rng.integers(0, 2**31)) ^ fid,
        )
        for fid in file_ids
    }
    ops = rng.random(n_ops) < spec.update_ratio
    size_draws = rng.choice(sizes, size=n_ops, p=probs)
    file_draws = rng.choice(np.asarray(file_ids), size=n_ops)

    out: list[TraceRecord] = []
    for i in range(n_ops):
        fid = int(file_draws[i])
        size = int(size_draws[i])
        offset = localities[fid].next_offset(size)
        out.append(
            TraceRecord(
                op="update" if ops[i] else "read",
                file_id=fid,
                offset=offset,
                size=size,
            )
        )
    return out
