"""Loaders for the real trace formats the paper evaluates.

The offline reproduction generates statistical twins, but a user with the
actual downloads can replay them directly:

* **MSR Cambridge** (SNIA iotta #388):
  ``Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime``
* **Alibaba block traces** (github.com/alibaba/block-traces):
  ``device_id,opcode,offset,length,timestamp``
* **Tencent CBS** (SNIA iotta #27917):
  ``Timestamp,Offset,Size,IOType,VolumeID`` (size in 512 B sectors)

Each loader normalizes to :class:`~repro.traces.record.TraceRecord`:
volumes/devices map onto the replayed files round-robin, offsets wrap to
the file size, and writes are classified as updates (replay targets
pre-written files, matching the paper's methodology).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Sequence, TextIO

from repro.traces.record import TraceRecord

__all__ = ["load_msr_csv", "load_alibaba_csv", "load_tencent_csv", "load_trace"]

_SECTOR = 512
_PAGE = 4096


def _open(source: str | Path | TextIO) -> TextIO:
    if hasattr(source, "read"):
        return source  # already a file-like object
    return open(source, "r", newline="")


def _normalize(
    op_is_write: bool,
    volume: str,
    offset: int,
    size: int,
    file_ids: Sequence[int],
    file_bytes: int,
    volume_map: dict[str, int],
) -> TraceRecord | None:
    if size <= 0:
        return None
    if volume not in volume_map:
        volume_map[volume] = file_ids[len(volume_map) % len(file_ids)]
    file_id = volume_map[volume]
    # align + wrap into the replay file (wrap first, then align down so the
    # result is both in-bounds and page aligned)
    size = min(max(_PAGE, -(-size // _PAGE) * _PAGE), file_bytes)
    offset = offset % max(_PAGE, file_bytes - size + 1)
    offset -= offset % _PAGE
    return TraceRecord(
        op="update" if op_is_write else "read",
        file_id=file_id,
        offset=offset,
        size=size,
    )


def load_msr_csv(
    source: str | Path | TextIO,
    file_ids: Sequence[int],
    file_bytes: int,
    max_records: int | None = None,
) -> list[TraceRecord]:
    """Parse an MSR Cambridge volume trace."""
    out: list[TraceRecord] = []
    volume_map: dict[str, int] = {}
    with _open(source) as fh:
        for row in csv.reader(fh):
            if len(row) < 6 or not row[0].strip().isdigit():
                continue  # header / malformed line
            _ts, host, disk, kind, offset, size = (c.strip() for c in row[:6])
            rec = _normalize(
                kind.lower().startswith("w"),
                f"{host}.{disk}",
                int(offset),
                int(size),
                file_ids,
                file_bytes,
                volume_map,
            )
            if rec:
                out.append(rec)
            if max_records and len(out) >= max_records:
                break
    return out


def load_alibaba_csv(
    source: str | Path | TextIO,
    file_ids: Sequence[int],
    file_bytes: int,
    max_records: int | None = None,
) -> list[TraceRecord]:
    """Parse an Alibaba block trace (device_id,opcode,offset,length,timestamp)."""
    out: list[TraceRecord] = []
    volume_map: dict[str, int] = {}
    with _open(source) as fh:
        for row in csv.reader(fh):
            if len(row) < 5:
                continue
            device, opcode, offset, length, _ts = (c.strip() for c in row[:5])
            if opcode.upper() not in ("R", "W"):
                continue
            rec = _normalize(
                opcode.upper() == "W",
                device,
                int(offset),
                int(length),
                file_ids,
                file_bytes,
                volume_map,
            )
            if rec:
                out.append(rec)
            if max_records and len(out) >= max_records:
                break
    return out


def load_tencent_csv(
    source: str | Path | TextIO,
    file_ids: Sequence[int],
    file_bytes: int,
    max_records: int | None = None,
) -> list[TraceRecord]:
    """Parse a Tencent CBS trace (offset/size in 512 B sectors; IOType 1 = write)."""
    out: list[TraceRecord] = []
    volume_map: dict[str, int] = {}
    with _open(source) as fh:
        for row in csv.reader(fh):
            if len(row) < 5:
                continue
            _ts, offset, size, io_type, volume = (c.strip() for c in row[:5])
            if io_type not in ("0", "1"):
                continue
            rec = _normalize(
                io_type == "1",
                volume,
                int(offset) * _SECTOR,
                int(size) * _SECTOR,
                file_ids,
                file_bytes,
                volume_map,
            )
            if rec:
                out.append(rec)
            if max_records and len(out) >= max_records:
                break
    return out


_LOADERS = {
    "msr": load_msr_csv,
    "alibaba": load_alibaba_csv,
    "tencent": load_tencent_csv,
}


def load_trace(
    fmt: str,
    source: str | Path | TextIO,
    file_ids: Sequence[int],
    file_bytes: int,
    max_records: int | None = None,
) -> list[TraceRecord]:
    """Dispatch by format name: "msr" | "alibaba" | "tencent"."""
    try:
        loader = _LOADERS[fmt]
    except KeyError:
        raise KeyError(f"unknown trace format {fmt!r}; choose from {sorted(_LOADERS)}")
    return loader(source, file_ids, file_bytes, max_records)
