"""Workload traces: statistical twins of Ali-Cloud, Ten-Cloud and MSR.

The real traces are multi-GB downloads unavailable offline; each generator
here reproduces the statistics the paper (and the traces' own publications)
report — update ratio, request-size distribution, and spatio-temporal
locality — which are the properties the update methods are sensitive to.
See DESIGN.md §1 for the substitution argument.
"""

from repro.traces.record import TraceRecord
from repro.traces.locality import LocalityModel
from repro.traces.synthetic import SyntheticTraceSpec, generate_trace
from repro.traces.alicloud import alicloud_spec
from repro.traces.tencloud import tencloud_spec
from repro.traces.msr import MSR_VOLUMES, msr_spec
from repro.traces.loader import (
    load_alibaba_csv,
    load_msr_csv,
    load_tencent_csv,
    load_trace,
)
from repro.traces.replayer import TraceReplayer, ReplayResult
from repro.traces.stats import trace_statistics

__all__ = [
    "TraceRecord",
    "LocalityModel",
    "SyntheticTraceSpec",
    "generate_trace",
    "alicloud_spec",
    "tencloud_spec",
    "MSR_VOLUMES",
    "msr_spec",
    "load_msr_csv",
    "load_alibaba_csv",
    "load_tencent_csv",
    "load_trace",
    "TraceReplayer",
    "ReplayResult",
    "trace_statistics",
]
