"""Trace statistics: verify a generated trace matches its specification."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.traces.record import TraceRecord

__all__ = ["trace_statistics"]

_PAGE = 4096


def trace_statistics(records: Sequence[TraceRecord]) -> dict[str, float]:
    """Summary statistics: update ratio, size CDF points, footprint."""
    if not records:
        return {
            "n_ops": 0,
            "update_ratio": 0.0,
            "p_4k": 0.0,
            "p_le_16k": 0.0,
            "mean_size": 0.0,
            "footprint_fraction": 0.0,
        }
    n = len(records)
    updates = [r for r in records if r.op == "update"]
    sizes = np.array([r.size for r in updates]) if updates else np.array([0])
    pages_touched: set[tuple[int, int]] = set()
    max_extent: dict[int, int] = {}
    for r in records:
        for page in range(r.offset // _PAGE, -(-(r.offset + r.size) // _PAGE)):
            pages_touched.add((r.file_id, page))
        max_extent[r.file_id] = max(
            max_extent.get(r.file_id, 0), r.offset + r.size
        )
    total_pages = sum(-(-ext // _PAGE) for ext in max_extent.values())
    return {
        "n_ops": float(n),
        "update_ratio": len(updates) / n,
        "p_4k": float((sizes == 4096).mean()) if updates else 0.0,
        "p_le_16k": float((sizes <= 16384).mean()) if updates else 0.0,
        "mean_size": float(sizes.mean()) if updates else 0.0,
        "footprint_fraction": len(pages_touched) / max(1, total_pages),
    }
