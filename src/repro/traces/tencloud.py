"""Ten-Cloud (Tencent CBS) trace twin.

Published statistics (paper §2.1 citing Zhang et al. 2020): 69% of requests
are updates; 69% of updates are 4 KB and 88% are <= 16 KB on average.
Locality is strong — over 80% of volumes process less than 5% of their data
(§2.3.3) — which is why TSUE's merging wins hardest here.
"""

from __future__ import annotations

from repro.traces.synthetic import SyntheticTraceSpec

__all__ = ["tencloud_spec"]

_KB = 1024


def tencloud_spec() -> SyntheticTraceSpec:
    return SyntheticTraceSpec(
        name="tencloud",
        update_ratio=0.69,
        size_buckets=(
            (4 * _KB, 0.69),  # 69% exactly 4 KB
            (8 * _KB, 0.12),
            (16 * _KB, 0.07),  # cumulative <=16K: 88%
            (32 * _KB, 0.06),
            (64 * _KB, 0.04),
            (128 * _KB, 0.02),
        ),
        zipf_a=1.3,
        working_set=0.05,  # hot 5% of the space takes nearly all accesses
        p_run=0.35,
    )
