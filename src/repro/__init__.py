"""repro — a full reproduction of TSUE (HPDC '25).

TSUE is a two-stage data update method for erasure-coded cluster file
systems: updates are appended synchronously to a replicated DataLog, then
recycled asynchronously in real time through a three-layer log pipeline
(DataLog -> DeltaLog -> ParityLog) that exploits spatio-temporal locality.

Quick start::

    from repro import ClusterConfig, ECFS, TraceReplayer
    from repro.traces import tencloud_spec, generate_trace

    ecfs = ECFS(ClusterConfig(k=6, m=4), method="tsue")
    files = ecfs.populate(n_files=2, stripes_per_file=4)
    trace = generate_trace(tencloud_spec(), 2000, files,
                           file_bytes=ecfs.mds.lookup(files[0]).size)
    result = TraceReplayer(ecfs, trace).run(n_clients=16)
    ecfs.drain(); ecfs.verify()
    print(result.iops, ecfs.metrics.latency_stats())

Packages: ``sim`` (discrete-event engine), ``gf``/``ec`` (GF(256) +
Reed-Solomon), ``storage`` (SSD/HDD models + wear), ``net`` (fabric),
``cluster`` (ECFS), ``core`` (TSUE log structures), ``update`` (FO, FL, PL,
PLR, PARIX, CoRD, TSUE), ``traces``, ``metrics``, ``harness`` (one driver
per paper table/figure).
"""

from repro.cluster import ClusterConfig, ECFS, RecoveryManager
from repro.ec import RSCode
from repro.sim import Environment
from repro.traces import TraceReplayer, generate_trace
from repro.update import METHODS, TSUEOptions, make_method

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "ECFS",
    "RecoveryManager",
    "RSCode",
    "Environment",
    "TraceReplayer",
    "generate_trace",
    "METHODS",
    "TSUEOptions",
    "make_method",
    "__version__",
]
