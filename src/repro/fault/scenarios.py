"""The named scenario catalog (``python -m repro scenario --list``).

Each entry is a factory returning a fresh :class:`ScenarioSpec`; all specs
end with the cluster-wide stripe-verify oracle and a canonical metric
digest, and every one is seed-deterministic.  To add a scenario, write a
``_spec_<name>()`` factory composing a workload + :class:`FaultSchedule` +
invariant checks, and register it in :data:`SCENARIOS`.
"""

from __future__ import annotations

from typing import Callable

from repro.background.config import BackgroundConfig
from repro.common.units import KiB, MiB
from repro.fault.events import (
    BounceOSD,
    CorruptBlock,
    CrashOSD,
    DegradeNIC,
    FaultSchedule,
    OSDDecommission,
    OSDJoin,
    PartitionNet,
    ScrubPass,
    SlowDisk,
    StickDisk,
    WeightChange,
    after_drain,
    after_ops,
    after_recycles,
    mid_rebalance,
)
from repro.fault.runner import ScenarioSpec

__all__ = ["SCENARIOS", "get_scenario"]


# ------------------------------------------------------------------- checks
def _expect_recoveries(n: int):
    def check(ecfs, injector):
        if len(injector.recovery_reports) != n:
            raise AssertionError(
                f"expected {n} recoveries, saw {len(injector.recovery_reports)}"
            )
        for report in injector.recovery_reports:
            if report.blocks_rebuilt <= 0:
                raise AssertionError("a recovery rebuilt nothing")

    return check


def _expect_no_recovery(ecfs, injector):
    if injector.recovery_reports:
        raise AssertionError("no rebuild expected in this scenario")


def _expect_all_ops_served(ecfs, injector):
    # outages may fail individual ops; a pure-degradation scenario must not
    total = ecfs.metrics.updates.count + ecfs.metrics.reads.count
    if total <= 0:
        raise AssertionError("workload did not run")


def _expect_scrub_repaired(n: int):
    def check(ecfs, injector):
        repaired = sum(len(r.repaired) for r in injector.scrub_reports)
        if repaired != n:
            raise AssertionError(f"expected {n} repaired blocks, saw {repaired}")
        for osd in ecfs.osds:
            if osd.store.corrupted:
                raise AssertionError(f"{osd.name} still has latent errors")

    return check


def _expect_rebalanced(n_events: int = 1, max_move_factor: float | None = 1.5):
    """Every topology event ran a rebalance to completion: all blocks sit at
    their epoch-ideal homes, and (for minimal-movement policies) the moved
    bytes stay within ``max_move_factor / n`` of stored bytes."""

    def check(ecfs, injector):
        if len(injector.rebalance_reports) != n_events:
            raise AssertionError(
                f"expected {n_events} rebalances, saw "
                f"{len(injector.rebalance_reports)}"
            )
        if not ecfs.placement.balanced():
            raise AssertionError(
                f"{len(ecfs.placement.remapped)} blocks still off their "
                "epoch-ideal homes after the rebalance"
            )
        if max_move_factor is not None:
            total = len(ecfs.known_blocks) * ecfs.config.block_size
            n = len([o for o in ecfs.osds if not o.failed]) or len(ecfs.osds)
            bound = max_move_factor / n * total
            moved = sum(r.moved_bytes for r in injector.rebalance_reports)
            if moved > bound:
                raise AssertionError(
                    f"rebalance moved {moved} bytes, above the minimal-"
                    f"movement bound {bound:.0f} ({max_move_factor}/{n} "
                    "of stored bytes)"
                )

    return check


def _expect_epoch(n: int):
    def check(ecfs, injector):
        if ecfs.placement.epoch != n:
            raise AssertionError(
                f"expected placement epoch {n}, at {ecfs.placement.epoch}"
            )

    return check


# ---------------------------------------------------------------- scenarios
def _spec_crash_mid_update() -> ScenarioSpec:
    """Single OSD crashes with updates in flight; heartbeat detects it, the
    cluster rebuilds, clients ride out the outage (Fig. 8b's story)."""

    def faults(spec: ScenarioSpec) -> FaultSchedule:
        # recovery starts only after the heartbeat monitor had time to
        # notice the silence (timeout + a couple of monitor ticks)
        return FaultSchedule().when(
            after_ops(spec.n_ops // 3),
            CrashOSD(
                osd=0, recover=True,
                detect_delay=spec.hb_timeout + 2 * spec.hb_interval,
            ),
        )

    return ScenarioSpec(
        name="crash-mid-update",
        description="single OSD crash mid-update; heartbeat-detected rebuild",
        method="tsue",
        heartbeat=True,
        n_ops=180,
        build_faults=faults,
        checks=[_expect_recoveries(1)],
    )


def _spec_double_failure() -> ScenarioSpec:
    """Two overlapping failures inside RS(6,3)'s tolerance: the second node
    dies while the first rebuild may still be running — rebuild workers
    retry against freshly chosen survivors."""

    def faults(spec: ScenarioSpec) -> FaultSchedule:
        return (
            FaultSchedule()
            .when(after_ops(spec.n_ops // 4), CrashOSD(osd=2, recover=True))
            .when(after_ops(spec.n_ops // 2), CrashOSD(osd=7, recover=True))
        )

    return ScenarioSpec(
        name="double-failure",
        description="two crashes within RS(6,3) tolerance, overlapping rebuilds",
        method="tsue",
        n_osds=12,
        k=6,
        m=3,
        n_ops=160,
        build_faults=faults,
        checks=[_expect_recoveries(2)],
    )


def _spec_crash_during_recycle() -> ScenarioSpec:
    """Crash lands while the three-layer log pipeline is actively recycling
    (DataLog/DeltaLog/ParityLog units in flight): exactly-once replay from
    the stash + dedup tokens keeps every acked update durable."""

    def faults(spec: ScenarioSpec) -> FaultSchedule:
        return FaultSchedule().when(
            after_recycles(3),
            CrashOSD(osd=1, recover=True),
            poll=0.002,  # land close to the recycle activity
            deadline=None,
        )

    return ScenarioSpec(
        name="crash-during-recycle",
        description="OSD crash amid DataLog/DeltaLog/ParityLog recycling",
        method="tsue",
        log_unit_size=64 * KiB,  # block-sized units force frequent recycles
        n_ops=220,
        build_faults=faults,
        checks=[_expect_recoveries(1)],
    )


def _spec_rolling_restart() -> ScenarioSpec:
    """Three nodes bounce in sequence (transient downtime, contents intact,
    no rebuild): parity deltas addressed to a down node are buffered and
    replayed on restart, so the cluster verifies without any re-encode."""

    def faults(spec: ScenarioSpec) -> FaultSchedule:
        # short downtimes: the bounces stay (mostly) disjoint, so the
        # cluster never exceeds its m=2 concurrent-outage tolerance
        return (
            FaultSchedule()
            .when(after_ops(spec.n_ops // 4), BounceOSD(osd=0, downtime=0.01))
            .when(after_ops(spec.n_ops // 2), BounceOSD(osd=1, downtime=0.01))
            .when(after_ops(3 * spec.n_ops // 4), BounceOSD(osd=2, downtime=0.01))
        )

    return ScenarioSpec(
        name="rolling-restart",
        description="rolling restarts of three OSDs under load, no rebuild",
        method="tsue",
        n_ops=200,
        build_faults=faults,
        checks=[_expect_no_recovery],
    )


def _spec_partition_heal() -> ScenarioSpec:
    """A two-node island is cut off: heartbeats stop crossing the cut, the
    MDS declares the islanders dead, the partition heals, and the monitor
    readmits them — no data was lost, nothing is rebuilt."""

    def faults(spec: ScenarioSpec) -> FaultSchedule:
        return FaultSchedule().when(
            after_ops(spec.n_ops // 4),
            PartitionNet(group=("osd0", "osd1"), heal_after=spec.hb_timeout + 2.0),
        )

    def check_detected(ecfs, injector):
        # the islanders must have been declared failed and later readmitted
        if ecfs.mds.failed & {0, 1}:
            raise AssertionError("islanders were not readmitted after the heal")

    return ScenarioSpec(
        name="partition-heal",
        description="network partition detected by heartbeats, then healed",
        method="tsue",
        heartbeat=True,
        n_ops=160,
        build_faults=faults,
        checks=[_expect_no_recovery, check_detected],
    )


def _spec_scrub_repair() -> ScenarioSpec:
    """Latent sector corruption strikes one data and one parity block after
    the workload settles; the scrubber's checksum pass localizes both,
    reconstructs them by RS decode, and rewrites them in place."""

    def faults(spec: ScenarioSpec) -> FaultSchedule:
        settled = lambda e: after_ops(spec.n_ops)(e) and after_drain(e)  # noqa: E731
        corrupted = lambda e: any(  # noqa: E731
            osd.store.corrupted for osd in e.osds
        )
        return (
            FaultSchedule()
            .when(settled, CorruptBlock(nth=1, kind="data", offset=4096, nbytes=512))
            .when(settled, CorruptBlock(nth=2, kind="parity", offset=0, nbytes=2048))
            .when(corrupted, ScrubPass(repair=True))
        )

    return ScenarioSpec(
        name="scrub-repair",
        description="latent sector corruption found and repaired by scrub",
        method="tsue",
        n_ops=120,
        build_faults=faults,
        checks=[_expect_scrub_repaired(2), _expect_no_recovery],
    )


def _spec_slow_disk() -> ScenarioSpec:
    """Gray failure: one node's disk slows 6x and briefly hangs while its
    NIC loses packets and adds latency — service degrades but every op
    completes and the cluster stays consistent."""

    def faults(spec: ScenarioSpec) -> FaultSchedule:
        return (
            FaultSchedule()
            .when(after_ops(spec.n_ops // 5), SlowDisk(osd=3, factor=6.0))
            .when(
                after_ops(spec.n_ops // 5),
                DegradeNIC(
                    node="osd3", bw_factor=0.5, extra_latency=2e-4, loss_prob=0.02
                ),
            )
            .when(after_ops(spec.n_ops // 2), StickDisk(osd=3, duration=0.05))
        )

    return ScenarioSpec(
        name="slow-disk",
        description="gray failure: slow/stuck disk + degraded lossy NIC",
        method="tsue",
        n_ops=160,
        build_faults=faults,
        checks=[_expect_all_ops_served, _expect_no_recovery],
    )


# ------------------------------------------------- topology (policy x event)
# The elastic-topology grid: every cell pairs a placement policy with a
# membership event and rides the same concurrent workload.  Sweepable as
#   python -m repro sweep --scenarios topo-join-crush,topo-join-rotation ...
_TOPO_GEOMETRY = dict(
    # (k+m)/n = 0.375: CRUSH's collision-retry cascade stays well inside the
    # 1.5/n minimal-movement bound (see repro.placement.crush); enough
    # stripes that the bound is statistically comfortable at any seed
    n_osds=16,
    k=4,
    m=2,
    n_files=4,
    stripes_per_file=6,
    n_ops=160,
)


def _spec_topo_join_crush() -> ScenarioSpec:
    """A 17th OSD joins mid-workload under CRUSH: the epoch advances, the
    rebalancer migrates ~1/n of blocks (bandwidth-capped) onto the newcomer
    while updates keep flowing, and the cluster verifies byte-clean."""

    def faults(spec: ScenarioSpec) -> FaultSchedule:
        return FaultSchedule().when(
            after_ops(spec.n_ops // 3),
            OSDJoin(weight=1.0, bw_cap=256 * MiB, parallel=2),
        )

    return ScenarioSpec(
        name="topo-join-crush",
        description="OSD joins under CRUSH: minimal-movement rebalance under load",
        method="tsue",
        placement="crush",
        build_faults=faults,
        checks=[
            _expect_rebalanced(1, max_move_factor=1.5),
            _expect_epoch(1),
            _expect_no_recovery,
        ],
        **_TOPO_GEOMETRY,
    )


def _spec_topo_join_rotation() -> ScenarioSpec:
    """The same join under the rotation policy: correctness holds (epoch
    remaps + rebalance + verify), but rotation re-rotates nearly every
    stripe — the movement contrast that motivates CRUSH (no minimal-
    movement bound is asserted here, only completion)."""

    def faults(spec: ScenarioSpec) -> FaultSchedule:
        return FaultSchedule().when(
            after_ops(spec.n_ops // 3),
            OSDJoin(weight=1.0, bw_cap=256 * MiB, parallel=2),
        )

    return ScenarioSpec(
        name="topo-join-rotation",
        description="OSD joins under rotation: full reshuffle, still verifies",
        method="tsue",
        placement="rotation",
        build_faults=faults,
        checks=[
            _expect_rebalanced(1, max_move_factor=None),
            _expect_epoch(1),
            _expect_no_recovery,
        ],
        **_TOPO_GEOMETRY,
    )


def _spec_topo_crash_mid_rebalance() -> ScenarioSpec:
    """An OSD crashes while the join-rebalance is mid-flight: moves that
    touch the victim skip to recovery, committed moves stand, shipped or
    settled log content survives the re-home — and the runner's stripe
    oracle proves the rebuild byte-identical.  The `mid_rebalance`
    predicate (>=2 blocks moved, moves outstanding) pins the crash inside
    the migration window; the low ``bw_cap`` stretches that window so the
    predicate's poll cannot miss it."""

    def faults(spec: ScenarioSpec) -> FaultSchedule:
        return (
            FaultSchedule()
            .when(
                after_ops(spec.n_ops // 3),
                OSDJoin(weight=1.0, bw_cap=64 * MiB, parallel=2),
            )
            .when(
                mid_rebalance(min_moved=2),
                CrashOSD(osd=3, recover=True),
                poll=0.0002,
            )
        )

    return ScenarioSpec(
        name="topo-crash-mid-rebalance",
        description="OSD crash mid-migration: epoch remaps + rebuild stay byte-exact",
        method="tsue",
        placement="crush",
        build_faults=faults,
        checks=[
            _expect_recoveries(1),
            _expect_epoch(1),
        ],
        **_TOPO_GEOMETRY,
    )


def _spec_topo_decommission_crush() -> ScenarioSpec:
    """Graceful removal under CRUSH: the victim's blocks drain to survivors
    at a bandwidth cap, the node retires empty, and no rebuild ever runs —
    the planned counterpart of the crash scenarios."""

    def faults(spec: ScenarioSpec) -> FaultSchedule:
        return FaultSchedule().when(
            after_ops(spec.n_ops // 3),
            OSDDecommission(osd=5, retire=True, bw_cap=256 * MiB, parallel=2),
        )

    def check_retired(ecfs, injector):
        if not ecfs.osds[5].failed:
            raise AssertionError("decommissioned osd5 was not retired")
        still = [
            b for b in ecfs.known_blocks if ecfs.placement.home_of(b) == 5
        ]
        if still:
            raise AssertionError(f"osd5 still homes {len(still)} blocks")

    return ScenarioSpec(
        name="topo-decommission-crush",
        description="graceful OSD decommission: drain, retire, no rebuild",
        method="tsue",
        placement="crush",
        build_faults=faults,
        checks=[
            # the drain must move exactly the victim's holdings; with a
            # scenario-sized population that can exceed 1.5/n by balance
            # granularity, so the byte bound here is looser (the planner
            # property tests assert the tight bound at scale)
            _expect_rebalanced(1, max_move_factor=2.5),
            _expect_epoch(1),
            _expect_no_recovery,
            check_retired,
        ],
        **_TOPO_GEOMETRY,
    )


def _spec_topo_weight_crush() -> ScenarioSpec:
    """A device is reweighted to a quarter capacity (pre-failure drain):
    CRUSH sheds a proportional share of its blocks and load follows the
    new weights."""

    def faults(spec: ScenarioSpec) -> FaultSchedule:
        return FaultSchedule().when(
            after_ops(spec.n_ops // 3),
            WeightChange(osd=2, weight=0.25, bw_cap=256 * MiB, parallel=2),
        )

    def check_shed(ecfs, injector):
        loads = ecfs.placement_loads()
        mean = sum(loads.values()) / len(loads)
        if loads[2] >= mean:
            raise AssertionError(
                f"reweighted osd2 still holds {loads[2]} blocks "
                f"(cluster mean {mean:.1f})"
            )

    return ScenarioSpec(
        name="topo-weight-crush",
        description="device reweight under CRUSH: proportional block shed",
        method="tsue",
        placement="crush",
        build_faults=faults,
        checks=[
            _expect_rebalanced(1, max_move_factor=None),
            _expect_epoch(1),
            _expect_no_recovery,
            check_shed,
        ],
        **_TOPO_GEOMETRY,
    )


# ------------------------------------------------------- SLO (QoS x fault)
# The front-end grid: three tenants spanning the QoS classes ride the same
# open-loop arrival mix while one fault archetype plays out — crash (retries
# heal it), partition (hedged reads dodge it), and a join-rebalance
# (foreground latency during migration becomes a window series).  Sweepable
# as  python -m repro slo  or  python -m repro sweep --scenarios slo-...
def _slo_tenants():
    from repro.traces.replayer import TenantSpec

    return (
        TenantSpec(name="t-gold", qos="gold", rate=500.0, n_ops=60),
        TenantSpec(name="t-silver", qos="silver", rate=400.0, n_ops=60),
        TenantSpec(name="t-bronze", qos="bronze", rate=300.0, n_ops=60),
    )


_SLO_GEOMETRY = dict(
    n_osds=12,
    k=4,
    m=2,
    n_files=2,
    stripes_per_file=3,
    n_ops=180,  # drives the after_ops fault triggers (sum of tenant n_ops)
    frontend=True,
)


def _slo_availability_floor(floors: dict[str, float]):
    """Per-class availability floors over the whole run (the gold floor is
    the SLO story: it must stay high *through* the fault window)."""

    def check(ecfs, injector):
        summary = ecfs.frontend.slo.summary()
        by_class: dict[str, list[float]] = {}
        for who, stats in summary.items():
            by_class.setdefault(who.split("/")[1], []).append(stats["availability"])
        for qos, floor in floors.items():
            got = min(by_class.get(qos, [0.0]))
            if got < floor:
                raise AssertionError(
                    f"{qos} availability {got:.4f} under the {floor} floor"
                )

    return check


def _expect_frontend_served(ecfs, injector):
    stats = ecfs.frontend.stats()
    if stats["submitted"] <= 0 or stats["ok"] <= 0:
        raise AssertionError("front-end served nothing")


def _spec_slo_qos_crash() -> ScenarioSpec:
    """An OSD crashes and is rebuilt under open-loop multi-tenant load: the
    retry layer rides out the outage (UnavailableError -> backoff -> the
    recovered home), so availability dips instead of cratering."""

    def faults(spec: ScenarioSpec) -> FaultSchedule:
        # osd1 hosts data blocks of this population (so foreground updates
        # genuinely hit the outage); detection is fast enough that backoff
        # retries can bridge crash -> rebuilt-and-re-homed
        return FaultSchedule().when(
            after_ops(spec.n_ops // 6),
            CrashOSD(osd=1, recover=True, detect_delay=0.02),
        )

    def check_retried(ecfs, injector):
        if ecfs.frontend.stats()["retries"] <= 0:
            raise AssertionError("crash produced no front-end retries")

    return ScenarioSpec(
        name="slo-qos-crash",
        description="QoS grid vs. OSD crash: retries heal the outage window",
        method="tsue",
        tenants=_slo_tenants(),
        build_faults=faults,
        checks=[
            _expect_recoveries(1),
            _expect_frontend_served,
            check_retried,
            _slo_availability_floor({"gold": 0.75, "silver": 0.75}),
        ],
        **_SLO_GEOMETRY,
    )


def _spec_slo_qos_partition() -> ScenarioSpec:
    """A two-node island is cut mid-run: updates addressed into the island
    park until the heal (deadline misses), while hedged reads reconstruct
    from survivors outside the cut and keep read availability up."""

    def faults(spec: ScenarioSpec) -> FaultSchedule:
        return FaultSchedule().when(
            after_ops(spec.n_ops // 3),
            PartitionNet(group=("osd1", "osd2"), heal_after=0.3),
        )

    def check_hedged(ecfs, injector):
        stats = ecfs.frontend.stats()
        if stats["hedge_wins"] <= 0:
            raise AssertionError("no hedged read dodged the partition")

    return ScenarioSpec(
        name="slo-qos-partition",
        description="QoS grid vs. network partition: hedged reads dodge the cut",
        method="tsue",
        tenants=_slo_tenants(),
        build_faults=faults,
        checks=[
            _expect_no_recovery,
            _expect_frontend_served,
            check_hedged,
            _slo_availability_floor({"gold": 0.5}),
        ],
        **_SLO_GEOMETRY,
    )


def _spec_slo_qos_rebalance() -> ScenarioSpec:
    """An OSD joins and the rebalancer migrates under open-loop load: the
    windowed SLO series captures foreground latency during the migration —
    the ROADMAP's 'rebalance-aware SLO metrics' deferral."""

    def faults(spec: ScenarioSpec) -> FaultSchedule:
        # a tight bandwidth cap stretches the migration across most of the
        # arrival span, so the window series actually shows the interference
        return FaultSchedule().when(
            after_ops(spec.n_ops // 6),
            OSDJoin(weight=1.0, bw_cap=8 * MiB, parallel=2),
        )

    return ScenarioSpec(
        name="slo-qos-rebalance",
        description="QoS grid vs. join-rebalance: latency-during-migration series",
        method="tsue",
        placement="crush",
        tenants=_slo_tenants(),
        build_faults=faults,
        checks=[
            _expect_rebalanced(1, max_move_factor=None),
            _expect_epoch(1),
            _expect_no_recovery,
            _expect_frontend_served,
            _slo_availability_floor({"gold": 0.8, "silver": 0.6}),
        ],
        **_SLO_GEOMETRY,
    )


def _spec_slo_steady() -> ScenarioSpec:
    """The fault-free baseline of the SLO grid: every class should clear
    its availability target, so any dip in the fault cells is attributable
    to the fault, not the pipeline."""

    return ScenarioSpec(
        name="slo-steady",
        description="QoS grid, no faults: the availability baseline",
        method="tsue",
        tenants=_slo_tenants(),
        checks=[
            _expect_no_recovery,
            _expect_frontend_served,
            _slo_availability_floor({"gold": 0.9, "silver": 0.8, "bronze": 0.5}),
        ],
        **_SLO_GEOMETRY,
    )


# ------------------------------------------------- background (bg-* grid)
# The unified-maintenance-plane grid: every cell enables the per-OSD
# weighted-fair arbiter (repro.background) so recycle, scrub, repair, and
# rebalance draw from one governed budget while foreground traffic flows.
# Sweepable as  python -m repro background  or  python -m repro sweep
# --scenarios bg-...
def _expect_bg_drained(*streams: str):
    """Every named stream did work through the arbiter and drained fully
    (plus: no stream anywhere still has backlog) — the starvation-freedom
    acceptance shape of the ISSUE."""

    def check(ecfs, injector):
        stats = ecfs.background.stream_stats()
        for stream in streams:
            st = stats[stream]
            if st["granted_items"] <= 0:
                raise AssertionError(f"background stream {stream!r} did no work")
            if st["backlog_bytes"] != 0:
                raise AssertionError(
                    f"background stream {stream!r} left "
                    f"{st['backlog_bytes']:.0f}B of backlog"
                )
        if not ecfs.background.fully_drained:
            raise AssertionError("background backlog remains after settle")

    return check


def _expect_governor_engaged(ecfs, injector):
    gov = ecfs.background.governor_stats()
    if gov["breaches"] <= 0:
        raise AssertionError("the SLO governor never throttled")
    if gov["min_scale"] >= 1.0:
        raise AssertionError("governor breached but the token scale never moved")


def _expect_recovery_unstarved(ecfs, injector):
    """The recovery-priority-inversion contract: recovery-critical flushes
    jumped the governed recycle backlog instead of queueing behind it.
    Asserts (a) expedited grants actually fired — the crash found recycle
    work parked on paced grants and released it out-of-band — and (b) the
    recovery's preparation phase beat the time the floored token rate would
    have needed just to drain those grants."""
    sched = ecfs.background
    if sched.expedited_items <= 0:
        raise AssertionError(
            "recovery flush never expedited the recycle backlog"
        )
    if not injector.recovery_reports:
        raise AssertionError("no recovery ran")
    # counterfactual: the recycle bytes recovery jumped (expedited grants +
    # boost-time arbiter bypass), paced at the governor's floor — what the
    # old inversion would have charged the prepare phase
    jumped = sched.expedited_bytes + getattr(
        ecfs.method, "recovery_bypass_bytes", 0
    )
    floored_seconds = jumped / (sched.config.bandwidth * sched.config.floor)
    for report in injector.recovery_reports:
        if report.prepare_seconds >= floored_seconds:
            raise AssertionError(
                f"recovery prepare took {report.prepare_seconds:.4f}s, no "
                f"faster than the floored recycle drain "
                f"({floored_seconds:.4f}s) — the priority inversion is back"
            )


def _spec_bg_scrub_under_load() -> ScenarioSpec:
    """Continuous-scrub story (the ROADMAP's 'scrub scheduling as a
    background process'): a full verify pass runs in freeze mode *while*
    the workload updates, paced by the scrub stream's weighted-fair share —
    every checked stripe is captured consistent (no false mismatches) and
    foreground service never stops."""

    def faults(spec: ScenarioSpec) -> FaultSchedule:
        return FaultSchedule().when(
            after_ops(spec.n_ops // 3), ScrubPass(repair=True, freeze=True)
        )

    def check_scrubbed(ecfs, injector):
        report = injector.scrub_reports[0]
        if report.stripes_checked <= 0:
            raise AssertionError("the under-load scrub checked nothing")
        if report.mismatches:
            raise AssertionError(
                f"under-load scrub reported {len(report.mismatches)} torn-"
                "capture mismatches; the freeze discipline failed"
            )

    return ScenarioSpec(
        name="bg-scrub-under-load",
        description="full scrub pass under live updates via the scrub stream",
        method="tsue",
        n_osds=12,
        k=4,
        m=2,
        n_files=3,
        stripes_per_file=4,
        n_ops=180,
        background=BackgroundConfig(enabled=True, bandwidth=128 * MiB),
        build_faults=faults,
        checks=[
            _expect_all_ops_served,
            _expect_no_recovery,
            check_scrubbed,
            _expect_bg_drained("scrub", "recycle"),
        ],
    )


def _spec_bg_recycle_vs_recovery() -> ScenarioSpec:
    """Recycle-vs-recovery contention: tiny log units keep the recycle
    stream busy when a crash adds a repair storm on the same arbiter —
    repair's heavier weight wins the shared budget, yet recycle keeps
    making progress (weighted-fair, not strict-priority)."""

    def faults(spec: ScenarioSpec) -> FaultSchedule:
        return FaultSchedule().when(
            after_recycles(3),
            CrashOSD(osd=1, recover=True),
            poll=0.002,
            deadline=None,
        )

    return ScenarioSpec(
        name="bg-recycle-vs-recovery",
        description="crash rebuild and hot recycling share one arbitrated budget",
        method="tsue",
        log_unit_size=64 * KiB,
        n_ops=220,
        background=BackgroundConfig(enabled=True, bandwidth=128 * MiB),
        build_faults=faults,
        checks=[
            _expect_recoveries(1),
            _expect_bg_drained("recycle", "repair"),
        ],
    )


def _recycle_parked(ecfs) -> bool:
    """A recycle grant is queued (not in service) in some OSD lane — the
    exact state the recovery-priority inversion needs to manifest."""
    return any(
        item.stream == "recycle" and not grant.triggered
        for lane in ecfs.background._lanes.values()
        for _vft, _seq, grant, item in lane.heap
    )


def _spec_bg_storm_crash_recovery() -> ScenarioSpec:
    """Maintenance-storm crash: tiny log units seal constantly, a 3-pass
    freeze scrub keeps OSD lanes busy with multi-MiB grants, and the tight
    p99 target drives the governor to its floor — so recycle grants park
    behind in-service maintenance.  The crash lands, by predicate, at an
    instant with recycle grants provably queued; recovery's prepare/
    finalize flushes must then complete AHEAD of that backlog (recyclers
    skip the arbiter while boosted, parked grants are expedited), not at
    the floor's trickle."""

    def faults(spec: ScenarioSpec) -> FaultSchedule:
        min_ops = after_ops(spec.n_ops // 8)
        return (
            FaultSchedule()
            .when(
                after_ops(spec.n_ops // 10),
                ScrubPass(repair=False, freeze=True, passes=3),
            )
            .when(
                lambda ecfs: min_ops(ecfs) and _recycle_parked(ecfs),
                CrashOSD(osd=1, recover=True),
                poll=0.0005,
            )
        )

    return ScenarioSpec(
        name="bg-storm-crash-recovery",
        description="crash amid a floored maintenance storm: recovery outruns the recycle backlog",
        method="tsue",
        n_osds=12,
        k=4,
        m=2,
        block_size=1 * MiB,
        log_unit_size=64 * KiB,
        n_files=3,
        stripes_per_file=8,
        n_ops=360,
        frontend=True,
        placement="crush",
        tenants=_bg_gov_tenants(),
        background=BackgroundConfig(
            enabled=True,
            bandwidth=256 * MiB,
            governor=True,
            p99_target=0.0005,
            window=0.03,
            interval=0.01,
            floor=0.02,
        ),
        build_faults=faults,
        checks=[
            _expect_recoveries(1),
            _expect_recovery_unstarved,
            _expect_bg_drained("recycle", "repair"),
        ],
    )


# governor on/off pair: identical geometry, tenants, and maintenance storm
# (a join-rebalance AND a 3-pass freeze-mode scrub land mid-window while
# all three tenants stream arrivals); the only difference is the
# SLO-pressure governor.  Foreground tail inflation comes from the
# channels priority lanes cannot protect — stripe settle/freeze windows on
# zipf-hot stripes and big-block channel occupancy — and the governor's
# win is *timing*: throttled to the floor, most maintenance grants land
# after the arrival window instead of inside it.  The acceptance criterion
# (overall foreground p99 strictly better with the governor on, every
# stream still drained) is asserted across the pair in
# tests/test_background.py and reported nightly in BENCH_engine.json.
_BG_GOV_GEOMETRY = dict(
    n_osds=12,
    k=4,
    m=2,
    # big blocks make each maintenance grant (6-block scrub scan, 1-block
    # move) expensive relative to the small foreground appends — the
    # regime where an ungoverned storm visibly inflates the tail
    block_size=1 * MiB,
    log_unit_size=1 * MiB,
    n_files=3,
    stripes_per_file=8,
    n_ops=360,
    frontend=True,
    placement="crush",
)


def _bg_gov_tenants():
    from repro.traces.replayer import TenantSpec

    return (
        TenantSpec(name="t-gold", qos="gold", rate=900.0, n_ops=120),
        TenantSpec(name="t-silver", qos="silver", rate=700.0, n_ops=120),
        TenantSpec(name="t-bronze", qos="bronze", rate=500.0, n_ops=120),
    )


def _bg_gov_config(governor: bool) -> BackgroundConfig:
    return BackgroundConfig(
        enabled=True,
        bandwidth=1024 * MiB,  # ungoverned, the storm floods the window
        governor=governor,
        p99_target=0.0005,  # ~2x the steady-state p99 on this geometry
        window=0.03,
        interval=0.01,
        floor=0.05,
    )


def _bg_gov_faults(spec: ScenarioSpec) -> FaultSchedule:
    return (
        FaultSchedule()
        .when(
            after_ops(spec.n_ops // 8),
            ScrubPass(repair=False, freeze=True, passes=3),
        )
        .when(
            after_ops(spec.n_ops // 6),
            OSDJoin(weight=1.0, bw_cap=None, parallel=4),
        )
    )


def _spec_bg_rebalance_governor_on() -> ScenarioSpec:
    return ScenarioSpec(
        name="bg-rebalance-governor-on",
        description="maintenance storm (rebalance + scrub) under load, governor on",
        method="tsue",
        tenants=_bg_gov_tenants(),
        background=_bg_gov_config(governor=True),
        build_faults=_bg_gov_faults,
        checks=[
            _expect_rebalanced(1, max_move_factor=None),
            _expect_epoch(1),
            _expect_no_recovery,
            _expect_frontend_served,
            _expect_governor_engaged,
            _expect_bg_drained("rebalance", "scrub", "recycle"),
        ],
        **_BG_GOV_GEOMETRY,
    )


def _spec_bg_rebalance_governor_off() -> ScenarioSpec:
    return ScenarioSpec(
        name="bg-rebalance-governor-off",
        description="the same maintenance storm with the governor disabled (control)",
        method="tsue",
        tenants=_bg_gov_tenants(),
        background=_bg_gov_config(governor=False),
        build_faults=_bg_gov_faults,
        checks=[
            _expect_rebalanced(1, max_move_factor=None),
            _expect_epoch(1),
            _expect_no_recovery,
            _expect_frontend_served,
            _expect_bg_drained("rebalance", "scrub", "recycle"),
        ],
        **_BG_GOV_GEOMETRY,
    )


def _spec_slo_adaptive_brownout() -> ScenarioSpec:
    """AIMD admission under a brownout: one disk slows 8x mid-run; the
    adaptive controller cuts tenant rates on the windowed-p99 breach and
    recovers them when the disk heals — shedding at the door instead of
    timing out in the queues."""
    from repro.frontend.admission import AdmissionConfig

    def faults(spec: ScenarioSpec) -> FaultSchedule:
        # a cluster-wide brownout (every disk slows) so the pressure is
        # seed-independent: whichever OSDs the arrival mix hits, the
        # trailing-window p99 breaches the AIMD target
        schedule = FaultSchedule()
        for osd in range(spec.n_osds):
            schedule.when(
                after_ops(spec.n_ops // 6),
                SlowDisk(osd=osd, factor=12.0, duration=0.1),
            )
        return schedule

    def check_adapted(ecfs, injector):
        stats = ecfs.frontend.stats()
        if stats.get("admission_backoffs", 0) <= 0:
            raise AssertionError("AIMD admission never backed off")
        if stats.get("admission_min_rate_scale", 1.0) >= 1.0:
            raise AssertionError("AIMD backed off but the rate never moved")

    return ScenarioSpec(
        name="slo-adaptive-brownout",
        description="AIMD admission reacts to a slow-disk brownout",
        method="tsue",
        tenants=_slo_tenants(),
        admission=AdmissionConfig(
            # steady-state served p99 on this geometry is ~0.15 ms; the
            # brownout pushes the trailing window past this threshold
            adaptive=True, aimd_p99_target=0.0005, aimd_window=0.04
        ),
        build_faults=faults,
        checks=[
            _expect_no_recovery,
            _expect_frontend_served,
            check_adapted,
        ],
        **_SLO_GEOMETRY,
    )


_FACTORIES = [
    _spec_crash_mid_update,
    _spec_double_failure,
    _spec_crash_during_recycle,
    _spec_rolling_restart,
    _spec_partition_heal,
    _spec_scrub_repair,
    _spec_slow_disk,
    _spec_topo_join_crush,
    _spec_topo_join_rotation,
    _spec_topo_crash_mid_rebalance,
    _spec_topo_decommission_crush,
    _spec_topo_weight_crush,
    _spec_slo_steady,
    _spec_slo_qos_crash,
    _spec_slo_qos_partition,
    _spec_slo_qos_rebalance,
    _spec_slo_adaptive_brownout,
    _spec_bg_scrub_under_load,
    _spec_bg_recycle_vs_recovery,
    _spec_bg_storm_crash_recovery,
    _spec_bg_rebalance_governor_on,
    _spec_bg_rebalance_governor_off,
]

SCENARIOS: dict[str, Callable[[], ScenarioSpec]] = {
    factory().name: factory for factory in _FACTORIES
}


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return SCENARIOS[name]()
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(sorted(SCENARIOS))}"
        ) from None
