"""Canonical metric digests: the determinism oracle.

Two runs of the same experiment/scenario with the same seed must produce
byte-identical digests.  The digest covers the simulation clock, op counts,
latency sums, per-device counters, network totals, failure state, and a
hash of every block's actual bytes — so any nondeterminism in event
ordering, data movement, or fault timing changes it.

Floats are serialized with ``repr`` (shortest round-trip form), which is
deterministic for identical computation histories; the digest is therefore
stable across processes and hash-seed randomization, but not across
platforms with different floating-point libraries.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.ecfs import ECFS

__all__ = ["canonical", "content_digest", "cluster_digest"]


def canonical(obj: Any) -> str:
    """Deterministic flat serialization (sorted keys, repr'd scalars)."""
    if isinstance(obj, dict):
        inner = ",".join(
            f"{canonical(k)}:{canonical(v)}" for k, v in sorted(obj.items())
        )
        return "{" + inner + "}"
    if isinstance(obj, (list, tuple)):
        return "[" + ",".join(canonical(v) for v in obj) + "]"
    if isinstance(obj, (np.floating, float)):
        return repr(float(obj))
    if isinstance(obj, (np.integer, int)):
        return repr(int(obj))
    return repr(obj)


def content_digest(ecfs: "ECFS") -> str:
    """SHA-256 over every known block's bytes, in placement-sorted order."""
    h = hashlib.sha256()
    for bid in sorted(ecfs.known_blocks):
        osd = ecfs.osd_hosting(bid)
        h.update(str(bid).encode())
        if bid in osd.store:
            h.update(np.ascontiguousarray(osd.store.view(bid)).tobytes())
        else:
            h.update(b"<absent>")
    return h.hexdigest()


def cluster_digest(ecfs: "ECFS", include_content: bool = True) -> str:
    """SHA-256 digest of the cluster's observable end state."""
    state: dict[str, Any] = {
        "now": ecfs.env.now,
        "oracle_updates": ecfs.oracle.applied_updates,
        "known_blocks": len(ecfs.known_blocks),
        "failed": sorted(ecfs.mds.failed),
        "rehomed": len(ecfs.placement.remapped),
        "epoch": ecfs.placement.epoch,
        "updates": ecfs.metrics.updates.count,
        "reads": ecfs.metrics.reads.count,
        "update_latency_sum": float(sum(ecfs.metrics.updates.latencies)),
        "read_latency_sum": float(sum(ecfs.metrics.reads.latencies)),
        "net_bytes": ecfs.net.total_bytes,
        "net_msgs": ecfs.net.total_msgs,
        "net_dropped": ecfs.net.dropped_msgs,
        "log_debt": ecfs.total_log_debt(),
    }
    for osd in ecfs.osds:
        snap = osd.device.counters.snapshot()
        snap["fault_delay"] = osd.device.fault_delay_time
        state[f"dev_{osd.name}"] = snap
    if include_content:
        state["content"] = content_digest(ecfs)
    return hashlib.sha256(canonical(state).encode()).hexdigest()
