"""Deterministic fault injection onto a live ECFS cluster.

The :class:`FaultInjector` arms one DES process per schedule entry; each
waits for its trigger (timestamp or polled predicate), applies the event
through the cluster's fault hooks, and logs ``(sim time, description)``.
Crash events optionally drive a full :class:`RecoveryManager` rebuild after
a detection delay; bounce events restart the node and let the update method
replay whatever it buffered.  Everything is seed-deterministic: two runs of
the same schedule on the same seed produce identical event timings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.cluster.recovery import RecoveryManager, RecoveryReport
from repro.cluster.scrub import ScrubReport, Scrubber
from repro.fault.events import (
    BounceOSD,
    CorruptBlock,
    CrashOSD,
    DegradeNIC,
    FaultEvent,
    FaultSchedule,
    OSDDecommission,
    OSDJoin,
    PartitionNet,
    ScrubPass,
    SlowDisk,
    StickDisk,
    Trigger,
    WeightChange,
)
from repro.placement.rebalancer import RebalanceReport, Rebalancer

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.ecfs import ECFS

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies a :class:`FaultSchedule` to a cluster, one process per entry."""

    def __init__(
        self,
        ecfs: "ECFS",
        schedule: FaultSchedule,
        recovery: Optional[RecoveryManager] = None,
    ) -> None:
        self.ecfs = ecfs
        self.schedule = schedule
        self.recovery = recovery or RecoveryManager(ecfs)
        self.log: list[tuple[float, str]] = []
        self.recovery_reports: list[RecoveryReport] = []
        self.scrub_reports: list[ScrubReport] = []
        self.rebalance_reports: list[RebalanceReport] = []
        self.corrupted: list = []  # BlockIds injected with latent errors
        self.skipped: list[str] = []  # events whose trigger deadline passed
        self._procs: list = []

    # ------------------------------------------------------------------ API
    def start(self) -> None:
        env = self.ecfs.env
        for i, (trigger, event) in enumerate(self.schedule):
            self._procs.append(
                env.process(self._arm(trigger, event), name=f"fault-{i}")
            )

    def done(self):
        """Event firing when every scheduled fault (and its follow-up, e.g.
        a crash's recovery) has been applied."""
        return self.ecfs.env.all_of(self._procs)

    # ------------------------------------------------------------ processes
    def _arm(self, trigger: Trigger, event: FaultEvent) -> Generator:
        env = self.ecfs.env
        if trigger.at is not None:
            if trigger.at > env.now:
                yield env.timeout_at(trigger.at)
        else:
            while not trigger.when(self.ecfs):
                if trigger.deadline is not None and env.now >= trigger.deadline:
                    self.skipped.append(type(event).__name__)
                    return
                yield env.timeout(trigger.poll)
        yield from self._apply(event)

    def _note(self, text: str) -> None:
        self.log.append((self.ecfs.env.now, text))

    def _apply(self, event: FaultEvent) -> Generator:
        env = self.ecfs.env
        if isinstance(event, CrashOSD):
            self.ecfs.crash_osd(event.osd)
            self._note(f"crash osd{event.osd}")
            if event.recover:
                if event.detect_delay > 0:
                    yield env.timeout(event.detect_delay)
                report = yield env.process(
                    self.recovery.fail_and_recover(event.osd),
                    name=f"fault-recover-{event.osd}",
                )
                self.recovery_reports.append(report)
                self._note(f"recovered osd{event.osd}: {report.blocks_rebuilt} blocks")
        elif isinstance(event, BounceOSD):
            # a transient outage: no MDS declaration, no log teardown — the
            # node simply stops serving, then comes back with its data
            self.ecfs.osds[event.osd].fail()
            self._note(f"bounce osd{event.osd} down")
            yield env.timeout(event.downtime)
            self.ecfs.restart_osd(event.osd)
            self._note(f"bounce osd{event.osd} up")
        elif isinstance(event, DegradeNIC):
            self.ecfs.net.degrade(
                event.node, event.bw_factor, event.extra_latency, event.loss_prob
            )
            self._note(f"degrade nic {event.node}")
            if event.duration is not None:
                yield env.timeout(event.duration)
                self.ecfs.net.restore(event.node)
                self._note(f"restore nic {event.node}")
        elif isinstance(event, PartitionNet):
            self.ecfs.net.partition(event.group)
            self._note(f"partition {','.join(event.group)}")
            if event.heal_after is not None:
                yield env.timeout(event.heal_after)
                self.ecfs.net.heal()
                self._note("partition healed")
        elif isinstance(event, SlowDisk):
            device = self.ecfs.osds[event.osd].device
            device.set_slowdown(event.factor)
            self._note(f"slow disk osd{event.osd} x{event.factor}")
            if event.duration is not None:
                yield env.timeout(event.duration)
                device.set_slowdown(1.0)
                self._note(f"disk osd{event.osd} healthy")
        elif isinstance(event, StickDisk):
            self.ecfs.osds[event.osd].device.stick(event.duration)
            self._note(f"stick disk osd{event.osd} for {event.duration}s")
            yield env.timeout(event.duration)
        elif isinstance(event, CorruptBlock):
            bid = self._pick_block(event)
            osd = self.ecfs.osd_hosting(bid)
            nbytes = min(event.nbytes, self.ecfs.config.block_size - event.offset)
            osd.store.corrupt(bid, event.offset, nbytes)
            if self.ecfs.bulk is not None:
                # corruption mutates real block bytes out of band
                self.ecfs.bulk.note_churn()
            self.corrupted.append(bid)
            self._note(f"corrupt {bid} on {osd.name} ({nbytes}B)")
            yield env.timeout(0)
        elif isinstance(event, OSDJoin):
            osd, plan = self.ecfs.join_osd(
                weight=event.weight, host=event.host, rack=event.rack
            )
            self._note(
                f"join {osd.name} -> epoch {self.ecfs.placement.epoch} "
                f"({len(plan.moves)} moves planned)"
            )
            if event.rebalance:
                yield from self._rebalance(plan, event.bw_cap, event.parallel)
        elif isinstance(event, OSDDecommission):
            plan = self.ecfs.decommission_osd(event.osd)
            self._note(
                f"decommission osd{event.osd} -> epoch "
                f"{self.ecfs.placement.epoch} ({len(plan.moves)} moves planned)"
            )
            yield from self._rebalance(plan, event.bw_cap, event.parallel)
            if event.retire:
                retired = self.ecfs.retire_osd(event.osd)
                self._note(
                    f"retire osd{event.osd}: "
                    f"{'done' if retired else 'blocked (blocks remain)'}"
                )
        elif isinstance(event, WeightChange):
            plan = self.ecfs.set_osd_weight(event.osd, event.weight)
            self._note(
                f"reweight osd{event.osd} to {event.weight:g} -> epoch "
                f"{self.ecfs.placement.epoch} ({len(plan.moves)} moves planned)"
            )
            if event.rebalance:
                yield from self._rebalance(plan, event.bw_cap, event.parallel)
        elif isinstance(event, ScrubPass):
            for i in range(max(1, event.passes)):
                report = yield env.process(
                    Scrubber(
                        self.ecfs, repair=event.repair, freeze=event.freeze
                    ).scrub(),
                    name=f"fault-scrub{i}",
                )
                self.scrub_reports.append(report)
                self._note(
                    f"scrub: {report.stripes_checked} checked, "
                    f"{len(report.repaired)} repaired"
                )
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown fault event {event!r}")

    def _rebalance(self, plan, bw_cap, parallel) -> Generator:
        rebalancer = Rebalancer(self.ecfs, bandwidth_cap=bw_cap, parallel=parallel)
        report = yield self.ecfs.env.process(
            rebalancer.run(plan), name=f"fault-rebalance-{plan.epoch}"
        )
        self.rebalance_reports.append(report)
        self._note(report.summary())

    def _pick_block(self, event: CorruptBlock):
        k = self.ecfs.rs.k
        pool = sorted(self.ecfs.known_blocks)
        if event.kind == "data":
            pool = [b for b in pool if b.idx < k]
        elif event.kind == "parity":
            pool = [b for b in pool if b.idx >= k]
        elif event.kind != "any":
            raise ValueError(f"unknown corruption kind {event.kind!r}")
        pool = [b for b in pool if not self.ecfs.osd_hosting(b).failed]
        if not pool:
            raise ValueError("no eligible block to corrupt")
        return pool[event.nth % len(pool)]
