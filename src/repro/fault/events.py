"""Typed fault events and their triggers.

A :class:`FaultSchedule` is an ordered list of ``(Trigger, FaultEvent)``
pairs.  Triggers fire either at a simulated timestamp (``at``) or when a
predicate over the live cluster becomes true (``when`` — e.g. "after N log
units have been recycled"), polled on the DES at ``poll`` granularity with
an optional give-up ``deadline``.  Everything is plain data, so a schedule
is reusable across runs and — given one seed — replays identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.ecfs import ECFS

__all__ = [
    "Trigger",
    "FaultEvent",
    "CrashOSD",
    "BounceOSD",
    "DegradeNIC",
    "PartitionNet",
    "SlowDisk",
    "StickDisk",
    "CorruptBlock",
    "ScrubPass",
    "OSDJoin",
    "OSDDecommission",
    "WeightChange",
    "FaultSchedule",
    "after_ops",
    "after_recycles",
    "after_drain",
    "mid_rebalance",
    "total_recycled_units",
]


@dataclass(frozen=True)
class Trigger:
    """When an event fires: a sim timestamp or a cluster predicate."""

    at: Optional[float] = None
    when: Optional[Callable[["ECFS"], bool]] = None
    #: predicate poll period (simulated seconds) — well under the sim time
    #: of a small workload, so faults genuinely land mid-flight
    poll: float = 0.001
    deadline: Optional[float] = None  # give up waiting at this sim time

    def __post_init__(self) -> None:
        if (self.at is None) == (self.when is None):
            raise ValueError("exactly one of `at` / `when` must be set")


class FaultEvent:
    """Marker base class for injectable events."""


@dataclass(frozen=True)
class CrashOSD(FaultEvent):
    """Abrupt, permanent node loss; optionally drive a full rebuild.

    ``detect_delay`` models failure-detection latency (heartbeat timeout)
    between the crash and the moment recovery starts.
    """

    osd: int
    recover: bool = True
    detect_delay: float = 0.0


@dataclass(frozen=True)
class BounceOSD(FaultEvent):
    """Transient downtime: the node returns after ``downtime`` seconds with
    its contents intact (rolling-restart element; no rebuild)."""

    osd: int
    downtime: float = 1.0


@dataclass(frozen=True)
class DegradeNIC(FaultEvent):
    """NIC degradation on one node; restored after ``duration`` (None: for
    the rest of the run)."""

    node: str
    bw_factor: float = 1.0
    extra_latency: float = 0.0
    loss_prob: float = 0.0
    duration: Optional[float] = None


@dataclass(frozen=True)
class PartitionNet(FaultEvent):
    """Cut ``group`` off from the rest of the fabric; heal after
    ``heal_after`` seconds (None: stays cut)."""

    group: tuple[str, ...]
    heal_after: Optional[float] = None


@dataclass(frozen=True)
class SlowDisk(FaultEvent):
    """Multiply one OSD's device service times by ``factor``; restored
    after ``duration`` (None: for the rest of the run)."""

    osd: int
    factor: float = 4.0
    duration: Optional[float] = None


@dataclass(frozen=True)
class StickDisk(FaultEvent):
    """Hang one OSD's device for ``duration`` seconds (queued commands
    stall, then drain)."""

    osd: int
    duration: float = 0.05


@dataclass(frozen=True)
class CorruptBlock(FaultEvent):
    """Inject a latent sector error into the ``nth`` known block (sorted
    order — deterministic).  ``kind`` narrows the victim set to "data",
    "parity", or "any" blocks."""

    nth: int = 0
    kind: str = "parity"  # "data" | "parity" | "any"
    offset: int = 0
    nbytes: int = 512


@dataclass(frozen=True)
class ScrubPass(FaultEvent):
    """Run one scrub pass over the cluster (repairing if asked).

    ``freeze=True`` selects the under-load mode: stripes with in-flight
    activity are settled and frozen for the capture instead of skipped —
    required when the pass runs concurrently with foreground traffic.
    ``passes`` repeats the full walk back-to-back (a bounded stand-in for
    the continuous scrub loop of a production store).
    """

    repair: bool = True
    freeze: bool = False
    passes: int = 1


@dataclass(frozen=True)
class OSDJoin(FaultEvent):
    """Elastic growth: a new OSD (its own failure domain unless ``host``
    says otherwise) joins, the placement epoch advances, and — unless
    ``rebalance`` is off — a background rebalancer migrates the newcomer's
    share of blocks at ``bw_cap`` bytes/sec while traffic keeps flowing."""

    weight: float = 1.0
    host: Optional[int] = None
    rack: Optional[int] = None
    rebalance: bool = True
    bw_cap: Optional[float] = None
    parallel: int = 2


@dataclass(frozen=True)
class OSDDecommission(FaultEvent):
    """Graceful removal: the node leaves placement, a rebalance drains its
    blocks to the survivors, and (``retire``) it is then taken out of
    service — the planned counterpart of :class:`CrashOSD`."""

    osd: int
    retire: bool = True
    bw_cap: Optional[float] = None
    parallel: int = 2


@dataclass(frozen=True)
class WeightChange(FaultEvent):
    """Reweight one device (capacity upgrade / pre-failure drain): CRUSH
    policies shift a proportional share of blocks on the epoch advance."""

    osd: int
    weight: float
    rebalance: bool = True
    bw_cap: Optional[float] = None
    parallel: int = 2


@dataclass
class FaultSchedule:
    """Ordered (trigger, event) pairs; same-time events apply in order."""

    entries: list[tuple[Trigger, FaultEvent]] = field(default_factory=list)

    def at(self, t: float, event: FaultEvent) -> "FaultSchedule":
        self.entries.append((Trigger(at=t), event))
        return self

    def when(
        self,
        predicate: Callable[["ECFS"], bool],
        event: FaultEvent,
        poll: float = 0.001,
        deadline: Optional[float] = None,
    ) -> "FaultSchedule":
        self.entries.append(
            (Trigger(when=predicate, poll=poll, deadline=deadline), event)
        )
        return self

    def __iter__(self) -> Iterator[tuple[Trigger, FaultEvent]]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)


# ---------------------------------------------------------------- predicates
def after_ops(n: int) -> Callable[["ECFS"], bool]:
    """True once the cluster completed ``n`` client ops (updates + reads) —
    the standard way to land a fault mid-workload deterministically."""

    def pred(ecfs: "ECFS") -> bool:
        return ecfs.metrics.updates.count + ecfs.metrics.reads.count >= n

    return pred


def total_recycled_units(ecfs: "ECFS") -> int:
    """Units fully recycled so far (0 for methods without log pools)."""
    pools = getattr(ecfs.method, "pools", None)
    if not pools:
        return 0
    return sum(
        len(pool.residence)
        for layers in pools.values()
        for layer_pools in layers.values()
        for pool in layer_pools
    )


def after_recycles(n: int) -> Callable[["ECFS"], bool]:
    """True once ``n`` log units finished recycling — lands a fault in the
    thick of background recycling."""

    def pred(ecfs: "ECFS") -> bool:
        return total_recycled_units(ecfs) >= n

    return pred


def mid_rebalance(min_moved: int = 1) -> Callable[["ECFS"], bool]:
    """True while a rebalance is actively migrating: the placement epoch
    advanced, at least ``min_moved`` blocks already landed at new homes,
    and moves remain outstanding — the window a crash-during-rebalance
    scenario must hit (an epoch check alone fires before any byte moved)."""

    def pred(ecfs: "ECFS") -> bool:
        if ecfs.placement.epoch < 1 or ecfs.placement.balanced():
            return False
        return ecfs.metrics.rebalance_stats()["moved_blocks"] >= min_moved

    return pred


def after_drain(ecfs: "ECFS") -> bool:
    """True when no log debt is outstanding anywhere (quiet cluster)."""
    return all(
        ecfs.method.log_debt_bytes(osd) == 0 for osd in ecfs.osds if not osd.failed
    )
