"""Scenario runner: workload trace + fault schedule + invariant oracle.

A :class:`ScenarioSpec` composes a cluster geometry, an update method, a
synthetic workload, a :class:`~repro.fault.events.FaultSchedule`, and a
list of invariant checks.  :class:`ScenarioRunner` executes it:

1. build + populate the cluster (``fill="random"`` so verification is
   byte-strong), start heartbeats if asked, arm the fault injector;
2. replay the trace with failure-tolerant closed-loop clients — ops that
   error on a crashed node are counted, not fatal (degraded service);
3. drain logs, wait for every fault (and its recovery) to settle, drain
   again;
4. run the scenario's invariant checks, the cluster-wide stripe-verify
   oracle, and compute the canonical metric digest.

Runs are seed-deterministic: the same spec + seed yields a byte-identical
digest (asserted by the test suite and checkable via
``python -m repro scenario <name> --seed N``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.background.config import BackgroundConfig
from repro.cluster.config import ClusterConfig
from repro.cluster.ecfs import ECFS
from repro.cluster.heartbeat import HeartbeatService
from repro.common.perf import parked_gc
from repro.common.units import KiB
from repro.fault.digest import cluster_digest
from repro.fault.events import FaultSchedule
from repro.fault.injector import FaultInjector
from repro.harness.runner import resolve_trace
from repro.traces.replayer import TraceReplayer
from repro.harness.prefix import cached_trace, populate_cached

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = ["ScenarioSpec", "ScenarioResult", "ScenarioRunner"]

Check = Callable[[ECFS, FaultInjector], None]


@dataclass
class ScenarioSpec:
    """Everything needed to run one named failure scenario."""

    name: str
    description: str
    method: str = "tsue"
    n_osds: int = 10
    k: int = 4
    m: int = 2
    block_size: int = 64 * KiB
    log_unit_size: int = 128 * KiB
    device: str = "ssd"  # "ssd" | "hdd"
    n_files: int = 2
    stripes_per_file: int = 2
    #: placement policy + failure-domain topology (repro.placement)
    placement: str = "rotation"
    osds_per_host: int = 1
    hosts_per_rack: int = 4
    trace: str = "tencloud"
    n_ops: int = 150
    n_clients: int = 4
    heartbeat: bool = False
    hb_interval: float = 0.5
    hb_timeout: float = 1.6
    method_options: dict[str, Any] = field(default_factory=dict)
    #: front-end mode: replace the closed-loop replay with the QoS-aware
    #: pipeline (repro.frontend) driving per-tenant open-loop arrivals; the
    #: result then carries per-tenant/per-class SLO metrics and a windowed
    #: availability/latency time series
    frontend: bool = False
    tenants: tuple = ()  # TenantSpecs (repro.traces.replayer) when frontend
    hedge_delay: float | None = 0.02
    max_inflight: int = 16
    slo_window: float = 0.05  # series bucket width (simulated seconds)
    #: unified background-work scheduler (repro.background); None keeps the
    #: subsystem disabled (the pre-PR-5 per-stream pacing)
    background: Optional[BackgroundConfig] = None
    #: admission override for frontend runs (e.g. the AIMD adaptive mode)
    admission: Optional[Any] = None
    #: macro-op fan-out batching (repro.sim.batch); False runs the per-leg
    #: oracle path — digests must match either way
    macro_batching: bool = True
    #: table-driven request schedules (repro.sim.schedule); False runs the
    #: generator oracle path — digests must match either way
    request_schedules: bool = True
    #: vectorized bulk drain/recycle plane (repro.sim.bulk); False runs the
    #: per-unit/per-extent oracle path — digests must match either way
    bulk_drain: bool = True
    #: builds the fault schedule (specs are reusable: a fresh schedule per run)
    build_faults: Callable[["ScenarioSpec"], FaultSchedule] = field(
        default=lambda spec: FaultSchedule()
    )
    #: invariant checks run after the run settles, before stripe-verify
    checks: list[Check] = field(default_factory=list)

    def cluster_config(self, seed: int) -> ClusterConfig:
        return ClusterConfig(
            n_osds=self.n_osds,
            k=self.k,
            m=self.m,
            block_size=self.block_size,
            log_unit_size=self.log_unit_size,
            device=self.device,
            placement_policy=self.placement,
            osds_per_host=self.osds_per_host,
            hosts_per_rack=self.hosts_per_rack,
            background=self.background or BackgroundConfig(),
            macro_batching=self.macro_batching,
            request_schedules=self.request_schedules,
            bulk_drain=self.bulk_drain,
            seed=seed,
        )


@dataclass
class ScenarioResult:
    name: str
    seed: int
    digest: str
    ops: int
    updates: int
    reads: int
    failures: int
    sim_time: float
    stripes_verified: int
    fault_log: list[tuple[float, str]]
    recovery_reports: list
    scrub_reports: list
    detected: list[tuple[int, float]]  # heartbeat failure detections
    readmitted: list[tuple[int, float]]  # heartbeat recovery detections
    #: host-side performance (wall seconds, DES events, events/sec) —
    #: excluded from the canonical digest, which must not depend on the
    #: machine the scenario ran on
    wall_seconds: float = 0.0
    events: int = 0
    events_per_sec: float = 0.0
    #: topology-event outcome: rebalance reports, final epoch, and the
    #: collector's moved-bytes/time-to-balanced stats
    rebalance_reports: list = field(default_factory=list)
    epoch: int = 0
    rebalance_stats: dict = field(default_factory=dict)
    #: front-end outcome (``spec.frontend`` runs): per-tenant/class SLO
    #: aggregates, the windowed availability/p99 series, and the pipeline's
    #: shed/retry/hedge accounting — all folded into the canonical digest
    slo: dict = field(default_factory=dict)
    slo_series: dict = field(default_factory=dict)
    slo_overall: dict = field(default_factory=dict)
    frontend_stats: dict = field(default_factory=dict)
    #: unified background scheduler outcome (``spec.background`` runs):
    #: per-stream bandwidth/backlog/time-to-drain + governor accounting,
    #: folded into the canonical digest when the scheduler was enabled
    background: dict = field(default_factory=dict)
    governor: dict = field(default_factory=dict)

    def summary(self) -> str:
        lines = [
            f"scenario {self.name} (seed {self.seed})",
            f"  ops: {self.ops} ({self.updates} updates, {self.reads} reads, "
            f"{self.failures} failed during outages)",
            f"  sim time: {self.sim_time:.3f}s, "
            f"stripes verified: {self.stripes_verified}",
        ]
        for t, text in self.fault_log:
            lines.append(f"  [{t:9.4f}s] {text}")
        for rep in self.recovery_reports:
            lines.append(
                f"  recovery osd{rep.failed_osd}: {rep.blocks_rebuilt} blocks, "
                f"settle {rep.prepare_seconds:.4f}s + rebuild "
                f"{rep.rebuild_seconds:.4f}s, {rep.bandwidth / 1e6:.1f} MB/s"
            )
        for rep in self.scrub_reports:
            lines.append(
                f"  scrub: {rep.stripes_checked} stripes, "
                f"{len(rep.latent_errors)} latent errors, "
                f"{len(rep.repaired)} repaired"
            )
        for rep in self.rebalance_reports:
            lines.append(f"  {rep.summary()}")
        for who, stats in self.slo.items():
            lines.append(
                f"  slo {who}: p50 {stats['p50'] * 1e3:.2f}ms "
                f"p99 {stats['p99'] * 1e3:.2f}ms p999 {stats['p999'] * 1e3:.2f}ms "
                f"avail {stats['availability']:.4f} "
                f"goodput {stats['goodput']:.0f}/s "
                f"budget {stats['error_budget']:.2f} "
                f"(shed {stats['shed']:.0f}, retries {stats['retries']:.0f}, "
                f"hedges {stats['hedges']:.0f})"
            )
        if self.rebalance_reports:
            stats = self.rebalance_stats
            lines.append(
                f"  rebalance totals: {stats.get('moved_bytes', 0) / 1e6:.1f} MB "
                f"moved, time-to-balanced {stats.get('time_to_balanced', 0):.3f}s, "
                f"final epoch {self.epoch}"
            )
        for stream, stats in self.background.items():
            if not stats.get("submitted_items"):
                continue
            lines.append(
                f"  bg {stream}: {stats['granted_bytes'] / 1e6:.2f} MB in "
                f"{stats['granted_items']:.0f} grants, "
                f"{stats['bandwidth'] / 1e6:.1f} MB/s, "
                f"drained in {stats['time_to_drain']:.3f}s "
                f"(backlog {stats['backlog_bytes']:.0f} B)"
            )
        if self.governor.get("samples"):
            lines.append(
                f"  bg governor: {self.governor['breaches']:.0f} breaches, "
                f"min scale {self.governor['min_scale']:.2f}, final "
                f"{self.governor['final_scale']:.2f} over "
                f"{self.governor['samples']:.0f} samples"
            )
        lines.append(f"  digest: {self.digest}")
        return "\n".join(lines)


class ScenarioRunner:
    """Executes a :class:`ScenarioSpec` deterministically."""

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec

    def run(self, seed: int = 2025) -> ScenarioResult:
        # the cyclic GC is parked for the whole timed run (see
        # repro.common.perf): ambient gen-2 passes distort scenario wall
        # clocks the same way they distort run_experiment's
        with parked_gc():
            return self._run(seed)

    def _run(self, seed: int) -> ScenarioResult:
        import time as _time

        wall0 = _time.perf_counter()
        spec = self.spec
        ecfs = ECFS(
            spec.cluster_config(seed),
            method=spec.method,
            method_options=dict(spec.method_options),
        )
        files = populate_cached(
            ecfs, spec.n_files, spec.stripes_per_file, fill="random"
        )
        heartbeat: Optional[HeartbeatService] = None
        if spec.heartbeat:
            heartbeat = HeartbeatService(
                ecfs, interval=spec.hb_interval, timeout=spec.hb_timeout
            )
            heartbeat.start()
        injector = FaultInjector(ecfs, spec.build_faults(spec))
        injector.start()

        file_bytes = ecfs.mds.lookup(files[0]).size
        frontend = None
        if spec.frontend:
            # QoS pipeline + open-loop arrivals: per-tenant Poisson streams
            # submit through admission/retry/hedging; outages surface as
            # retried-or-shed requests, not as a stalled arrival process
            from repro.frontend.dispatcher import FrontEnd
            from repro.traces.replayer import OpenLoopReplayer

            frontend = FrontEnd(
                ecfs,
                admission=spec.admission,
                hedge_delay=spec.hedge_delay,
                max_inflight=spec.max_inflight,
            )
            ecfs.frontend = frontend  # visible to the spec's invariant checks
            open_result = OpenLoopReplayer(
                ecfs, frontend, list(spec.tenants), files
            ).run(seed=seed)
            ops_issued = open_result.submitted
            updates = ecfs.metrics.updates.count
            reads = ecfs.metrics.reads.count
            failures = open_result.failed + open_result.deadline_missed
        else:
            trace = cached_trace(
                resolve_trace(spec.trace), spec.n_ops, files, file_bytes, seed=seed
            )
            replay = TraceReplayer(ecfs, trace).run(
                spec.n_clients, tolerate_failures=True
            )
            ops_issued = replay.ops_issued
            updates = replay.updates
            reads = replay.reads
            failures = replay.failures

        # settle: flush logs so quiescence predicates can fire, let every
        # fault (and its recovery) run to completion, then flush the
        # replays/repairs the faults produced
        ecfs.drain()
        ecfs.env.run(injector.done())
        if frontend is not None:
            # a fault's recovery may have released straggler legs: wait the
            # pipeline fully out before anything is digested
            ecfs.env.run(ecfs.env.process(frontend.quiesce(), name="fe-quiesce2"))
        if heartbeat is not None:
            # grace period: restarted/healed nodes need a beat + a monitor
            # tick to be readmitted
            ecfs.env.run(until=ecfs.env.now + spec.hb_timeout + 2 * spec.hb_interval)
            heartbeat.stop()
        ecfs.drain()

        for check in spec.checks:
            check(ecfs, injector)
        stripes = ecfs.verify()

        slo = frontend.slo.summary() if frontend is not None else {}
        slo_series = (
            frontend.slo.series(spec.slo_window) if frontend is not None else {}
        )
        bg_enabled = ecfs.background.enabled
        bg_stats = ecfs.background.stream_stats() if bg_enabled else {}
        gov_stats = ecfs.background.governor_stats() if bg_enabled else {}
        digest = cluster_digest(ecfs)
        extra: dict = {}
        if frontend is not None:
            # fold the SLO read-out into the canonical digest so the
            # determinism oracle also covers the metrics subsystem itself
            extra["slo"] = slo
            extra["series"] = slo_series
        if bg_enabled:
            # likewise the maintenance plane: per-stream grant accounting
            # and the governor trajectory are digest-covered
            extra["background"] = bg_stats
            extra["governor"] = gov_stats
        if extra:
            import hashlib

            from repro.fault.digest import canonical

            extra["cluster"] = digest
            digest = hashlib.sha256(canonical(extra).encode()).hexdigest()

        wall = _time.perf_counter() - wall0
        return ScenarioResult(
            name=spec.name,
            seed=seed,
            digest=digest,
            ops=ops_issued,
            updates=updates,
            reads=reads,
            failures=failures,
            sim_time=ecfs.env.now,
            stripes_verified=stripes,
            fault_log=list(injector.log),
            recovery_reports=list(injector.recovery_reports),
            scrub_reports=list(injector.scrub_reports),
            detected=list(heartbeat.detected) if heartbeat else [],
            readmitted=list(heartbeat.recovered) if heartbeat else [],
            wall_seconds=wall,
            events=ecfs.env.steps,
            events_per_sec=ecfs.env.steps / wall if wall > 0 else 0.0,
            rebalance_reports=list(injector.rebalance_reports),
            epoch=ecfs.placement.epoch,
            rebalance_stats=ecfs.metrics.rebalance_stats(),
            slo=slo,
            slo_series=slo_series,
            slo_overall=frontend.slo.overall() if frontend is not None else {},
            frontend_stats=frontend.stats() if frontend is not None else {},
            background=bg_stats,
            governor=gov_stats,
        )
