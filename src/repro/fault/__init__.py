"""Deterministic fault injection for the simulated cluster.

The subsystem turns the one-off failure demos into programmable, replayable
experiments:

* :mod:`repro.fault.events` — typed fault events (OSD crash/bounce, NIC
  degradation, partitions, slow/stuck disks, latent sector corruption,
  scrub passes) with time- or predicate-based triggers;
* :mod:`repro.fault.injector` — applies a :class:`FaultSchedule` to a live
  :class:`~repro.cluster.ecfs.ECFS`, driving recoveries and logging every
  injection;
* :mod:`repro.fault.runner` — the :class:`ScenarioRunner` composing a
  workload trace + fault schedule + invariant oracle;
* :mod:`repro.fault.scenarios` — the named catalog behind
  ``python -m repro scenario``;
* :mod:`repro.fault.digest` — canonical metric digests (two runs with one
  seed are byte-identical).
"""

from repro.fault.digest import canonical, cluster_digest, content_digest
from repro.fault.events import (
    BounceOSD,
    CorruptBlock,
    CrashOSD,
    DegradeNIC,
    FaultEvent,
    FaultSchedule,
    PartitionNet,
    ScrubPass,
    SlowDisk,
    StickDisk,
    Trigger,
    after_drain,
    after_ops,
    after_recycles,
)
from repro.fault.events import OSDDecommission, OSDJoin, WeightChange
from repro.fault.injector import FaultInjector
from repro.fault.runner import ScenarioResult, ScenarioRunner, ScenarioSpec
from repro.fault.scenarios import SCENARIOS, get_scenario

__all__ = [
    "canonical",
    "cluster_digest",
    "content_digest",
    "Trigger",
    "FaultEvent",
    "FaultSchedule",
    "CrashOSD",
    "BounceOSD",
    "DegradeNIC",
    "PartitionNet",
    "SlowDisk",
    "StickDisk",
    "CorruptBlock",
    "ScrubPass",
    "OSDJoin",
    "OSDDecommission",
    "WeightChange",
    "after_ops",
    "after_recycles",
    "after_drain",
    "FaultInjector",
    "ScenarioSpec",
    "ScenarioResult",
    "ScenarioRunner",
    "SCENARIOS",
    "get_scenario",
]
