"""FL — Full Logging (Azure/GFS style; §2.2).

Every update is appended to logs — new data at the data OSD and at every
parity OSD — with no in-place work in the foreground at all.  The costs the
paper calls out are reproduced:

* a **single** unbounded log per node, so log recycling excludes appends and
  reads (modelled with a mutex resource per node);
* reads must merge the log with the base block (overlay on the read path);
* storage/network overhead of shipping full data to all m parity nodes.

FL is not in the paper's Fig. 5 line-up; it is provided for the Fig. 1
latency decomposition and for workload accounting comparisons.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Generator

import numpy as np

from repro.cluster.client import UpdateOp
from repro.cluster.ids import BlockId
from repro.cluster.osd import OSD
from repro.core.intervals import ExtentMap, MergePolicy
from repro.ec.incremental import parity_delta
from repro.sim import Resource
from repro.sim.batch import spawn_fanout
from repro.storage.base import IOKind, IOPriority
from repro.update.base import UpdateMethod

__all__ = ["FullLogging"]


class FullLogging(UpdateMethod):
    name = "fl"

    def __init__(self, ecfs) -> None:
        super().__init__(ecfs)
        # data-OSD side: block -> latest-wins extent map of logged new data
        self._datalog: dict[BlockId, ExtentMap] = {}
        self._log_bytes: dict[str, int] = defaultdict(int)
        self._raw_entries: dict[str, int] = defaultdict(int)
        self._locks: dict[str, Resource] = {}
        # unmerged entries of a failed node, recovered from the parity-side
        # mirror logs and replayed onto the rebuilt blocks
        self._stash: dict[BlockId, list] = {}

    def attach(self, osd: OSD) -> None:
        self._locks[osd.name] = Resource(self.env, capacity=1)

    def handle_update(self, osd: OSD, op: UpdateOp) -> Generator:
        yield from self._append_locked(osd, op)
        # replicate the record to every parity OSD's log (fault tolerance)
        if self.batched:
            sends = [
                self._mirror(osd, posd, op)
                for _j, posd, _pbid in self.parity_targets(op.block)
                if not posd.failed
            ]
            if sends:
                yield spawn_fanout(self.env, sends)
            return
        sends = [
            self.env.process(self._mirror(osd, posd, op), name=f"fl-p{j}")
            for j, posd, _pbid in self.parity_targets(op.block)
            if not posd.failed
        ]
        if sends:
            yield self.env.all_of(sends)

    def _append_locked(self, osd: OSD, op: UpdateOp) -> Generator:
        # single-log mutual exclusion: appends wait out any recycle
        with self._locks[osd.name].request() as lock:
            yield lock
            yield from osd.io_log_append("fulllog", op.size, tag="fl-append")
            emap = self._datalog.setdefault(op.block, ExtentMap(MergePolicy.OVERWRITE))
            emap.insert(op.offset, op.payload, own=True)
            self._log_bytes[osd.name] += op.size
            self._raw_entries[osd.name] += 1
            self.ecfs.oracle.apply(op.block, op.offset, op.payload)

    def schedule_plan(self):
        from repro.sim.schedule import fanout_slot, gen_slot

        def append(run):
            return self._append_locked(run.primary, run.op)

        def mirror_legs(run):
            osd, op = run.primary, run.op
            return [
                self._mirror(osd, posd, op)
                for _j, posd, _pbid in self.parity_targets(op.block)
                if not posd.failed
            ]

        return (gen_slot(append), fanout_slot(mirror_legs))

    def _mirror(self, osd: OSD, posd: OSD, op: UpdateOp) -> Generator:
        yield from self.forward(osd, posd, op.size)
        yield from posd.io_log_append("fulllog-mirror", op.size, tag="fl-mirror")
        self._log_bytes[posd.name] += op.size

    # ----------------------------------------------------------------- read
    def handle_read(
        self, osd: OSD, block: BlockId, offset: int, size: int
    ) -> Generator:
        """Read-time merge: base block + logged overlay (FL's read penalty)."""
        emap = self._datalog.get(block)
        with self._locks[osd.name].request() as lock:
            yield lock
            yield from osd.io_block(IOKind.READ, block, offset, size)
            buf = (
                osd.store.read(block, offset, size)
                if block in osd.store
                else np.zeros(size, dtype=np.uint8)
            )
            if emap is not None:
                # extra random read of the log region holding the overlay
                yield from osd.io_at(
                    IOKind.READ,
                    addr=hash((block, "fl")) & 0xFFFFFFFF,
                    size=size,
                    stream="fulllog-read",
                    tag="fl-read-merge",
                )
                for ext in emap.extents():
                    s, e = max(ext.start, offset), min(ext.end, offset + size)
                    if s < e:
                        buf[s - offset : e - offset] = ext.data[s - ext.start : e - ext.start]
        return buf

    # -------------------------------------------------------------- recycle
    def flush(self) -> Generator:
        per_osd: dict[str, list[BlockId]] = defaultdict(list)
        for block in list(self._datalog):
            per_osd[self.ecfs.osd_hosting(block).name].append(block)
        jobs = []
        for osd in self.ecfs.osds:
            if osd.failed:
                continue  # stashed at failure; replayed onto the rebuild
            blocks = per_osd.get(osd.name)
            if blocks:
                jobs.append(
                    self.env.process(
                        self._recycle_osd(osd, blocks), name=f"fl-flush-{osd.name}"
                    )
                )
        if jobs:
            yield self.env.all_of(jobs)
        else:
            yield self.env.timeout(0)
        # parity-side mirror logs are garbage once the primaries merged
        self._log_bytes.clear()

    def _recycle_osd(self, osd: OSD, blocks: list[BlockId]) -> Generator:
        with self._locks[osd.name].request() as lock:
            yield lock  # recycle excludes appends and reads
            for block in blocks:
                # pop only after a fully successful application: a crash
                # mid-apply must leave the entry for the stash/replay path
                # (re-application is idempotent — latest-wins data writes
                # and recomputed deltas collapse to zero)
                emap = self._datalog.get(block)
                if emap is None:
                    continue
                stripes = {(block.file_id, block.stripe)}
                self._stripes_busy_begin(stripes)
                try:
                    yield from self._apply_block_log(osd, block, emap)
                    self._datalog.pop(block, None)
                finally:
                    self._stripes_busy_end(stripes)
            self._log_bytes[osd.name] = 0

    def _apply_block_log(self, osd: OSD, block: BlockId, emap: ExtentMap) -> Generator:
        exts = list(emap.extents())
        # bulk plane: gather every extent's old bytes and derive the deltas
        # in one packed pass up front (the recycle lock excludes appends and
        # reads, and the extents are disjoint, so only out-of-band churn —
        # epoch-guarded — can invalidate the precompute mid-walk)
        bulk = self.ecfs.bulk
        plan = plan_epoch = None
        if bulk is not None and exts and bulk.healthy():
            plan_epoch, plan = bulk.plan_block_deltas(osd.store, block, exts)
        for i, ext in enumerate(exts):
            # read old, write merged data in place, derive deltas
            yield from osd.io_block(
                IOKind.READ, block, ext.start, ext.size,
                IOPriority.BACKGROUND, tag="fl-recycle",
            )
            present = block in osd.store
            delta = None
            if plan is not None:
                planned, expect = plan[i]
                if plan_epoch == bulk.epoch and present == expect:
                    bulk.consumed += 1
                    delta = planned
                else:
                    bulk.fallbacks += 1
                    plan = None  # churn voids the whole remaining plan
            if delta is None:
                old = (
                    osd.store.read(block, ext.start, ext.size)
                    if present
                    else np.zeros(ext.size, dtype=np.uint8)
                )
                delta = old ^ ext.data
            yield self.env.timeout(self.costs.xor(ext.size))
            yield from osd.io_block(
                IOKind.WRITE, block, ext.start, ext.size,
                IOPriority.BACKGROUND, overwrite=True, tag="fl-recycle",
            )
            osd.store.write(block, ext.start, ext.data)
            for j, posd, pbid in self.parity_targets(block):
                if posd.failed:
                    # this parity row misses the delta: resynced when the
                    # node restarts, or re-encoded by its rebuild
                    self._mark_parity_resync(pbid)
                    continue
                yield self.env.timeout(self.costs.gf_mul(ext.size))
                pdelta = parity_delta(self.parity_coef(j, block.idx), delta)
                try:
                    yield from self.forward(osd, posd, ext.size)
                    yield from self.parity_rmw(
                        posd, pbid, ext.start, pdelta,
                        IOPriority.BACKGROUND, tag="fl-recycle",
                    )
                except IntegrityError:
                    # died between the liveness check and the write
                    self._mark_parity_resync(pbid)

    def log_debt_bytes(self, osd: OSD) -> int:
        return self._log_bytes.get(osd.name, 0)

    def on_node_failed(self, victim: OSD) -> None:
        # the victim's unmerged log entries survive in the parity-side
        # mirrors: stash them for replay onto the rebuilt blocks so no
        # acked update is lost
        for block in list(self._datalog):
            if self.ecfs.osd_hosting(block).name == victim.name:
                emap = self._datalog.pop(block)
                self._stash[block] = list(emap.extents())
        self._log_bytes[victim.name] = 0

    def post_rebuild(self, block: BlockId, target: OSD, rebuilt: np.ndarray) -> Generator:
        """Merge the victim's mirrored log entries onto a rebuilt block and
        bring the parity blocks up to date with the resulting deltas."""
        # do NOT pop yet: a mid-replay failure sends the rebuild worker back
        # for a retry, and the retry must find the stash intact (re-applying
        # onto a freshly decoded block is idempotent: old == new, delta 0)
        exts = self._stash.get(block)
        if not exts:
            yield self.env.timeout(0)
            return
        yield from self._read_mirror(block, sum(e.size for e in exts), "fl-replay")
        for ext in exts:
            old = rebuilt[ext.start : ext.end].copy()
            yield self.env.timeout(self.costs.xor(ext.size))
            rebuilt[ext.start : ext.end] = ext.data
            delta = old ^ ext.data
            for j, posd, pbid in self.parity_targets(block):
                if posd.failed:
                    # re-encoded by its own rebuild, or resynced on restart
                    self._mark_parity_resync(pbid)
                    continue
                yield self.env.timeout(self.costs.gf_mul(ext.size))
                pdelta = parity_delta(self.parity_coef(j, block.idx), delta)
                try:
                    yield from self.forward(target, posd, ext.size)
                    yield from self.parity_rmw(
                        posd, pbid, ext.start, pdelta,
                        IOPriority.BACKGROUND, tag="fl-replay", frozen_ok=True,
                    )
                except IntegrityError:
                    self._mark_parity_resync(pbid)  # died mid-apply
        self._stash.pop(block, None)

    def degraded_overlay(
        self, block: BlockId, offset: int, size: int, buf: np.ndarray
    ) -> Generator:
        """Degraded reads consult the parity-side mirror of the dead node's
        log so acked-but-unmerged bytes are never served stale."""
        exts = self._stash.get(block)
        if not exts:
            yield self.env.timeout(0)
            return buf
        yield from self._read_mirror(block, size, "fl-degraded")
        end = offset + size
        for ext in exts:
            s, e = max(ext.start, offset), min(ext.end, end)
            if s < e:
                buf[s - offset : e - offset] = ext.data[s - ext.start : e - ext.start]
        return buf

    def _read_mirror(self, block: BlockId, size: int, tag: str) -> Generator:
        """Charge one mirror-log read at a surviving parity OSD."""
        for _j, posd, _pbid in self.parity_targets(block):
            if not posd.failed:
                yield from posd.io_at(
                    IOKind.READ,
                    addr=hash((block, "fl")) & 0xFFFFFFFF,
                    size=max(1, size),
                    stream="fulllog-mirror-read",
                    tag=tag,
                )
                return
        yield self.env.timeout(0)

    def recovery_prepare(self, osd: OSD) -> Generator:
        mine = [
            b for b in list(self._datalog)
            if self.ecfs.osd_hosting(b).name == osd.name
        ]
        yield from self._recycle_osd(osd, mine)

    def memory_bytes(self, osd: OSD) -> int:
        return self._log_bytes.get(osd.name, 0)
