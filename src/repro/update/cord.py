"""CoRD — Combining Raid and Delta (Zhou et al., SC '24; §2.2).

CoRD minimizes update *network traffic*: the data OSD computes the data
delta (write-after-read, like PL) but ships it only to a per-stripe
**collector** (the OSD hosting the stripe's first parity block).  The
collector aggregates deltas from multiple data blocks at the same stripe
position (Eq. 5) in a **fixed-size single buffer log**; when the buffer
fills, its contents are recycled: per-parity merged deltas are computed and
fanned out to the parity OSDs, which apply them in place.

The concurrency weakness the paper exploits is modelled faithfully: the
buffer log is single, so at most one recycle can be in flight per collector;
while one runs, the (fixed-size) buffer keeps absorbing appends, but if it
fills *again* before the recycle finishes, every append at that collector
stalls — "the recycling process becomes a bottleneck that limits update
performance".
"""

from __future__ import annotations

from collections import defaultdict
from typing import Generator

from repro.cluster.client import UpdateOp
from repro.cluster.ids import BlockId
from repro.cluster.osd import OSD
from repro.common.errors import IntegrityError
from repro.core.intervals import ExtentMap, MergePolicy
from repro.gf.field import gf_mul_scalar
from repro.sim import Event
from repro.storage.base import IOPriority
from repro.update.base import UpdateMethod

__all__ = ["CoRD"]

_Buffers = dict[tuple[int, int], dict[int, ExtentMap]]


class CoRD(UpdateMethod):
    name = "cord"

    #: CoRD's fixed collector buffer (fixed-size single log; its recycle
    #: concurrency limit is the method's weakness)
    DEFAULT_BUFFER = 512 * 1024

    def __init__(self, ecfs, buffer_size: int | None = None) -> None:
        super().__init__(ecfs)
        self.buffer_size = buffer_size or self.DEFAULT_BUFFER
        # collector state, per collector OSD name
        self._buffers: dict[str, _Buffers] = defaultdict(dict)
        self._buffer_used: dict[str, int] = defaultdict(int)
        self._recycling: dict[str, bool] = defaultdict(bool)
        self._waiters: dict[str, list[Event]] = defaultdict(list)
        self.stalls = 0
        self.stall_time = 0.0

    # ------------------------------------------------------------ front end
    def handle_update(self, osd: OSD, op: UpdateOp) -> Generator:
        delta = yield from self.data_rmw(osd, op)
        yield from self._deliver(osd, op, delta)

    def _deliver(self, osd: OSD, op: UpdateOp, delta) -> Generator:
        """Ship the data delta to the stripe's collector and append it."""
        collector = self._collector_of(op.block)
        if collector.failed:
            # the data block holds the update in place; every parity row
            # catches up via the degraded-stripe resync
            for _j, _posd, pbid in self.parity_targets(op.block):
                self._mark_parity_resync(pbid)
            return
        yield from self.forward(osd, collector, op.size)
        try:
            yield from self._collector_append(collector, op, delta)
        except IntegrityError:
            # collector died mid-append: the delta reached no parity row
            for _j, _posd, pbid in self.parity_targets(op.block):
                self._mark_parity_resync(pbid)

    def schedule_plan(self):
        from repro.sim.schedule import gen_slot

        def rmw(run):
            return self.data_rmw(run.primary, run.op)

        def deliver(run):
            return self._deliver(run.primary, run.op, run.val)

        return (gen_slot(rmw), gen_slot(deliver))

    def _collector_of(self, block: BlockId) -> OSD:
        pbid = BlockId(block.file_id, block.stripe, self.ecfs.rs.k)  # parity 0
        return self.ecfs.osd_hosting(pbid)

    def _collector_append(self, collector: OSD, op: UpdateOp, delta) -> Generator:
        name = collector.name
        while self._buffer_used[name] + op.size > self.buffer_size:
            if not self._recycling[name]:
                self._start_recycle(collector)
            else:
                # single log: buffer full AND a recycle already in flight —
                # the append has nowhere to go (the paper's bottleneck)
                t0 = self.env.now
                waiter = self.env.event()
                self._waiters[name].append(waiter)
                self.stalls += 1
                yield waiter
                self.stall_time += self.env.now - t0
        yield from collector.io_log_append("cord-buffer", op.size, tag="cord-append")
        per_idx = self._buffers[name].setdefault(
            (op.block.file_id, op.block.stripe), {}
        )
        emap = per_idx.setdefault(op.block.idx, ExtentMap(MergePolicy.XOR))
        emap.insert(op.offset, delta, own=True)
        self._buffer_used[name] += op.size

    # -------------------------------------------------------------- recycle
    def _start_recycle(self, collector: OSD) -> None:
        """Snapshot + clear the buffer; recycle the snapshot in background."""
        name = collector.name
        snapshot = self._buffers[name]
        self._buffers[name] = {}
        self._buffer_used[name] = 0
        self._recycling[name] = True
        self.env.process(
            self._recycle_job(collector, snapshot), name=f"cord-recycle-{name}"
        )

    def _recycle_job(self, collector: OSD, snapshot: _Buffers) -> Generator:
        try:
            yield from self._apply_snapshot(collector, snapshot, IOPriority.BACKGROUND)
        finally:
            self._recycling[collector.name] = False
            for waiter in self._waiters[collector.name]:
                if not waiter.triggered:
                    waiter.succeed()
            self._waiters[collector.name].clear()
            # flush/recovery waiters sleep on settlement progress
            self.ecfs.notify_settlement()

    def _apply_snapshot(
        self, collector: OSD, snapshot: _Buffers, priority: int
    ) -> Generator:
        """Eq. (5) merge + fan-out + in-place parity application."""
        stripes = set(snapshot.keys())
        self._stripes_busy_begin(stripes)
        try:
            yield from self._apply_snapshot_inner(collector, snapshot, priority)
        finally:
            self._stripes_busy_end(stripes)

    def _apply_snapshot_inner(
        self, collector: OSD, snapshot: _Buffers, priority: int
    ) -> Generator:
        rs = self.ecfs.rs
        bulk = self.ecfs.bulk
        for (file_id, stripe), per_idx in snapshot.items():
            # bulk plane: one dense encode_partial panel regenerates ALL m
            # parity rows' merged deltas for this stripe up front (the
            # snapshot is immutable once popped, so the precompute cannot
            # go stale).  The per-extent gf timeouts below are still
            # charged in the oracle's exact order — only the merged-map
            # arithmetic is replaced.
            panel = None
            if bulk is not None:
                panel = bulk.stripe_parity_extents(
                    [
                        (didx, list(emap.extents()))
                        for didx, emap in per_idx.items()
                    ]
                )
            for j in range(rs.m):
                pbid = BlockId(file_id, stripe, rs.k + j)
                posd = self.ecfs.osd_hosting(pbid)
                if posd.failed:
                    # this row misses the merged deltas: resynced when the
                    # node restarts, or re-encoded by its rebuild
                    self._mark_parity_resync(pbid)
                    continue
                if panel is not None:
                    for _didx, emap in per_idx.items():
                        for ext in emap.extents():
                            yield self.env.timeout(self.costs.gf_mul(ext.size))
                    exts = panel[j]
                else:
                    merged = ExtentMap(MergePolicy.XOR)
                    for didx, emap in per_idx.items():
                        coef = self.parity_coef(j, didx)
                        for ext in emap.extents():
                            yield self.env.timeout(self.costs.gf_mul(ext.size))
                            merged.insert(
                                ext.start, gf_mul_scalar(coef, ext.data), own=True
                            )
                    exts = list(merged.extents())
                for ext in exts:
                    try:
                        yield from self.forward(collector, posd, ext.size)
                        yield from self.parity_rmw(
                            posd, pbid, ext.start, ext.data, priority,
                            tag="cord-recycle",
                        )
                    except IntegrityError:
                        # the parity host died mid-apply; the snapshot was
                        # already popped, so the row is repaired by resync
                        # (restart) or its rebuild's re-encode
                        self._mark_parity_resync(pbid)
                        break

    # ---------------------------------------------------------------- drain
    def flush(self) -> Generator:
        # wait out in-flight recycles (event-based), then recycle the residue
        while any(self._recycling.values()):
            yield self.ecfs.settlement_event()
        jobs = []
        for osd in self.ecfs.osds:
            if self._buffer_used.get(osd.name):
                snapshot = self._buffers[osd.name]
                self._buffers[osd.name] = {}
                self._buffer_used[osd.name] = 0
                jobs.append(
                    self.env.process(
                        self._apply_snapshot(osd, snapshot, IOPriority.BACKGROUND),
                        name=f"cord-flush-{osd.name}",
                    )
                )
        if jobs:
            yield self.env.all_of(jobs)
        else:
            yield self.env.timeout(0)

    def log_debt_bytes(self, osd: OSD) -> int:
        return self._buffer_used.get(osd.name, 0)

    def _pending_unsettled(self) -> set[tuple[int, int]]:
        """Collector-buffered deltas and in-flight recycle snapshots have
        parity lagging data (resync-marked stripes are handled by the
        base class)."""
        out: set[tuple[int, int]] = set(self._busy_stripes)
        for buffers in self._buffers.values():
            out.update(buffers.keys())
        return out

    def on_node_failed(self, victim: OSD) -> None:
        """CoRD's buffer log has no replica: deltas buffered at a failed
        collector are lost (the paper does not include CoRD in its recovery
        evaluation; its single unreplicated buffer is part of why).  The
        data blocks hold every acked update in place, so recovery re-syncs
        the affected stripes' surviving parity from data — an expensive full
        re-encode that is the price of the unreplicated buffer.  (If a
        second failure takes a data block of such a stripe before the
        resync, the lost range is genuinely unrecoverable and verification
        reports it.)"""
        snapshot = self._buffers.pop(victim.name, None)
        if snapshot:
            rs = self.ecfs.rs
            for file_id, stripe in snapshot.keys():
                for j in range(rs.m):
                    self._parity_resync.add(BlockId(file_id, stripe, rs.k + j))
        self._buffer_used[victim.name] = 0
        self._recycling[victim.name] = False

    def recovery_prepare(self, osd: OSD) -> Generator:
        while self._recycling.get(osd.name):
            yield self.ecfs.settlement_event()
        if self._buffer_used.get(osd.name):
            snapshot = self._buffers[osd.name]
            self._buffers[osd.name] = {}
            self._buffer_used[osd.name] = 0
            yield from self._apply_snapshot(osd, snapshot, IOPriority.FOREGROUND)

    def memory_bytes(self, osd: OSD) -> int:
        return self._buffer_used.get(osd.name, 0)
