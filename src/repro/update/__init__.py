"""Erasure-code update methods: the paper's five baselines + FL + TSUE.

All methods implement :class:`repro.update.base.UpdateMethod` and are
registered in :data:`METHODS`, so the harness can sweep them uniformly::

    from repro.update import make_method
    method = make_method("tsue", ecfs)
"""

from repro.update.base import UpdateMethod
from repro.update.fo import FullOverwrite
from repro.update.fl import FullLogging
from repro.update.pl import ParityLogging
from repro.update.plr import ParityLoggingReserved
from repro.update.parix import PARIX
from repro.update.cord import CoRD
from repro.update.tsue import TSUE, TSUEOptions

METHODS = {
    "fo": FullOverwrite,
    "fl": FullLogging,
    "pl": ParityLogging,
    "plr": ParityLoggingReserved,
    "parix": PARIX,
    "cord": CoRD,
    "tsue": TSUE,
}


def make_method(name: str, ecfs, **kwargs) -> UpdateMethod:
    """Instantiate a registered update method by name."""
    try:
        cls = METHODS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown update method {name!r}; choose from {sorted(METHODS)}"
        ) from None
    return cls(ecfs, **kwargs)


__all__ = [
    "UpdateMethod",
    "FullOverwrite",
    "FullLogging",
    "ParityLogging",
    "ParityLoggingReserved",
    "PARIX",
    "CoRD",
    "TSUE",
    "TSUEOptions",
    "METHODS",
    "make_method",
]
