"""TSUE — the Two-Stage Update method (the paper's contribution, §3-§4).

**Front end (synchronous)**: an update is appended to the data OSD's DataLog
(one sequential write + an in-memory two-level-index insert) and mirrored to
a replica OSD's DataLog copy; the client is acked as soon as both copies are
durable.  No read, no in-place write, no parity work in the critical path.

**Back end (asynchronous, real time)**: a three-layer pipeline recycles logs
continuously,

* DataLog recycle — merged extents are read-modify-written into the data
  blocks; the data deltas are forwarded to the stripe's DeltaLog (hosted by
  the first parity OSD, replicated to the second),
* DeltaLog recycle — deltas from *different data blocks of one stripe* at
  overlapping offsets are multiplied by their coding coefficients and merged
  into one parity delta per parity block (Eq. 5), then forwarded to each
  parity OSD's ParityLog,
* ParityLog recycle — merged parity deltas are XORed into the parity blocks
  in place.

Every structural claim of the paper maps to an option in
:class:`TSUEOptions` so the Fig. 7 breakdown (Baseline, O1..O5) is a set of
option presets (:meth:`TSUEOptions.breakdown`).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field, replace
from typing import Generator, Optional

import numpy as np

from repro.cluster.client import UpdateOp
from repro.cluster.ids import BlockId
from repro.cluster.osd import OSD
from repro.core.intervals import ExtentMap, MergePolicy
from repro.common.errors import IntegrityError
from repro.core.logpool import LogPool
from repro.core.logunit import LogUnit, LogUnitState, RawKey
from repro.core.recycler import RecyclePlanner, unit_recycle_op
from repro.gf.field import gf_mul_scalar
from repro.sim.batch import spawn_fanout
from repro.storage.base import IOKind, IOPriority
from repro.update.base import UpdateMethod

__all__ = ["TSUEOptions", "TSUE"]

_LAYERS = ("datalog", "deltalog", "paritylog")


@dataclass(frozen=True)
class TSUEOptions:
    """Feature flags + sizing; defaults are the paper's full SSD config."""

    datalog_locality: bool = True  # O1: merge/coalesce in the DataLog
    backend_locality: bool = True  # O2: merge/coalesce in Delta/ParityLog
    use_logpool: bool = True  # O3: FIFO multi-unit pools (else 1 unit)
    pools_per_device: Optional[int] = None  # O4: pools per SSD (None: config)
    use_deltalog: bool = True  # O5: DeltaLog layer (else direct to parity)
    datalog_replicas: int = 1  # extra copies (1 -> 2 total; HDD uses 2)
    replicate_deltalog: bool = True  # delta copy at the 2nd parity OSD
    unit_size: Optional[int] = None  # default: ClusterConfig.log_unit_size
    min_units: Optional[int] = None
    max_units: Optional[int] = None
    recycle_lanes: Optional[int] = None
    # §7 future-work extension: compress deltas before forwarding them over
    # the network (the log residence window leaves ample time to compress)
    compress_deltas: bool = False
    compression_ratio: float = 0.6  # compressed size / original size
    compress_cost_per_byte: float = 0.5e-9

    @staticmethod
    def breakdown() -> dict[str, "TSUEOptions"]:
        """The Fig. 7 ladder: Baseline, then +O1 ... +O5 cumulatively."""
        base = TSUEOptions(
            datalog_locality=False,
            backend_locality=False,
            use_logpool=False,
            pools_per_device=1,
            use_deltalog=False,
        )
        o1 = replace(base, datalog_locality=True)
        o2 = replace(o1, backend_locality=True)
        o3 = replace(o2, use_logpool=True)
        o4 = replace(o3, pools_per_device=4)
        o5 = replace(o4, use_deltalog=True)
        return {"Baseline": base, "O1": o1, "O2": o2, "O3": o3, "O4": o4, "O5": o5}

    @staticmethod
    def hdd() -> "TSUEOptions":
        """§5.4: HDD clusters drop the DeltaLog, keep 3 DataLog copies and
        one pool per disk; units are kept small so the real-time-recycle
        backlog stays bounded on seek-dominated devices (§5.3.5 notes the
        unit size is shrunk to cut residence time)."""
        return TSUEOptions(
            use_deltalog=False,
            datalog_replicas=2,
            pools_per_device=1,
            max_units=2,
        )


class TSUE(UpdateMethod):
    name = "tsue"

    def __init__(self, ecfs, options: TSUEOptions | None = None) -> None:
        super().__init__(ecfs)
        self.opts = options or TSUEOptions()
        cfg = ecfs.config
        self.unit_size = self.opts.unit_size or cfg.log_unit_size
        if self.opts.use_logpool:
            self.min_units = self.opts.min_units or cfg.log_min_units
            self.max_units = self.opts.max_units or cfg.log_max_units
        else:
            # Without the FIFO pool (fig. 7 Baseline/O1/O2) there is a single
            # mutually-exclusive log: appends stall for the whole recycle, so
            # it cannot be grown large without unbounded stall windows — it
            # stays small, like CoRD's fixed buffer.  O3's contribution in
            # the paper is exactly lifting this constraint.
            self.min_units = self.max_units = 1
            self.unit_size = min(self.unit_size, 128 * 1024)
        self.n_pools = max(1, self.opts.pools_per_device or cfg.log_pools)
        self.lanes = self.opts.recycle_lanes or cfg.recycle_lanes
        # hoisted per-pool stream names: the persist/forward/recycle inner
        # loops hit one of these per I/O, and the f-string was measurable
        self._dl_streams = [f"datalog{p}" for p in range(self.n_pools)]
        self._dx_streams = [f"deltalog{p}" for p in range(self.n_pools)]
        self._px_streams = [f"paritylog{p}" for p in range(self.n_pools)]

        # per-OSD, per-layer pools: pools[osd.name][layer][pool index]
        self.pools: dict[str, dict[str, list[LogPool]]] = {}
        self.planner = RecyclePlanner(n_lanes=self.lanes)
        # residence/append timing per layer (Table 2), seconds
        self.append_times: dict[str, list[float]] = {l: [] for l in _LAYERS}
        self.replica_log_bytes: dict[str, int] = defaultdict(int)
        self._recycler_procs: dict[tuple[str, str, int], object] = {}
        # recovery stash: the victim's unrecycled DataLog extents (replayed
        # onto rebuilt blocks from the replica logs) and DeltaLog-derived
        # parity deltas (replayed to surviving ParityLogs from the
        # 2nd-parity replica): (dedup token, parity block, offset, pdelta)
        self._stash_data: dict[BlockId, list] = {}
        self._stash_delta: list[tuple[tuple, BlockId, int, np.ndarray]] = []
        self._stash_bytes = 0
        # parity deltas addressed to a transiently-down node, replayed when
        # it restarts (a rebuild clears them: re-encoding subsumes deltas)
        self._pending_parity: dict[str, list] = defaultdict(list)
        # receiver-side replay dedup (the model's stand-in for the sequence
        # numbers a replicated log ships): tokens of deltas already accepted
        # at each node, so an interrupted recycle can replay blindly.
        # Unbounded here; a real log GCs below the recycle watermark.
        self._seen_tokens: dict[str, set] = defaultdict(set)
        # where each block's newest DataLog replica actually landed — the
        # placement policy's replica_osd() answer changes across epochs, but
        # a degraded read must consult the node that holds the bytes
        self._replica_of: dict[BlockId, str] = {}
        # > 0 while a recovery-critical drain is in flight: recyclers skip
        # the governed arbiter and queued recycle grants are expedited, so
        # recovery settlement never queues behind a floored backlog
        self._recovery_boost = 0
        #: log bytes recycled arbiter-free under the boost — with the
        #: scheduler's expedited_bytes, the backlog a governed drain would
        #: have paced at the floor (the inversion's counterfactual cost)
        self.recovery_bypass_bytes = 0

    # ------------------------------------------------------------ lifecycle
    def attach(self, osd: OSD) -> None:
        layers: dict[str, list[LogPool]] = {}
        for layer in _LAYERS:
            if layer == "deltalog" and not self.opts.use_deltalog:
                layers[layer] = []
                continue
            policy = (
                MergePolicy.OVERWRITE if layer == "datalog" else MergePolicy.XOR
            )
            merge = (
                self.opts.datalog_locality
                if layer == "datalog"
                else self.opts.backend_locality
            )
            layers[layer] = [
                LogPool(
                    self.env,
                    name=f"{osd.name}:{layer}{p}",
                    unit_size=self.unit_size,
                    policy=policy,
                    min_units=self.min_units,
                    max_units=self.max_units,
                    block_size=self.ecfs.config.block_size,
                    merge=merge,
                )
                for p in range(self.n_pools)
            ]
        self.pools[osd.name] = layers

    def start_background(self) -> None:
        for osd in self.ecfs.osds:
            self._start_background_for(osd)

    def _start_background_for(self, osd: OSD) -> None:
        for layer in _LAYERS:
            for p, pool in enumerate(self.pools[osd.name][layer]):
                self._spawn_recycler(osd, layer, p, pool)

    def on_node_joined(self, osd: OSD) -> None:
        """Elastic join: build the node's log pools and start its recyclers
        (the cluster-wide :meth:`start_background` already ran)."""
        self.attach(osd)
        self._start_background_for(osd)

    def _spawn_recycler(self, osd: OSD, layer: str, pidx: int, pool: LogPool) -> None:
        recycler_of = {
            "datalog": self._recycle_datalog_unit,
            "deltalog": self._recycle_deltalog_unit,
            "paritylog": self._recycle_paritylog_unit,
        }
        proc = self.env.process(
            self._recycler_loop(osd, pool, pidx, recycler_of[layer]),
            name=f"tsue-{layer}-{osd.name}-{pidx}",
        )
        self._recycler_procs[(osd.name, layer, pidx)] = proc

    # ------------------------------------------------------------ front end
    def handle_update(self, osd: OSD, op: UpdateOp) -> Generator:
        t0 = self.env.now
        pool = self._pool(osd, "datalog", op.block)
        # in-memory append (may stall on the unit quota — Fig. 6a)
        yield from pool.append(op.block, op.offset, op.payload, own=True)
        # the log IS the serialization point: commit to the oracle in append
        # order, before any interleaving-prone I/O below.
        self.ecfs.oracle.apply(op.block, op.offset, op.payload)
        # persist locally and replicate, concurrently; ack when all durable
        if self.batched:
            legs = [self._persist_local(osd, pool, op)]
            for r in range(self.opts.datalog_replicas):
                legs.append(self._replicate(osd, op, r))
            yield spawn_fanout(self.env, legs)
        else:
            jobs = [
                self.env.process(
                    self._persist_local(osd, pool, op), name=f"tsue-persist{op.op_id}"
                )
            ]
            for r in range(self.opts.datalog_replicas):
                jobs.append(
                    self.env.process(
                        self._replicate(osd, op, r), name=f"tsue-rep{op.op_id}.{r}"
                    )
                )
            yield self.env.all_of(jobs)
        self.append_times["datalog"].append(self.env.now - t0)

    def schedule_plan(self):
        from repro.sim.schedule import effect_slot, fanout_slot, gen_slot

        def setup(run):
            run.ctx["t0"] = self.env.now
            run.ctx["pool"] = self._pool(run.primary, "datalog", run.op.block)

        def append(run):
            op = run.op
            # in-memory append (may stall on the unit quota — Fig. 6a; a
            # stalled append parks this run on the same quota event)
            return run.ctx["pool"].append(op.block, op.offset, op.payload, own=True)

        def commit(run):
            op = run.op
            self.ecfs.oracle.apply(op.block, op.offset, op.payload)

        def persist_legs(run):
            osd, op = run.primary, run.op
            legs = [self._persist_local(osd, run.ctx["pool"], op)]
            for r in range(self.opts.datalog_replicas):
                legs.append(self._replicate(osd, op, r))
            return legs

        def record(run):
            self.append_times["datalog"].append(self.env.now - run.ctx["t0"])

        return (
            effect_slot(setup),
            gen_slot(append),
            effect_slot(commit),
            fanout_slot(persist_legs),
            effect_slot(record),
        )

    def _persist_local(self, osd: OSD, pool: LogPool, op: UpdateOp) -> Generator:
        stream = self._dl_streams[self._pool_idx(op.block)]
        yield from osd.io_log_append(stream, op.size, tag="tsue-datalog")

    def _replicate(self, osd: OSD, op: UpdateOp, r: int) -> Generator:
        n_osds = len(self.ecfs.osds)
        rep_idx = (self.ecfs.placement.replica_osd(op.block) + r) % n_osds
        rep = self.ecfs.osds[rep_idx]
        if rep.failed:
            rep = self.ecfs.osds[(rep_idx + 1) % n_osds]
        yield from self.forward(osd, rep, op.size)
        # replica is persisted to SSD only — no memory index (§4.1)
        yield from rep.io_log_append("datalog-rep", op.size, tag="tsue-datalog-rep")
        self.replica_log_bytes[rep.name] += op.size
        if r == 0:
            self._replica_of[op.block] = rep.name

    # ------------------------------------------------------------ read path
    def handle_read(
        self, osd: OSD, block: BlockId, offset: int, size: int
    ) -> Generator:
        pool = self._pool(osd, "datalog", block)
        hit = pool.lookup(block, offset, size)
        if hit is not None:
            # served from the in-memory log index: no device I/O
            yield self.env.timeout(self.costs.op_fixed)
            return hit
        yield from osd.io_block(IOKind.READ, block, offset, size)
        buf = (
            osd.store.read(block, offset, size)
            if block in osd.store
            else np.zeros(size, dtype=np.uint8)
        )
        if pool.covers_any(block, offset, size):
            # partial overlap: never return stale bytes (§3.3.3)
            pool.overlay(block, offset, size, buf)
        return buf

    # ----------------------------------------------------------- recyclers
    def _recycler_loop(self, osd: OSD, pool: LogPool, pidx: int, fn) -> Generator:
        while True:
            unit = yield pool.recyclable.get()
            # unified maintenance plane: wait for the arbiter's paced grant
            # before spending device bandwidth (a no-op when disabled —
            # the unit is still RECYCLABLE while parked, so settlement and
            # backlog accounting see it).  A recovery-critical drain skips
            # the arbiter entirely (PL's FOREGROUND-drain pattern): the
            # governed recycle stream is exactly the backlog recovery must
            # not queue behind.
            if not self._recovery_boost:
                yield from self.ecfs.background.request(
                    unit_recycle_op(osd.name, pool.name, unit)
                )
            else:
                self.recovery_bypass_bytes += int(unit.used)
            unit.start_recycle(self.env.now)
            try:
                yield from fn(osd, pool, pidx, unit)
            except IntegrityError:
                return  # the node died mid-recycle; recovery takes over
            pool.unit_recycled(unit)
            # a finished unit settles stripes (its content is merged):
            # wake drain/quiesce/reconstruction waiters to re-check
            self.ecfs.notify_settlement()

    # -- stage 1: DataLog ----------------------------------------------------
    def _recycle_datalog_unit(
        self, osd: OSD, pool: LogPool, pidx: int, unit: LogUnit
    ) -> Generator:
        items = self.planner.plan(unit)
        # bulk drain plane: precompute this unit's deltas AND every unit
        # queued behind it in one packed-buffer pass (repro.sim.bulk).
        # Plan only on a healthy, boost-free cluster — recovery paths
        # rewrite real blocks through case-by-case oracle code.
        bulk = self.ecfs.bulk
        if (
            bulk is not None
            and not self._recovery_boost
            and bulk.healthy()
            and bulk.datalog_plan(pool.name, unit) is None
        ):
            batch = [(unit, items)]
            for queued in pool.recyclable.items:
                if bulk.datalog_plan(pool.name, queued) is None:
                    batch.append(
                        (queued, self.planner.plan(queued, record=False))
                    )
            bulk.plan_datalog_batch(osd.store, pool.name, batch)
        lanes = list(self.planner.lanes(items))
        if self.batched:
            if lanes:
                yield spawn_fanout(
                    self.env,
                    [self._datalog_lane(osd, pool, unit, lane) for lane in lanes],
                )
        else:
            procs = [
                self.env.process(
                    self._datalog_lane(osd, pool, unit, lane),
                    name=f"tsue-dlane-{osd.name}",
                )
                for lane in lanes
            ]
            if procs:
                yield self.env.all_of(procs)
        if bulk is not None:
            bulk.drop_datalog_plan(pool.name, unit)

    def _datalog_lane(self, osd: OSD, pool: LogPool, unit: LogUnit, lane_items) -> Generator:
        bulk = self.ecfs.bulk
        plan = bulk.datalog_plan(pool.name, unit) if bulk is not None else None
        for work in lane_items:
            block = self._real_block(work.block)
            for ext in work.extents:
                key = ("dl", work.block, ext.start, ext.size)
                if key in unit.recycle_progress:
                    continue  # replay of an interrupted recycle
                # reconstruction may hold the stripe frozen: applying this
                # extent would emit a parity delta racing the re-home
                if self.ecfs.stripe_frozen(block.file_id, block.stripe):
                    yield from self.ecfs.wait_stripe_thaw(
                        block.file_id, block.stripe
                    )
                # read old data and compute the delta
                yield from osd.io_block(
                    IOKind.READ, block, ext.start, ext.size,
                    IOPriority.BACKGROUND, tag="tsue-dl-recycle",
                )
                present = block in osd.store
                # bulk fast path: the delta was precomputed in one packed
                # XOR pass over the whole unit queue; the plan re-checks
                # churn + expected presence and hands back None to fall
                # back to the oracle math (bytes identical either way)
                delta = plan.take(key, present) if plan is not None else None
                if delta is None:
                    # snapshot via read-only view: the XOR materializes the
                    # delta before the next yield, so no copy is needed
                    old = (
                        osd.store.read_view(block, ext.start, ext.size)
                        if present
                        else np.zeros(ext.size, dtype=np.uint8)
                    )
                    delta = old ^ ext.data
                yield self.env.timeout(self.costs.xor(ext.size))
                # forward the delta BEFORE the in-place overwrite: should the
                # node die in between, a replay recomputes the same delta
                # from the unchanged block and the receivers dedup by token
                token = (pool.name, unit.unit_id, unit.generation) + key
                yield from self._forward_delta(osd, block, ext.start, delta, token)
                yield from osd.io_block(
                    IOKind.WRITE, block, ext.start, ext.size,
                    IOPriority.BACKGROUND, overwrite=True, tag="tsue-dl-recycle",
                )
                osd.store.write(block, ext.start, ext.data)
                # a concurrent recycle (settle-forced flush racing the
                # arbitered loop) may resurrect a live range this write
                # just changed: void other plans' entries on this block
                if bulk is not None:
                    bulk.note_block_write(block, exempt=plan)
                unit.recycle_progress.add(key)

    def _forward_delta(
        self,
        osd: OSD,
        block: BlockId,
        offset: int,
        delta: np.ndarray,
        token: tuple | None = None,
    ) -> Generator:
        """Ship a data delta towards parity: via DeltaLog (O5) or directly.

        Falls back to direct parity fan-out when the DeltaLog home (first
        parity OSD) is down — including when it dies mid-forward.  ``token``
        (when given) lets the receivers drop a duplicate delivery during the
        replay of an interrupted recycle.
        """
        size = int(delta.shape[0])
        rs = self.ecfs.rs
        wire_size = size
        if self.opts.compress_deltas:
            # compression happens off the critical path (the delta sits in
            # the DeltaLog buffer for seconds — §7), but the CPU is charged
            yield self.env.timeout(
                self.costs.op_fixed + size * self.opts.compress_cost_per_byte
            )
            wire_size = max(1, int(size * self.opts.compression_ratio))
        if self.opts.use_deltalog and rs.m >= 1:
            p1 = self.ecfs.osd_hosting(BlockId(block.file_id, block.stripe, rs.k))
            if not p1.failed:
                try:
                    yield from self._deltalog_forward(
                        osd, p1, block, offset, delta, wire_size, token
                    )
                    return
                except IntegrityError:
                    pass  # p1 died mid-forward; fall through to direct fan-out
        # no DeltaLog (or its home is down): compute each parity delta here,
        # fan out to ParityLogs (more network, more GF work at the data node)
        for j, posd, pbid in self.parity_targets(block):
            yield self.env.timeout(self.costs.gf_mul(size))
            pdelta = gf_mul_scalar(self.parity_coef(j, block.idx), delta)
            ptoken = token + ("p", j) if token is not None else None
            if not posd.failed:
                yield from self.forward(osd, posd, wire_size)
            yield from self._paritylog_append(posd, pbid, offset, pdelta, ptoken)

    def _deltalog_forward(
        self,
        osd: OSD,
        p1: OSD,
        block: BlockId,
        offset: int,
        delta: np.ndarray,
        wire_size: int,
        token: tuple | None,
    ) -> Generator:
        """Land a data delta in the DeltaLog at ``p1`` (+ replica at p2)."""
        t0 = self.env.now
        size = int(delta.shape[0])
        rs = self.ecfs.rs
        if token is not None:
            # claim at entry (see _paritylog_append): concurrent replays of
            # one delta must not both pass the check before either commits
            if token in self._seen_tokens[p1.name]:
                return  # duplicate delivery from a replayed recycle
            self._seen_tokens[p1.name].add(token)
        try:
            yield from self.forward(osd, p1, wire_size)
            # device append first, then the in-memory index: a crash in
            # between leaves nothing behind, so the caller's fallback
            # cannot double-apply
            yield from p1.io_log_append(
                self._dx_streams[self._pool_idx(block)],
                size,
                IOPriority.BACKGROUND,
                tag="tsue-deltalog",
            )
            dpool = self._pool(p1, "deltalog", block)
            yield from dpool.append(block, offset, delta, own=True)
        except IntegrityError:
            if token is not None:
                self._seen_tokens[p1.name].discard(token)  # nothing committed
            raise
        self.append_times["deltalog"].append(self.env.now - t0)
        if self.opts.replicate_deltalog and rs.m >= 2:
            p2 = self.ecfs.osd_hosting(
                BlockId(block.file_id, block.stripe, rs.k + 1)
            )
            if not p2.failed:
                yield from self.forward(osd, p2, wire_size)
                try:
                    yield from p2.io_log_append(
                        "deltalog-rep", size, IOPriority.BACKGROUND,
                        tag="tsue-deltalog-rep",
                    )
                    self.replica_log_bytes[p2.name] += size
                except IntegrityError:
                    pass  # replica copy lost with p2; the primary log stands

    # -- stage 2: DeltaLog ----------------------------------------------------
    def _plan_delta_forwards(self, unit: LogUnit) -> list[tuple[tuple, BlockId, object]]:
        """Deterministic (dedup key, parity block, extent) list the recycle
        of ``unit`` forwards — recomputable after a crash so an interrupted
        recycle and the recovery stash agree on identities."""
        items = self.planner.plan(unit)
        # group per stripe for Eq. (5) cross-block merging
        per_stripe: dict[tuple[int, int], list] = defaultdict(list)
        for work in items:
            block = self._real_block(work.block)
            per_stripe[(block.file_id, block.stripe)].append((block, work))
        rs = self.ecfs.rs
        bulk = self.ecfs.bulk
        out: list[tuple[tuple, BlockId, object]] = []
        occurrences: dict[tuple, int] = defaultdict(int)
        for (file_id, stripe), works in per_stripe.items():
            # bulk drain plane: one dense encode_partial panel per stripe
            # instead of one gf_mul_scalar temporary per (extent, parity
            # row).  Pure math over the sealed unit's immutable extents —
            # byte- and boundary-identical to the XOR-merged ExtentMap
            # (repro.sim.bulk.union_spans documents why), so it needs no
            # health/epoch gating.
            panel = None
            if self.opts.backend_locality and bulk is not None:
                panel = bulk.stripe_parity_extents(
                    [(block.idx, work.extents) for block, work in works]
                )
            for j in range(rs.m):
                pbid = BlockId(file_id, stripe, rs.k + j)
                if panel is not None:
                    exts = panel[j]
                elif self.opts.backend_locality:
                    merged = ExtentMap(MergePolicy.XOR)
                    for block, work in works:
                        coef = self.parity_coef(j, block.idx)
                        for ext in work.extents:
                            merged.insert(ext.start, gf_mul_scalar(coef, ext.data), own=True)
                    exts = list(merged.extents())
                else:
                    exts = []
                    for block, work in works:
                        coef = self.parity_coef(j, block.idx)
                        for ext in work.extents:
                            exts.append(
                                type(ext)(ext.start, gf_mul_scalar(coef, ext.data))
                            )
                for ext in exts:
                    base = (pbid, ext.start, ext.size)
                    n = occurrences[base]
                    occurrences[base] += 1
                    out.append((("dx",) + base + (n,), pbid, ext))
        return out

    def _recycle_deltalog_unit(
        self, osd: OSD, pool: LogPool, pidx: int, unit: LogUnit
    ) -> Generator:
        # Charge the Eq. (5) GF work as the seed model did: one multiply per
        # SOURCE extent per parity row (the planning helper computes the
        # merged extents untimed so a crash-replay can recompute them).
        rs = self.ecfs.rs
        gf_cost = sum(
            rs.m * self.costs.gf_mul(ext.size)
            for bkey in unit.index.blocks()
            for ext in unit.index.extents(bkey)
        )
        if gf_cost:
            yield self.env.timeout(gf_cost)
        for key, pbid, ext in self._plan_delta_forwards(unit):
            if key in unit.recycle_progress:
                continue  # replay of an interrupted recycle
            if self.ecfs.stripe_frozen(pbid.file_id, pbid.stripe):
                yield from self.ecfs.wait_stripe_thaw(pbid.file_id, pbid.stripe)
            posd = self.ecfs.osd_hosting(pbid)
            token = (pool.name, unit.unit_id, unit.generation) + key
            if not posd.failed:
                yield from self.forward(osd, posd, ext.size)
            yield from self._paritylog_append(posd, pbid, ext.start, ext.data, token)
            unit.recycle_progress.add(key)

    def _paritylog_append(
        self,
        posd: OSD,
        pbid: BlockId,
        offset: int,
        pdelta: np.ndarray,
        token: tuple | None = None,
    ) -> Generator:
        if token is not None:
            # claim at entry: two concurrent replays of one delta (e.g. two
            # overlapping recoveries draining the same stash) would both
            # pass a commit-time check before either commits
            if token in self._seen_tokens[posd.name]:
                return  # duplicate delivery from a replayed recycle
            self._seen_tokens[posd.name].add(token)
        t0 = self.env.now
        ppool = self._pool(posd, "paritylog", pbid)
        if not posd.failed:
            try:
                # device append first, then the in-memory index: a crash in
                # between leaves nothing behind and the replay redelivers
                yield from posd.io_log_append(
                    self._px_streams[self._pool_idx(pbid)],
                    int(pdelta.shape[0]),
                    IOPriority.BACKGROUND,
                    tag="tsue-paritylog",
                )
                yield from ppool.append(pbid, offset, pdelta, own=True)
                self.append_times["paritylog"].append(self.env.now - t0)
                return
            except IntegrityError:
                pass  # the node died mid-append; fall through
        if token is not None:
            self._seen_tokens[posd.name].discard(token)  # nothing committed
        if ppool.dead:
            return  # real crash: the re-encoded rebuild subsumes this delta
        # transiently down (bounce): buffer for replay at restart
        self._pending_parity[posd.name].append((token, pbid, offset, pdelta))

    # -- stage 3: ParityLog ----------------------------------------------------
    def _recycle_paritylog_unit(
        self, osd: OSD, pool: LogPool, pidx: int, unit: LogUnit
    ) -> Generator:
        items = self.planner.plan(unit)
        lanes = list(self.planner.lanes(items))
        if self.batched:
            if lanes:
                yield spawn_fanout(
                    self.env,
                    [self._paritylog_lane(osd, unit, lane) for lane in lanes],
                )
            return
        procs = [
            self.env.process(
                self._paritylog_lane(osd, unit, lane),
                name=f"tsue-plane-{osd.name}",
            )
            for lane in lanes
        ]
        if procs:
            yield self.env.all_of(procs)

    def _paritylog_lane(self, osd: OSD, unit: LogUnit, lane_items) -> Generator:
        for work in lane_items:
            pbid = self._real_block(work.block)
            for ext in work.extents:
                key = ("pl", work.block, ext.start, ext.size)
                if key in unit.recycle_progress:
                    continue  # replay of an interrupted recycle
                yield from self.parity_rmw(
                    osd, pbid, ext.start, ext.data,
                    IOPriority.BACKGROUND, tag="tsue-pl-recycle",
                )
                unit.recycle_progress.add(key)

    # --------------------------------------------------------------- drain
    def flush(self) -> Generator:
        """Drain the pipeline layer by layer until every log is recycled."""
        for layer in _LAYERS:
            yield from self._drain_layer(layer)

    def _drain_layer(self, layer: str) -> Generator:
        while True:
            if self._recovery_boost:
                # release recyclers parked on pre-boost paced grants: their
                # units are part of the backlog this drain is waiting out
                self.ecfs.background.expedite("recycle")
            busy = False
            for osd in self.ecfs.osds:
                if osd.failed:
                    continue
                for pool in self.pools[osd.name][layer]:
                    pool.seal_active_if_dirty()
                    if pool.backlog or len(pool.recyclable):
                        busy = True
            if not busy:
                return
            # sleep until a unit finishes recycling (or a node dies and its
            # backlog is dropped) instead of polling every 1e-4 s
            yield self.ecfs.settlement_event()

    # ------------------------------------------------------------ recovery
    def quiesce_node(self, victim: OSD) -> Generator:
        """Let the victim's in-flight unit recycles finish before it fails.

        A real deployment replays mid-recycle units idempotently from
        sequence-numbered replicas; the model sidesteps that corner by
        quiescing first (typically microseconds, thanks to real-time
        recycling).
        """
        while any(
            unit.state is LogUnitState.RECYCLING
            for layers in (self.pools[victim.name],)
            for pools in layers.values()
            for pool in pools
            for unit in pool.units
        ):
            # woken by the recycler's unit-finished notification
            yield self.ecfs.settlement_event()

    def on_node_failed(self, victim: OSD) -> None:
        """Stash the victim's unrecycled logs for replica-based replay.

        DataLog extents will be merged onto the rebuilt data blocks (§4.2:
        "the data log on this node can be obtained from one of the nodes
        hosting its replica"); DeltaLog-derived parity deltas replay to
        surviving ParityLogs from the 2nd-parity copy; ParityLog content is
        dropped — the victim's parity blocks are re-encoded from up-to-date
        data.  A unit caught mid-recycle by an abrupt crash is stashed too:
        its ``recycle_progress`` set and the receivers' dedup tokens make
        the replay exactly-once.
        """
        def unrecycled(pool):
            # RECYCLED units retain their index only as a read cache: their
            # content is already merged and must NOT be replayed (deltas
            # would double-apply).  Only live content counts.
            for unit in pool.units:
                if unit.used and unit.state in (
                    LogUnitState.EMPTY,
                    LogUnitState.RECYCLABLE,
                    LogUnitState.RECYCLING,
                ):
                    yield unit

        layers = self.pools[victim.name]
        for pool in layers["datalog"]:
            for unit in unrecycled(pool):
                # ALL extents are stashed, including ones a mid-flight
                # recycle already applied: degraded reads overlay them, and
                # their replay self-cancels (the recomputed delta is zero
                # because the rebuilt block already carries the new bytes)
                for key in list(unit.index.blocks()):
                    block = self._real_block(key)
                    exts = list(unit.index.extents(key))
                    self._stash_data.setdefault(block, []).extend(exts)
                    self._stash_bytes += sum(e.size for e in exts)
        for pool in layers["deltalog"]:
            for unit in unrecycled(pool):
                for key, pbid, ext in self._plan_delta_forwards(unit):
                    if key in unit.recycle_progress:
                        continue  # forwarded durably before the crash
                    token = (pool.name, unit.unit_id, unit.generation) + key
                    self._stash_delta.append((token, pbid, ext.start, ext.data))
                    self._stash_bytes += ext.size
        # deltas buffered for the victim while it was transiently down are
        # subsumed by the re-encoded rebuild, as are its accepted tokens
        self._pending_parity.pop(victim.name, None)
        self._seen_tokens.pop(victim.name, None)
        # victim pools are dead: error out blocked appenders and empty the
        # queues so drains skip their backlog
        for pools in layers.values():
            for pool in pools:
                pool.fail()
                pool.units.clear()
                pool.units.append(pool._new_unit())
                pool.active = pool.units[0]
                pool.recyclable.items.clear()

    def on_node_restarted(self, osd: OSD) -> None:
        """Resume background work on a bounced node: requeue unit recycles
        that were cut off mid-flight (their progress sets make the replay
        idempotent), respawn recyclers that died with the node, and replay
        parity deltas other nodes buffered while this one was down."""
        for layer in _LAYERS:
            for pidx, pool in enumerate(self.pools[osd.name][layer]):
                proc = self._recycler_procs.get((osd.name, layer, pidx))
                if proc is not None and proc.is_alive:
                    continue  # survived the outage; its unit is still its own
                for unit in pool.units:
                    if unit.state is LogUnitState.RECYCLING:
                        # direct reset (not a normal lifecycle transition):
                        # the recycle replays from its progress marks.  The
                        # requeue goes to the FRONT — units sealed during
                        # the outage are newer, and OVERWRITE merging needs
                        # oldest-first application.
                        unit.state = LogUnitState.RECYCLABLE
                        pool.recyclable.put_front(unit)
                self._spawn_recycler(osd, layer, pidx, pool)
        pending = self._pending_parity.pop(osd.name, [])
        if pending:
            # busy-mark synchronously with the pop: the deltas must never be
            # invisible to stripe-settlement checks
            stripes = {(pbid.file_id, pbid.stripe) for _t, pbid, _o, _d in pending}
            self._stripes_busy_begin(stripes)
            self.env.process(
                self._replay_pending(osd, pending, stripes),
                name=f"tsue-pending-{osd.name}",
            )

    def _replay_pending(self, osd: OSD, pending: list, stripes: set) -> Generator:
        try:
            for token, pbid, offset, pdelta in pending:
                yield from self._paritylog_append(osd, pbid, offset, pdelta, token)
        finally:
            self._stripes_busy_end(stripes)

    def pre_rebuild(self) -> Generator:
        """Read stashed logs back from their replicas and replay the delta
        layer into surviving ParityLogs (charged as recovery preparation)."""
        if self._stash_bytes:
            # one sequential read of the replicated log content per replica
            rep = next(osd for osd in self.ecfs.osds if not osd.failed)
            yield from rep.io_at(
                IOKind.READ, 0, self._stash_bytes, stream="datalog-rep-replay",
                tag="tsue-replay",
            )
        # take ownership atomically: overlapping recoveries each replay only
        # what was stashed when THEY got here (the dedup tokens additionally
        # stop any racing double-delivery)
        replay, self._stash_delta = self._stash_delta, []
        stripes = {(pbid.file_id, pbid.stripe) for _t, pbid, _o, _d in replay}
        self._stripes_busy_begin(stripes)
        try:
            for token, pbid, offset, pdelta in replay:
                posd = self.ecfs.osd_hosting(pbid)
                if posd.failed:
                    continue
                yield self.env.timeout(self.costs.gf_mul(pdelta.shape[0]))
                yield from self._paritylog_append(posd, pbid, offset, pdelta, token)
        finally:
            self._stripes_busy_end(stripes)
        yield from self._recovery_flush()

    def post_rebuild(self, block: BlockId, target: OSD, rebuilt: np.ndarray) -> Generator:
        """Merge the victim's stashed DataLog extents onto a rebuilt block
        and forward the resulting deltas down the normal pipeline."""
        for ext in self._stash_data.pop(block, []):
            old = rebuilt[ext.start : ext.end].copy()
            yield self.env.timeout(self.costs.xor(ext.size))
            rebuilt[ext.start : ext.end] = ext.data
            yield from self._forward_delta(target, block, ext.start, old ^ ext.data)

    def _recovery_flush(self) -> Generator:
        """A full pipeline drain at recovery priority.

        The priority-inversion fix: while the boost is held, recyclers skip
        the governed arbiter and :meth:`_drain_layer` expedites any recycle
        grants already queued — so the drain proceeds at device speed (the
        devices' IOPriority lanes still order the actual I/O) instead of at
        the governor's floored token rate.  The AIMD floor keeps paced
        progress alive regardless; the boost makes recovery settlement run
        AHEAD of the backlog rather than merely behind a nonzero trickle.
        """
        self._recovery_boost += 1
        try:
            yield from self.flush()
        finally:
            self._recovery_boost -= 1

    def finalize_recovery(self) -> Generator:
        yield from self._recovery_flush()

    def recovery_prepare(self, osd: OSD) -> Generator:
        # real-time recycling keeps debt tiny; drain whatever remains —
        # at recovery priority, never behind governed recycle grants
        yield from self._recovery_flush()

    def degraded_overlay(
        self, block: BlockId, offset: int, size: int, buf: np.ndarray
    ) -> Generator:
        """Degraded reads consult the dead node's DataLog via its replica
        (§4.2: "the data log on this node can be obtained from one of the
        nodes hosting its replica").

        The replica is a raw on-SSD log (no index), so the consult costs a
        sequential read of the log region at the replica node; the content
        comes from the victim's still-known in-memory index (the model's
        stand-in for replaying the replica bytes), or the recovery stash if
        the victim's pools were already torn down.
        """
        home = self.ecfs.osd_hosting(block)
        if not home.failed:
            return buf
        # epoch-aware: read the node that actually holds the newest replica
        # bytes (recorded at append time) — the policy's replica_osd()
        # answer may have rotated across placement epochs since
        rep_name = self._replica_of.get(block)
        rep = None
        if rep_name is not None:
            rep = next((o for o in self.ecfs.osds if o.name == rep_name), None)
        if rep is None:
            rep = self.ecfs.osds[self.ecfs.placement.replica_osd(block)]
        if not rep.failed:
            yield from rep.io_at(
                IOKind.READ,
                0,
                max(size, 4096),
                stream="datalog-rep-read",
                tag="tsue-degraded",
            )
        end = offset + size
        # victim's pools (pre-teardown) hold the authoritative log content
        pools = self.pools.get(home.name)
        if pools:
            pool = pools["datalog"][self._pool_idx(block)]
            pool.overlay(block, offset, size, buf)
        # after on_node_failed, unrecycled extents live in the stash
        for ext in self._stash_data.get(block, ()):
            s, e = max(ext.start, offset), min(ext.end, end)
            if s < e:
                buf[s - offset : e - offset] = ext.data[s - ext.start : e - ext.start]
        return buf

    def _pending_unsettled(self) -> set[tuple[int, int]]:
        """Stripes whose parity lags data: any DeltaLog/ParityLog content
        (those deltas correspond to in-place data writes that already
        happened) and any DataLog unit caught mid-recycle.  Unrecycled
        DataLog records are NOT unsettled — their data is still only in the
        log, so data and parity agree."""
        out: set[tuple[int, int]] = set(self._busy_stripes)
        for layers in self.pools.values():
            for layer, pools in layers.items():
                for pool in pools:
                    for unit in pool.units:
                        if not unit.used or unit.state is LogUnitState.RECYCLED:
                            continue
                        if layer == "datalog" and unit.state is not LogUnitState.RECYCLING:
                            continue
                        for key in unit.index.blocks():
                            block = self._real_block(key)
                            out.add((block.file_id, block.stripe))
        # deltas parked for a bounced node or stashed for recovery replay
        # are also applied-in-data, pending-on-parity
        for entries in self._pending_parity.values():
            for _token, pbid, _offset, _pdelta in entries:
                out.add((pbid.file_id, pbid.stripe))
        for _token, pbid, _offset, _pdelta in self._stash_delta:
            out.add((pbid.file_id, pbid.stripe))
        return out

    def block_unsettled(self, osd: OSD, block: BlockId) -> bool:
        """Unrecycled DataLog records defer the in-place data write, so a
        migration copying the base block off ``osd`` would lose them (the
        recycle applies them to whichever store the *log* lives on).  Any
        live unit on any layer holding content for ``block`` blocks the
        move until a flush settles it."""
        layers = self.pools.get(osd.name)
        if not layers:
            return False
        for pools in layers.values():
            for pool in pools:
                for unit in pool.units:
                    if not unit.used or unit.state is LogUnitState.RECYCLED:
                        continue
                    for key in unit.index.blocks():
                        if self._real_block(key) == block:
                            return True
        return False

    # ------------------------------------------------- migration (log move)
    def _live_block_extents(self, osd: OSD, block: BlockId) -> list:
        """``(layer, pool, unit, key, ext)`` for every live DataLog/ParityLog
        extent on ``osd`` addressed to ``block``, oldest unit first, minus
        extents the unit's own recycle already applied.

        Planned through :class:`RecyclePlanner` so the keys (and therefore
        the dedup tokens) are byte-identical to the ones the source's own
        recycle of the same units would generate — shipping and recycling
        are two deliveries of ONE logical record.  DeltaLog content never
        qualifies: it is keyed by data blocks but homed with the stripe's
        first parity OSD, and its recycle already resolves the parity
        destination through ``osd_hosting`` at forward time.
        """
        out: list = []
        layers = self.pools.get(osd.name)
        if not layers:
            return out
        live = (
            LogUnitState.EMPTY,
            LogUnitState.RECYCLABLE,
            LogUnitState.RECYCLING,
        )
        for layer, prefix in (("datalog", "dl"), ("paritylog", "pl")):
            for pool in layers[layer]:
                for unit in pool.units:
                    if not unit.used or unit.state not in live:
                        continue
                    for work in self.planner.plan(unit):
                        if self._real_block(work.block) != block:
                            continue
                        for ext in work.extents:
                            key = (prefix, work.block, ext.start, ext.size)
                            if key in unit.recycle_progress:
                                continue  # already applied at the source
                            out.append((layer, pool, unit, key, ext))
        return out

    def block_log_bytes(self, osd: OSD, block: BlockId) -> int:
        return sum(e[4].size for e in self._live_block_extents(osd, block))

    def settle_block(self, osd: OSD, block: BlockId) -> Generator:
        """Recycle-before-move: seal the units holding content for ``block``
        and sleep on settlement progress until the block is clean.  The
        normal (arbitered) recyclers do the work, so the settle respects
        the maintenance plane's pacing.  Terminates: the AIMD floor keeps
        paced recycle progressing, and a node death clears its pools (both
        paths fire the settlement notification)."""
        yielded = False
        while not osd.failed and self.block_unsettled(osd, block):
            for layer in _LAYERS:
                for pool in self.pools[osd.name][layer]:
                    pool.seal_active_if_dirty()
            yielded = True
            yield self.ecfs.settlement_event()
        if not yielded:
            yield self.env.timeout(0)

    def collect_block_logs(self, src: OSD, block: BlockId) -> list:
        return self._live_block_extents(src, block)

    def apply_shipped_logs(self, src: OSD, dst: OSD, block: BlockId, records: list) -> Generator:
        """Ship captured log extents with the block move (under the freeze).

        DataLog extents replay the recycle's own protocol against the
        destination's freshly-copied base: the recomputed delta equals the
        one the source's recycle would have produced, and it travels with
        the SAME dedup token, so whichever of {ship, source recycle, crash
        replay} arrives second is dropped by the receivers.  ParityLog
        extents XOR into the moved parity block directly.  Source-side
        ``recycle_progress`` marks are deferred until EVERY record landed:
        if a node dies mid-ship the move aborts without the marks, the
        block stays homed at the source, its own recycle still applies the
        content there, and the tokens keep the partial parity forwards
        exactly-once.
        """
        total = sum(ext.size for _l, _p, _u, _k, ext in records)
        if not records:
            yield self.env.timeout(0)
            return 0
        # one sequential read of the shipped extents at the source + wire
        yield from src.io_at(
            IOKind.READ, 0, total, stream="log-ship",
            priority=IOPriority.BACKGROUND, tag="tsue-ship",
        )
        yield from self.forward(src, dst, total)
        for layer, pool, unit, key, ext in records:
            token = (pool.name, unit.unit_id, unit.generation) + key
            if layer == "datalog":
                old = (
                    dst.store.read_view(block, ext.start, ext.size)
                    if block in dst.store
                    else np.zeros(ext.size, dtype=np.uint8)
                )
                delta = old ^ ext.data
                yield self.env.timeout(self.costs.xor(ext.size))
                # forward before the in-place write (the recycle's crash
                # discipline), then land the new bytes at the destination
                yield from self._forward_delta(dst, block, ext.start, delta, token)
                yield from dst.io_block(
                    IOKind.WRITE, block, ext.start, ext.size,
                    IOPriority.BACKGROUND, overwrite=True, tag="tsue-ship",
                )
                dst.store.write(block, ext.start, ext.data)
                # the move's freeze already bumped the bulk epoch; the
                # targeted registry stays coherent regardless
                if self.ecfs.bulk is not None:
                    self.ecfs.bulk.note_block_write(block)
            else:  # paritylog: merge the pending parity delta into the copy
                yield from self.parity_rmw(
                    dst, block, ext.start, ext.data,
                    IOPriority.BACKGROUND, tag="tsue-ship", frozen_ok=True,
                )
        # all landed: mark the source units so their recycle skips the
        # shipped extents (no yield between here and the caller's
        # commit_move — the marks and the re-home are atomic)
        for _layer, _pool, unit, key, _ext in records:
            unit.recycle_progress.add(key)
        return total

    # ------------------------------------------------------------- metrics
    def log_debt_bytes(self, osd: OSD) -> int:
        """Unrecycled log bytes: content of EMPTY (active), RECYCLABLE and
        RECYCLING units.  RECYCLED units retain ``used`` only as read-cache
        metadata and carry no debt."""
        live = (
            LogUnitState.EMPTY,
            LogUnitState.RECYCLABLE,
            LogUnitState.RECYCLING,
        )
        return sum(
            u.used
            for layer in _LAYERS
            for pool in self.pools[osd.name][layer]
            for u in pool.units
            if u.state in live
        )

    def memory_bytes(self, osd: OSD) -> int:
        return sum(
            pool.memory_bytes
            for layer in _LAYERS
            for pool in self.pools[osd.name][layer]
        )

    def peak_memory_bytes(self) -> int:
        return sum(
            pool.peak_units * pool.unit_size
            for layers in self.pools.values()
            for pools in layers.values()
            for pool in pools
        )

    def residence_stats(self) -> dict[str, dict[str, float]]:
        """Per-layer mean append/buffer/recycle seconds (Table 2)."""
        out: dict[str, dict[str, float]] = {}
        for layer in _LAYERS:
            buffers: list[float] = []
            recycles: list[float] = []
            for layers in self.pools.values():
                for pool in layers[layer]:
                    for buf, rec in pool.residence:
                        buffers.append(buf)
                        recycles.append(rec)
            appends = self.append_times[layer]
            out[layer] = {
                "append": float(np.mean(appends)) if appends else 0.0,
                "buffer": float(np.mean(buffers)) if buffers else 0.0,
                "recycle": float(np.mean(recycles)) if recycles else 0.0,
            }
        return out

    def stall_stats(self) -> dict[str, float]:
        stalls = stall_time = 0.0
        for layers in self.pools.values():
            for pools in layers.values():
                for pool in pools:
                    stalls += pool.stalls
                    stall_time += pool.stall_time
        return {"stalls": stalls, "stall_time": stall_time}

    # ------------------------------------------------------------ internals
    def _pool_idx(self, block: BlockId) -> int:
        return self.ecfs.placement.pool_of(block) % self.n_pools

    def _pool(self, osd: OSD, layer: str, block: BlockId) -> LogPool:
        return self.pools[osd.name][layer][self._pool_idx(block)]

    @staticmethod
    def _real_block(key) -> BlockId:
        return key.block if isinstance(key, RawKey) else key
