"""Common machinery for update methods.

An update method is attached to an :class:`~repro.cluster.ecfs.ECFS` and
handles update/read requests *on the OSD that owns the data block*.  The
base class provides the shared building blocks of Fig. 1:

* :meth:`data_rmw` — the in-place read-modify-write of a data block that
  every SOTA incremental method performs in the critical path (returns the
  data delta),
* :meth:`parity_rmw` — in-place application of a parity delta at a parity
  OSD,
* :meth:`forward` — a one-way payload transfer between two OSDs.

Methods override :meth:`handle_update`; the default :meth:`handle_read`
serves the in-place block (correct for every method whose data blocks are
updated in place; log-structured methods override it).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.cluster.client import UpdateOp
from repro.cluster.ids import BlockId
from repro.cluster.osd import OSD
from repro.storage.base import IOKind, IOPriority

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.ecfs import ECFS

__all__ = ["UpdateMethod"]


class UpdateMethod:
    """Base class; subclasses set ``name`` and implement ``handle_update``."""

    name = "base"

    def __init__(self, ecfs: "ECFS") -> None:
        self.ecfs = ecfs

    # ------------------------------------------------------------ lifecycle
    def attach(self, osd: OSD) -> None:
        """Create per-OSD state (log pools etc.).  Default: none."""

    def start_background(self) -> None:
        """Spawn background DES processes (recyclers).  Default: none."""

    def flush(self) -> Generator:
        """Drain all logs so every stripe verifies.  Default: nothing to do."""
        yield self.ecfs.env.timeout(0)

    def log_debt_bytes(self, osd: OSD) -> int:
        """Outstanding log bytes on this OSD that recovery must merge first."""
        return 0

    # ----------------------------------------------------- recovery hooks
    def quiesce_node(self, victim: OSD) -> Generator:
        """Wait for in-flight background work on ``victim`` before it fails."""
        yield self.ecfs.env.timeout(0)

    def on_node_failed(self, victim: OSD) -> None:
        """Adjust log state when ``victim`` dies.

        Default: nothing.  Methods whose logs live with the blocks they
        describe drop the victim's entries (the rebuilt blocks are re-encoded
        from up-to-date data, so those deltas are subsumed); TSUE instead
        stashes the victim's DataLog/DeltaLog content for replica replay.
        """

    def pre_rebuild(self) -> Generator:
        """Work required after survivor log settlement but before decode
        (e.g. replaying the victim's replicated logs)."""
        yield self.ecfs.env.timeout(0)

    def post_rebuild(self, block: BlockId, target: OSD, rebuilt: np.ndarray) -> Generator:
        """Apply any stashed updates for a freshly decoded block."""
        yield self.ecfs.env.timeout(0)

    def finalize_recovery(self) -> Generator:
        """Drain whatever the replay produced."""
        yield self.ecfs.env.timeout(0)

    def degraded_overlay(
        self, block: BlockId, offset: int, size: int, buf: np.ndarray
    ) -> Generator:
        """Overlay updates that were acked but not yet merged into ``block``
        when its node died (consulted by degraded reads).  Methods that
        update data blocks in place have nothing logged for data blocks;
        TSUE overrides this to read the replica DataLog."""
        yield self.ecfs.env.timeout(0)
        return buf

    def memory_bytes(self, osd: OSD) -> int:
        """Method memory footprint on this OSD (log buffers + indexes)."""
        return 0

    # ------------------------------------------------------------- handlers
    def handle_update(self, osd: OSD, op: UpdateOp) -> Generator:
        raise NotImplementedError

    def handle_read(
        self, osd: OSD, block: BlockId, offset: int, size: int
    ) -> Generator:
        """Default read path: the in-place data block."""
        yield from osd.io_block(IOKind.READ, block, offset, size)
        return (
            osd.store.read(block, offset, size)
            if block in osd.store
            else np.zeros(size, dtype=np.uint8)
        )

    # ------------------------------------------------------ shared plumbing
    @property
    def env(self):
        return self.ecfs.env

    @property
    def costs(self):
        return self.ecfs.config.costs

    def data_rmw(
        self, osd: OSD, op: UpdateOp, priority: int = IOPriority.FOREGROUND
    ) -> Generator:
        """In-place data update: read old, write new; returns the data delta.

        This is the 'time-consuming write-after-read process' of §2.3.1 that
        TSUE removes from the critical path.  Holds the block lock so
        concurrent updates to one block serialize (no lost deltas).
        """
        with osd.block_lock(op.block).request() as lock:
            yield lock
            yield from osd.io_block(IOKind.READ, op.block, op.offset, op.size, priority)
            old = (
                osd.store.read(op.block, op.offset, op.size)
                if op.block in osd.store
                else np.zeros(op.size, dtype=np.uint8)
            )
            yield self.env.timeout(self.costs.xor(op.size))
            delta = old ^ op.payload
            yield from osd.io_block(
                IOKind.WRITE, op.block, op.offset, op.size, priority, overwrite=True
            )
            osd.store.write(op.block, op.offset, op.payload)
            self.ecfs.oracle.apply(op.block, op.offset, op.payload)
        return delta

    def parity_rmw(
        self,
        posd: OSD,
        pblock: BlockId,
        offset: int,
        pdelta: np.ndarray,
        priority: int = IOPriority.FOREGROUND,
        tag: str = "",
    ) -> Generator:
        """Read-XOR-write a parity range in place at the parity OSD."""
        size = int(pdelta.shape[0])
        yield from posd.io_block(IOKind.READ, pblock, offset, size, priority, tag=tag)
        yield self.env.timeout(self.costs.xor(size))
        yield from posd.io_block(
            IOKind.WRITE, pblock, offset, size, priority, overwrite=True, tag=tag
        )
        posd.store.ensure(pblock)
        posd.store.xor_in(pblock, offset, pdelta)

    def forward(self, src: OSD, dst: OSD, nbytes: int) -> Generator:
        """One-way OSD-to-OSD transfer (payload + header)."""
        yield from self.ecfs.net.transfer(
            src.name, dst.name, nbytes + self.ecfs.config.header_bytes
        )

    # ---------------------------------------------------------- EC geometry
    def parity_targets(self, block: BlockId) -> list[tuple[int, OSD, BlockId]]:
        """[(parity row j, hosting OSD, parity BlockId)] for ``block``'s stripe."""
        ecfs = self.ecfs
        out = []
        for j in range(ecfs.rs.m):
            pbid = BlockId(block.file_id, block.stripe, ecfs.rs.k + j)
            out.append((j, ecfs.osd_hosting(pbid), pbid))
        return out

    def parity_coef(self, j: int, data_idx: int) -> int:
        """Coding coefficient a_{j, data_idx} of Eq. (2)."""
        return int(self.ecfs.rs.coding[j, data_idx])
