"""Common machinery for update methods.

An update method is attached to an :class:`~repro.cluster.ecfs.ECFS` and
handles update/read requests *on the OSD that owns the data block*.  The
base class provides the shared building blocks of Fig. 1:

* :meth:`data_rmw` — the in-place read-modify-write of a data block that
  every SOTA incremental method performs in the critical path (returns the
  data delta),
* :meth:`parity_rmw` — in-place application of a parity delta at a parity
  OSD,
* :meth:`forward` — a one-way payload transfer between two OSDs.

Methods override :meth:`handle_update`; the default :meth:`handle_read`
serves the in-place block (correct for every method whose data blocks are
updated in place; log-structured methods override it).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.cluster.client import UpdateOp
from repro.cluster.ids import BlockId
from repro.cluster.osd import OSD
from repro.common.refcount import RefCounter
from repro.storage.base import IOKind, IOPriority

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.ecfs import ECFS

__all__ = ["UpdateMethod"]


class UpdateMethod:
    """Base class; subclasses set ``name`` and implement ``handle_update``."""

    name = "base"

    def __init__(self, ecfs: "ECFS") -> None:
        self.ecfs = ecfs
        # macro-op batching: steady-state fan-outs use latch + event chains;
        # False keeps the per-leg process path (the equivalence oracle)
        self.batched = bool(getattr(ecfs.config, "macro_batching", True))
        # stripes whose popped log content is mid-application (the entries
        # left the visible log but their parity work has not finished):
        # counted so overlapping recycles nest correctly; the last release
        # of a stripe wakes event-based settlement waiters (reconstruction,
        # drains) parked on it
        self._busy_stripes = RefCounter(on_zero=ecfs.notify_stripe)
        # parity ROWS that missed a delta because their node was down (the
        # op's data committed in place): each is re-encoded from data once
        # its host is reachable — the model's equivalent of a degraded-
        # stripe resync on peering.  A row whose host stays dead is the
        # rebuild's job (decode/re-encode), not the resync's.
        self._parity_resync: set[BlockId] = set()

    # ------------------------------------------------------------ lifecycle
    def attach(self, osd: OSD) -> None:
        """Create per-OSD state (log pools etc.).  Default: none."""

    def start_background(self) -> None:
        """Spawn background DES processes (recyclers).  Default: none."""

    def flush(self) -> Generator:
        """Drain all logs so every stripe verifies.  Default: nothing to do."""
        yield self.ecfs.env.timeout(0)

    def log_debt_bytes(self, osd: OSD) -> int:
        """Outstanding log bytes on this OSD that recovery must merge first."""
        return 0

    def unsettled_stripes(self) -> set[tuple[int, int]]:
        """Stripes with updates applied to data but still pending on parity.

        At any instant such a stripe's blocks are NOT a consistent codeword,
        so reconstruction must wait it out (``RecoveryManager`` polls this
        before capturing decode sources).  The set is pending log/busy work
        (:meth:`_pending_unsettled`, which methods override) plus
        resync-marked rows that are currently repairable; a marked row
        whose host (or a data host) is down is excluded — it cannot settle
        until that host's rebuild, which must be allowed to proceed (a dead
        row is also no obstacle to decoding: reconstruction never selects
        it as a source)."""
        return self._pending_unsettled() | {
            (pbid.file_id, pbid.stripe)
            for pbid in self._parity_resync
            if self._resync_eligible(pbid)
        }

    def _pending_unsettled(self) -> set[tuple[int, int]]:
        """Stripes with deltas in logs/buffers or mid-application.  Methods
        whose logs hold deltas that data blocks already carry in place
        override this (and must union in :attr:`_busy_stripes`); unapplied
        log records (data not yet in place either) are harmless and must
        NOT be reported."""
        return set(self._busy_stripes)

    def block_unsettled(self, osd: OSD, block: BlockId) -> bool:
        """True when ``osd`` holds log/buffer content addressed to ``block``
        that an in-place copy of the block would miss — i.e. a migration off
        ``osd`` must flush first.  Methods whose logs defer the in-place
        data write (TSUE's DataLog) override this; methods that apply data
        in place (or resolve their logs through ``osd_hosting`` at flush
        time, like FL) are covered by :meth:`unsettled_stripes` already."""
        return False

    # ------------------------------------------------- migration (log move)
    # The rebalancer's settle-or-ship protocol: a block with a *small*
    # amount of pending log content on its source settles in place before
    # the move (recycle-before-move — the cheap path, driving the normal
    # arbitered recycle machinery); a block with more ships its live log
    # extents to the destination as part of the move, with the method's own
    # replay-dedup tokens preventing double-apply if the source later
    # recycles (or crash-replays) the same extents.  Methods that apply
    # data in place at update time need none of this — the defaults say so.

    def block_log_bytes(self, osd: OSD, block: BlockId) -> int:
        """Bytes of live log content on ``osd`` addressed to ``block`` that
        an in-place copy of the block would miss — the shippable complement
        of :meth:`block_unsettled`.  0 means the base bytes are the whole
        story and the move needs neither settle nor ship."""
        return 0

    def settle_block(self, osd: OSD, block: BlockId) -> Generator:
        """Process fragment: force ``osd``'s pending log content for
        ``block`` through the normal (arbitered) recycle machinery — the
        migration fast path.  Must terminate even under a floored governor
        and when ``osd`` dies mid-settle."""
        yield self.env.timeout(0)

    def collect_block_logs(self, src: OSD, block: BlockId) -> list:
        """Capture ``src``'s live log records addressed to ``block`` for
        shipping.  Called under the stripe freeze (after ``settle_stripe``),
        so the captured set is stable.  The records are opaque to the
        caller; only :meth:`apply_shipped_logs` interprets them."""
        return []

    def apply_shipped_logs(self, src: OSD, dst: OSD, block: BlockId, records: list) -> Generator:
        """Process fragment: apply records captured by
        :meth:`collect_block_logs` at ``dst`` (still under the freeze),
        charging the read at ``src``, the wire, and the writes at ``dst``.
        Marks the extents applied at the source so its own later recycle
        skips them.  Returns the number of log bytes shipped."""
        yield self.env.timeout(0)
        return 0

    def _resync_eligible(self, pbid: BlockId) -> bool:
        """A marked row is repairable iff its own host and every data host
        are reachable."""
        if self.ecfs.osd_hosting(pbid).failed:
            return False
        return not any(
            self.ecfs.osd_hosting(BlockId(pbid.file_id, pbid.stripe, i)).failed
            for i in range(self.ecfs.rs.k)
        )

    def _mark_parity_resync(self, pbid: BlockId) -> None:
        """Record that parity row ``pbid`` missed a delta."""
        self._parity_resync.add(pbid)

    def resync_pending(self) -> bool:
        """True if any marked parity row is currently repairable (drives
        the drain/settle loop — see :meth:`ECFS.drain`)."""
        return any(self._resync_eligible(pbid) for pbid in self._parity_resync)

    def resync_parity(self, priority: int = IOPriority.FOREGROUND) -> Generator:
        """Re-encode resync-marked parity rows from data.

        Each stripe is repaired under a freeze, after its pending deltas
        drained and with no update in flight, so nothing tears the data
        capture or races a concurrent delta application.  Rows that are not
        currently repairable stay marked for a later pass (or for their
        host's rebuild, whose re-encode makes the late repair a no-op)."""
        if not self._parity_resync:
            yield self.env.timeout(0)
            return
        ecfs = self.ecfs
        rs = ecfs.rs
        bs = ecfs.config.block_size
        by_stripe: dict[tuple[int, int], list[BlockId]] = {}
        for pbid in sorted(self._parity_resync):
            by_stripe.setdefault((pbid.file_id, pbid.stripe), []).append(pbid)
        for (file_id, stripe), rows in sorted(by_stripe.items()):
            rows = [p for p in rows if self._resync_eligible(p)]
            if not rows:
                continue  # a needed host is down; retried after its rebuild
            key = (file_id, stripe)
            if (
                key in self._pending_unsettled()
                or ecfs.inflight_updates(file_id, stripe)
                or ecfs.stripe_frozen(file_id, stripe)
            ):
                # not settleable right now (deltas still draining or the
                # stripe is locked) — stays marked, retried by the caller's
                # next flush+resync pass rather than blocking here
                continue
            ecfs.freeze_stripe(file_id, stripe)
            try:
                hosts = [
                    ecfs.osd_hosting(BlockId(file_id, stripe, i))
                    for i in range(rs.k)
                ]
                if any(h.failed for h in hosts):
                    continue  # failed while we waited; retried later
                data = []
                for i, osd in enumerate(hosts):
                    bid = BlockId(file_id, stripe, i)
                    yield from osd.io_block(
                        IOKind.READ, bid, 0, bs, priority, tag="parity-resync"
                    )
                    data.append(
                        osd.store.read(bid) if bid in osd.store
                        else np.zeros(bs, dtype=np.uint8)
                    )
                yield self.env.timeout(self.costs.gf_mul(bs * rs.k, terms=rs.m))
                parity = rs.encode(data)
                for pbid in rows:
                    posd = ecfs.osd_hosting(pbid)
                    if posd.failed:
                        continue  # died while we read; stays marked
                    yield from ecfs.net.transfer(hosts[0].name, posd.name, bs)
                    yield from posd.io_block(
                        IOKind.WRITE, pbid, 0, bs, priority,
                        overwrite=True, tag="parity-resync",
                    )
                    j = pbid.idx - rs.k
                    if pbid in posd.store:
                        posd.store.write(pbid, 0, parity[j])
                    else:
                        posd.store.create(pbid, parity[j])
                    self._parity_resync.discard(pbid)
            finally:
                ecfs.thaw_stripe(file_id, stripe)

    def _stripes_busy_begin(self, stripes: set[tuple[int, int]]) -> None:
        """Mark popped-log content as mid-application: there must be no
        instant where a delta is neither in a visible log nor busy, or a
        concurrent reconstruction could capture a torn stripe."""
        for key in stripes:
            self._busy_stripes.incr(key)

    def _stripes_busy_end(self, stripes: set[tuple[int, int]]) -> None:
        for key in stripes:
            self._busy_stripes.decr(key)

    # ----------------------------------------------------- recovery hooks
    def quiesce_node(self, victim: OSD) -> Generator:
        """Wait for in-flight background work on ``victim`` before it fails."""
        yield self.ecfs.env.timeout(0)

    def on_node_failed(self, victim: OSD) -> None:
        """Adjust log state when ``victim`` dies.

        Default: nothing.  Methods whose logs live with the blocks they
        describe drop the victim's entries (the rebuilt blocks are re-encoded
        from up-to-date data, so those deltas are subsumed); TSUE instead
        stashes the victim's DataLog/DeltaLog content for replica replay.
        """

    def on_node_joined(self, osd: OSD) -> None:
        """A brand-new node joined the cluster (elastic growth): create its
        per-OSD state.  Methods with background machinery also start it
        (TSUE overrides to spawn the node's recyclers)."""
        self.attach(osd)

    def on_node_restarted(self, osd: OSD) -> None:
        """A transiently-down node came back with its contents intact (no
        rebuild happened).  Methods with background machinery resume it and
        replay anything they buffered for the node while it was down; the
        default repairs parity rows that missed deltas during the outage."""
        if self._parity_resync:
            self.ecfs.env.process(
                self.resync_parity(IOPriority.BACKGROUND),
                name=f"resync-{osd.name}",
            )

    def pre_rebuild(self) -> Generator:
        """Work required after survivor log settlement but before decode
        (e.g. replaying the victim's replicated logs).  The default repairs
        parity rows that lost deltas, so decode sources are consistent."""
        yield from self.resync_parity()

    def post_rebuild(self, block: BlockId, target: OSD, rebuilt: np.ndarray) -> Generator:
        """Apply any stashed updates for a freshly decoded block."""
        yield self.ecfs.env.timeout(0)

    def finalize_recovery(self) -> Generator:
        """Drain whatever the replay produced."""
        yield self.ecfs.env.timeout(0)

    def degraded_overlay(
        self, block: BlockId, offset: int, size: int, buf: np.ndarray
    ) -> Generator:
        """Overlay updates that were acked but not yet merged into ``block``
        when its node died (consulted by degraded reads).  Methods that
        update data blocks in place have nothing logged for data blocks;
        TSUE overrides this to read the replica DataLog."""
        yield self.ecfs.env.timeout(0)
        return buf

    def memory_bytes(self, osd: OSD) -> int:
        """Method memory footprint on this OSD (log buffers + indexes)."""
        return 0

    # ------------------------------------------------------------- handlers
    def handle_update(self, osd: OSD, op: UpdateOp) -> Generator:
        raise NotImplementedError

    def schedule_plan(self):
        """Steady-state write timeline for the schedule compiler
        (:mod:`repro.sim.schedule`): a tuple of slots mirroring this
        method's ``handle_update`` body slot for slot — the same sync
        effects at the same callback instants, the same leg generators
        through the same ``spawn_fanout`` calls — or ``None`` to always
        take the generator path.  Compiled once per (method, k, m) shape
        and only executed on requests admitted as uncontended, so the
        declaration covers exactly the no-fault no-churn case;
        ``handle_update`` remains the oracle for everything else."""
        return None

    def handle_read(
        self, osd: OSD, block: BlockId, offset: int, size: int
    ) -> Generator:
        """Default read path: the in-place data block."""
        yield from osd.io_block(IOKind.READ, block, offset, size)
        return (
            osd.store.read(block, offset, size)
            if block in osd.store
            else np.zeros(size, dtype=np.uint8)
        )

    # ------------------------------------------------------ shared plumbing
    @property
    def env(self):
        return self.ecfs.env

    @property
    def costs(self):
        return self.ecfs.config.costs

    def data_rmw(
        self, osd: OSD, op: UpdateOp, priority: int = IOPriority.FOREGROUND
    ) -> Generator:
        """In-place data update: read old, write new; returns the data delta.

        This is the 'time-consuming write-after-read process' of §2.3.1 that
        TSUE removes from the critical path.  Holds the block lock so
        concurrent updates to one block serialize (no lost deltas).
        """
        with osd.block_lock(op.block).request() as lock:
            yield lock
            yield from osd.io_block(IOKind.READ, op.block, op.offset, op.size, priority)
            # Zero-copy capture: the XOR below materializes the delta from a
            # read-only view *before* any further yield, so the snapshot is
            # taken at the read instant without an ndarray.copy().
            old = (
                osd.store.read_view(op.block, op.offset, op.size)
                if op.block in osd.store
                else np.zeros(op.size, dtype=np.uint8)
            )
            delta = old ^ op.payload
            yield self.env.timeout(self.costs.xor(op.size))
            yield from osd.io_block(
                IOKind.WRITE, op.block, op.offset, op.size, priority, overwrite=True
            )
            osd.store.write(op.block, op.offset, op.payload)
            self.ecfs.oracle.apply(op.block, op.offset, op.payload)
        return delta

    def parity_rmw(
        self,
        posd: OSD,
        pblock: BlockId,
        offset: int,
        pdelta: np.ndarray,
        priority: int = IOPriority.FOREGROUND,
        tag: str = "",
        frozen_ok: bool = False,
    ) -> Generator:
        """Read-XOR-write a parity range in place at the parity OSD.

        ``frozen_ok`` is for reconstruction-internal replays (post_rebuild)
        that run while their own stripe is frozen."""
        if not frozen_ok and self.ecfs.stripe_frozen(pblock.file_id, pblock.stripe):
            # reconstruction may hold the stripe frozen (capture -> re-home)
            yield from self.ecfs.wait_stripe_thaw(pblock.file_id, pblock.stripe)
        size = int(pdelta.shape[0])
        yield from posd.io_block(IOKind.READ, pblock, offset, size, priority, tag=tag)
        yield self.env.timeout(self.costs.xor(size))
        yield from posd.io_block(
            IOKind.WRITE, pblock, offset, size, priority, overwrite=True, tag=tag
        )
        posd.store.ensure(pblock)
        posd.store.xor_in(pblock, offset, pdelta)

    def forward(self, src: OSD, dst: OSD, nbytes: int) -> Generator:
        """One-way OSD-to-OSD transfer (payload + header)."""
        yield from self.ecfs.net.transfer(
            src.name, dst.name, nbytes + self.ecfs.config.header_bytes
        )

    def forward_c(self, src: OSD, dst: OSD, nbytes: int):
        """:meth:`forward` as a flat event chain (macro-op batching)."""
        return self.ecfs.net.transfer_chain(
            src.name, dst.name, nbytes + self.ecfs.config.header_bytes
        )

    # ---------------------------------------------------------- EC geometry
    def parity_targets(self, block: BlockId) -> list[tuple[int, OSD, BlockId]]:
        """[(parity row j, hosting OSD, parity BlockId)] for ``block``'s stripe."""
        ecfs = self.ecfs
        out = []
        for j in range(ecfs.rs.m):
            pbid = BlockId(block.file_id, block.stripe, ecfs.rs.k + j)
            out.append((j, ecfs.osd_hosting(pbid), pbid))
        return out

    def parity_coef(self, j: int, data_idx: int) -> int:
        """Coding coefficient a_{j, data_idx} of Eq. (2)."""
        return int(self.ecfs.rs.coding[j, data_idx])
