"""PARIX — speculative partial writes (Li et al., ATC '17; §2.2).

PARIX skips the write-after-read delta computation: the data OSD overwrites
in place and forwards the *new data* to the parity logs.  The parity delta
``a_ij (D_n - D_0)`` only needs the original value ``D_0`` once, so on the
**first** update of an address the data OSD must additionally read the old
bytes and ship them — the extra serial round trip that costs PARIX "2x
network latency" for updates without temporal locality.

The parity-side log keeps, per (parity block, source data block):

* a *first-wins* extent map of original bytes ``D_0`` (each byte's D0 is
  captured by the ship triggered at that byte's first update), and
* a *latest-wins* extent map of new bytes ``D_n``.

Recycling then applies ``a_ij (D_n ^ D_0)`` per extent — Eq. (4)'s
temporal-locality collapse, which is exactly PARIX's selling point.

The bulk drain plane (``ClusterConfig.bulk_drain``, :mod:`repro.sim.bulk`)
has nothing to precompute here: both operands of every recycle delta
(``D_0`` and ``D_n``) live in the in-memory pair logs — immutable once the
recycle pops them — not in the block store, so there are no old-byte
gathers to batch and no staleness window to guard.  Each extent's single
``parity_delta`` product is already the minimal host math; the method is
trivially byte-identical under either flag setting (the equivalence tests
run it through the full matrix regardless).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Generator, Optional

import numpy as np

from repro.cluster.client import UpdateOp
from repro.cluster.ids import BlockId
from repro.cluster.osd import OSD
from repro.core.intervals import ExtentMap, MergePolicy
from repro.ec.incremental import parity_delta
from repro.sim.batch import spawn_fanout
from repro.storage.base import IOKind, IOPriority
from repro.update.base import UpdateMethod

__all__ = ["PARIX"]


class _PairLog:
    """Old/new extent maps + raw-entry accounting for one (pbid, didx)."""

    __slots__ = ("old", "new", "raw_entries", "raw_bytes")

    def __init__(self) -> None:
        self.old = ExtentMap(MergePolicy.OVERWRITE)
        self.new = ExtentMap(MergePolicy.OVERWRITE)
        self.raw_entries = 0
        self.raw_bytes = 0

    def log_old(self, offset: int, data: np.ndarray) -> None:
        """First-wins: only the not-yet-covered sub-ranges record D0."""
        for gap_off, gap_size in self.old.uncovered(offset, int(data.shape[0])):
            rel = gap_off - offset
            self.old.insert(gap_off, data[rel : rel + gap_size])
        self.raw_entries += 1
        self.raw_bytes += int(data.shape[0])

    def log_new(self, offset: int, data: np.ndarray) -> None:
        self.new.insert(offset, data)
        self.raw_entries += 1
        self.raw_bytes += int(data.shape[0])


class PARIX(UpdateMethod):
    name = "parix"

    def __init__(self, ecfs) -> None:
        super().__init__(ecfs)
        # data-OSD side: ranges of each block whose D0 already shipped
        self._seen: dict[BlockId, ExtentMap] = {}
        # parity-OSD side: (pbid, data idx) -> pair log
        self._logs: dict[tuple[BlockId, int], _PairLog] = {}
        self._log_bytes: dict[str, int] = defaultdict(int)

    def handle_update(self, osd: OSD, op: UpdateOp) -> Generator:
        targets = self.parity_targets(op.block)
        live = yield from self._commit_local(osd, op, targets)

        # Wire + log-append charges.  The new data ships first; the parity
        # node probes its speculation log to decide whether it already holds
        # D0.  When it does not, it NACKs and the old data follows — the
        # serial "2x network latency" penalty of Fig. 1.
        live_targets = [(j, posd) for j, posd, _pbid in targets if not posd.failed]
        if self.batched:
            yield from self._ship_batched(osd, op, live, live_targets)
            return
        sends = [
            self.env.process(self._ship(osd, posd, op.size), name=f"parix-new-p{j}")
            for j, posd in live_targets
        ]
        yield self.env.all_of(sends)
        if live is not None:
            # NACK comes back before the data node can ship the old bytes
            nacks = [
                self.env.process(
                    self.forward(posd, osd, 0), name=f"parix-nack-p{j}"
                )
                for j, posd in live_targets
            ]
            yield self.env.all_of(nacks)
            sends = [
                self.env.process(self._ship(osd, posd, op.size), name=f"parix-old-p{j}")
                for j, posd in live_targets
            ]
            yield self.env.all_of(sends)

    def _commit_local(self, osd: OSD, op: UpdateOp, targets) -> Generator:
        """Locked speculative-write phase; returns the captured D0 bytes
        (``None`` when every touched address already shipped its baseline)."""
        # Front end is serialized per block so the parity logs' old/new state
        # commits in the same order as the in-place writes.
        with osd.block_lock(op.block).request() as lock:
            yield lock
            live = None
            if self._unseen_ranges(op.block, op.offset, op.size):
                # PARIX must capture D0 once per address: read the original
                # bytes before the speculative overwrite.
                yield from osd.io_block(IOKind.READ, op.block, op.offset, op.size)
                live = (
                    osd.store.read(op.block, op.offset, op.size)
                    if op.block in osd.store
                    else np.zeros(op.size, dtype=np.uint8)
                )
            # speculative in-place write of the new data (no read needed)
            yield from osd.io_block(
                IOKind.WRITE, op.block, op.offset, op.size, overwrite=True
            )
            # --- single synchronous commit: the store write, the oracle,
            # and ALL pair-log mutations happen with no yield in between.
            # A concurrent recycle popping a pair log must never split one
            # update's old/new across two log generations — the orphaned
            # half would silently lose the update's parity delta.
            if live is None and self._unseen_ranges(op.block, op.offset, op.size):
                # a recycle popped the pair log (clearing the D0 marks)
                # while our write was in flight: the fresh log generation
                # needs baselines after all, and the pre-write bytes are
                # still in the store right now
                live = (
                    osd.store.read(op.block, op.offset, op.size)
                    if op.block in osd.store
                    else np.zeros(op.size, dtype=np.uint8)
                )
            osd.store.write(op.block, op.offset, op.payload)
            self.ecfs.oracle.apply(op.block, op.offset, op.payload)
            if live is not None and not any(
                posd.failed for _j, posd, _p in targets
            ):
                # mark D0 captured only when EVERY parity target got it;
                # with a target down, the next update re-captures and
                # re-ships (log_old is first-wins, and the recovered
                # target's fresh baseline is exactly its re-encoded
                # parity's view of the data)
                self._mark_seen(op.block, op.offset, op.size)
            for _j, posd, pbid in targets:
                if posd.failed:
                    # this parity row misses the update: resynced when the
                    # node restarts, or re-encoded by its rebuild
                    self._mark_parity_resync(pbid)
                    continue
                log = self._logs.setdefault((pbid, op.block.idx), _PairLog())
                if live is not None:
                    log.log_old(op.offset, live)
                    self._log_bytes[posd.name] += op.size
                log.log_new(op.offset, op.payload)
                self._log_bytes[posd.name] += op.size
        return live

    def _ship_batched(self, osd: OSD, op: UpdateOp, live, live_targets) -> Generator:
        yield spawn_fanout(
            self.env, [self._ship(osd, posd, op.size) for _j, posd in live_targets]
        )
        if live is not None:
            # NACK comes back before the data node can ship the old bytes
            # (callable legs: each becomes one wire chain, no driver)
            yield spawn_fanout(
                self.env,
                [
                    (lambda p=posd: self.forward_c(p, osd, 0))
                    for _j, posd in live_targets
                ],
            )
            yield spawn_fanout(
                self.env,
                [self._ship(osd, posd, op.size) for _j, posd in live_targets],
            )

    def schedule_plan(self):
        from repro.sim.schedule import effect_slot, gen_slot

        def setup(run):
            run.ctx["targets"] = self.parity_targets(run.op.block)

        def commit(run):
            return self._commit_local(run.primary, run.op, run.ctx["targets"])

        def ship(run):
            targets = run.ctx["targets"]
            live_targets = [
                (j, posd) for j, posd, _pbid in targets if not posd.failed
            ]
            return self._ship_batched(run.primary, run.op, run.val, live_targets)

        return (effect_slot(setup), gen_slot(commit), gen_slot(ship))

    def _ship(self, osd: OSD, posd: OSD, size: int) -> Generator:
        yield from self.forward(osd, posd, size)
        yield from posd.io_log_append("parixlog", size, tag="parix-append")
        # The speculation log needs a durable per-entry index record (how
        # else would recovery find which addresses hold D0?): one small
        # random index-page write per append.  This is what keeps PARIX
        # device-bound despite skipping the data-side read.
        yield from posd.io_at(
            IOKind.WRITE,
            addr=hash((posd.name, "parix-index", size)) & 0xFFFFFFFF,
            size=4096,
            stream="parixlog-index",
            overwrite=True,
            tag="parix-index",
        )

    # --------------------------------------------------------------- helpers
    def _unseen_ranges(self, block: BlockId, offset: int, size: int) -> list:
        emap = self._seen.get(block)
        if emap is None:
            return [(offset, size)]
        return emap.uncovered(offset, size)

    def _mark_seen(self, block: BlockId, offset: int, size: int) -> None:
        emap = self._seen.get(block)
        if emap is None:
            emap = self._seen[block] = ExtentMap(MergePolicy.OVERWRITE)
        emap.insert(offset, np.zeros(size, dtype=np.uint8), own=True)

    # ------------------------------------------------------------- recycle
    def flush(self) -> Generator:
        per_osd: dict[str, list[tuple[BlockId, int]]] = defaultdict(list)
        for key in list(self._logs):
            per_osd[self.ecfs.osd_hosting(key[0]).name].append(key)
        jobs = []
        for osd in self.ecfs.osds:
            if osd.failed:
                continue  # dropped at failure; re-encoded by the rebuild
            keys = per_osd.get(osd.name)
            if keys:
                jobs.append(
                    self.env.process(
                        self._recycle_osd(osd, keys, IOPriority.BACKGROUND),
                        name=f"parix-flush-{osd.name}",
                    )
                )
        if jobs:
            yield self.env.all_of(jobs)
        else:
            yield self.env.timeout(0)

    def _recycle_osd(
        self, posd: OSD, keys: list[tuple[BlockId, int]], priority: int
    ) -> Generator:
        for key in keys:
            log = self._logs.pop(key, None)
            if log is None:
                continue
            pbid, didx = key
            # drop the D0-seen marker atomically with the pop: an update
            # arriving while this recycle is mid-flight must re-capture D0
            # into the fresh pair log, or its delta would be computed
            # against a baseline the parity never had
            self._seen.pop(BlockId(pbid.file_id, pbid.stripe, didx), None)
            stripes = {(pbid.file_id, pbid.stripe)}
            self._stripes_busy_begin(stripes)
            try:
                yield from self._apply_pair_log(posd, pbid, didx, log, priority)
            except IntegrityError:
                # the node died mid-recycle with the pair log already
                # popped: the row resyncs on restart / its rebuild
                self._mark_parity_resync(pbid)
            finally:
                self._stripes_busy_end(stripes)
        self._log_bytes[posd.name] = 0

    def _apply_pair_log(
        self, posd: OSD, pbid: BlockId, didx: int, log: _PairLog, priority: int
    ) -> Generator:
        j = pbid.idx - self.ecfs.rs.k
        # read the raw (unmerged) log back from disk: one read per entry
        for _ in range(log.raw_entries):
            yield from posd.io_at(
                IOKind.READ,
                addr=hash((pbid, didx)) & 0xFFFFFFFF,
                size=max(1, log.raw_bytes // max(1, log.raw_entries)),
                stream="parixlog-read",
                priority=priority,
                tag="parix-recycle",
            )
        for ext in log.new.extents():
            old = log.old.read_range(ext.start, ext.size)
            if old is None:
                raise RuntimeError(
                    "PARIX invariant violated: updated byte missing D0"
                )
            yield self.env.timeout(self.costs.gf_mul(ext.size))
            pdelta = parity_delta(self.parity_coef(j, didx), ext.data ^ old)
            yield from self.parity_rmw(
                posd, pbid, ext.start, pdelta, priority, tag="parix-recycle"
            )
        # the recycled pair log loses its D0 baselines: the data OSD must
        # ship fresh baselines on the next update of that data block

    def log_debt_bytes(self, osd: OSD) -> int:
        return self._log_bytes.get(osd.name, 0)

    def _pending_unsettled(self) -> set[tuple[int, int]]:
        """Speculation-logged pairs describe in-place data the parity blocks
        have not absorbed yet."""
        out = set(self._busy_stripes)
        for (pbid, _didx), log in self._logs.items():
            if log.raw_entries:
                out.add((pbid.file_id, pbid.stripe))
        return out

    def on_node_failed(self, victim: OSD) -> None:
        """The victim's speculation logs die with its parity blocks; data
        blocks are updated in place, so re-encoded rebuilds subsume them."""
        for key in list(self._logs):
            pbid, didx = key
            if self.ecfs.osd_hosting(pbid).name == victim.name:
                del self._logs[key]
                self._seen.pop(BlockId(pbid.file_id, pbid.stripe, didx), None)
        self._log_bytes[victim.name] = 0

    def recovery_prepare(self, posd: OSD) -> Generator:
        mine = [
            key
            for key in list(self._logs)
            if self.ecfs.osd_hosting(key[0]).name == posd.name
        ]
        yield from self._recycle_osd(posd, mine, IOPriority.FOREGROUND)

    def memory_bytes(self, osd: OSD) -> int:
        return self._log_bytes.get(osd.name, 0)
