"""PLR — Parity Logging with Reserved space (Chan et al., FAST '14; §2.2).

Like PL, but each parity block has a *reserved log area adjacent to it* on
disk.  That kills the random reads of PL's recycle (deltas sit next to the
parity), at two costs the paper highlights:

* appends target many per-block reserved areas scattered over the device,
  so the append stream itself becomes random writes;
* when a block's reserved area fills, recycling runs **inline in the update
  path** (the updating request waits for it), throttling throughput.

Both effects are reproduced here, which is why PLR lands at the bottom of
Fig. 5 on SSDs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Generator

import numpy as np

from repro.cluster.client import UpdateOp
from repro.cluster.ids import BlockId
from repro.cluster.osd import OSD
from repro.common.errors import IntegrityError
from repro.ec.incremental import parity_delta
from repro.sim.batch import spawn_fanout
from repro.storage.base import IOKind, IOPriority
from repro.update.base import UpdateMethod

__all__ = ["ParityLoggingReserved"]


class ParityLoggingReserved(UpdateMethod):
    name = "plr"

    def __init__(self, ecfs, reserved_fraction: float = 0.03125) -> None:
        super().__init__(ecfs)
        if not 0 < reserved_fraction <= 1:
            raise ValueError("reserved_fraction must be in (0, 1]")
        self.reserved_size = max(4096, int(ecfs.config.block_size * reserved_fraction))
        # per parity block: pending (offset, pdelta) + reserved bytes used
        self._pending: dict[BlockId, list[tuple[int, np.ndarray]]] = defaultdict(list)
        self._used: dict[BlockId, int] = defaultdict(int)

    def handle_update(self, osd: OSD, op: UpdateOp) -> Generator:
        delta = yield from self.data_rmw(osd, op)
        if self.batched:
            yield spawn_fanout(
                self.env,
                [
                    self._append_reserved(osd, posd, pbid, op, delta, j)
                    for j, posd, pbid in self.parity_targets(op.block)
                ],
            )
            return
        jobs = []
        for j, posd, pbid in self.parity_targets(op.block):
            jobs.append(
                self.env.process(
                    self._append_reserved(osd, posd, pbid, op, delta, j),
                    name=f"plr-p{j}",
                )
            )
        yield self.env.all_of(jobs)

    def schedule_plan(self):
        from repro.sim.schedule import fanout_slot, gen_slot

        def rmw(run):
            return self.data_rmw(run.primary, run.op)

        def reserved_legs(run):
            osd, op, delta = run.primary, run.op, run.val
            return [
                self._append_reserved(osd, posd, pbid, op, delta, j)
                for j, posd, pbid in self.parity_targets(op.block)
            ]

        return (gen_slot(rmw), fanout_slot(reserved_legs))

    def _append_reserved(self, osd: OSD, posd: OSD, pbid, op: UpdateOp, delta, j) -> Generator:
        yield self.env.timeout(self.costs.gf_mul(op.size))
        pdelta = parity_delta(self.parity_coef(j, op.block.idx), delta)
        yield from self.forward(osd, posd, op.size)
        try:
            if self._used[pbid] + op.size > self.reserved_size:
                # reserved area full: inline recycle, charged to this update
                yield from self._recycle_block(posd, pbid, IOPriority.FOREGROUND)
            # append lands adjacent to *this* parity block — a per-block
            # stream, so interleaved appends to different blocks are random
            # on the device
            addr = posd.block_addr(pbid) + posd.block_size + self._used[pbid]
            # reserved space is preallocated next to the parity block, so
            # every append rewrites live device space — the paper counts
            # these in the write penalty (PLR's OVERWRITE count exceeds
            # FO's in Table 1)
            yield from posd.io_at(
                IOKind.WRITE, addr, op.size, stream="plr-reserved",
                overwrite=True, tag="plr-append",
            )
        except IntegrityError:
            # the parity node died with the data already committed in
            # place: the stripe resyncs once the node restarts or rebuilds
            self._mark_parity_resync(pbid)
            raise
        self._pending[pbid].append((op.offset, pdelta))
        self._used[pbid] += op.size

    def _recycle_block(self, posd: OSD, pbid: BlockId, priority: int) -> Generator:
        """Merge a block's reserved deltas into the parity block.

        One sequential read covers parity block + adjacent reserved area
        (PLR's advantage over PL), then one overwrite of the parity block.
        """
        # reconstruction may hold the stripe frozen (capture -> re-home)
        yield from self.ecfs.wait_stripe_thaw(pbid.file_id, pbid.stripe)
        # the reserved area is adjacent to the parity block, so its content
        # travels with the block across placement epochs: recycle against
        # the CURRENT host, not whichever node the caller resolved earlier
        # (an inline recycle may have waited out a re-home just above)
        posd = self.ecfs.osd_hosting(pbid)
        entries = self._pending.pop(pbid, [])
        used = self._used.pop(pbid, 0)
        if not entries:
            return
        stripes = {(pbid.file_id, pbid.stripe)}
        self._stripes_busy_begin(stripes)
        try:
            base = posd.block_addr(pbid)
            yield from posd.io_at(
                IOKind.READ,
                base,
                posd.block_size + used,
                stream="plr-recycle",
                priority=priority,
                tag="plr-recycle",
            )
            total = sum(int(d.shape[0]) for _o, d in entries)
            yield self.env.timeout(self.costs.xor(total))
            posd.store.ensure(pbid)
            # bulk plane: coalesce the scattered reserved-area deltas into
            # maximal disjoint extents before touching the block — XOR is
            # byte-commutative, so the folded application is byte-identical
            # to replaying every raw entry (the timeout above still charges
            # the raw total)
            bulk = self.ecfs.bulk
            apply_entries = (
                bulk.fold_xor(entries)
                if bulk is not None and len(entries) > 1
                else entries
            )
            for offset, pdelta in apply_entries:
                posd.store.xor_in(pbid, offset, pdelta)
            yield from posd.io_at(
                IOKind.WRITE,
                base,
                posd.block_size,
                stream="plr-recycle",
                priority=priority,
                overwrite=True,
                tag="plr-recycle",
            )
        except IntegrityError:
            # the node died mid-recycle with the reserved-area entries
            # already popped: the row resyncs on restart / its rebuild
            self._mark_parity_resync(pbid)
        finally:
            self._stripes_busy_end(stripes)

    # ------------------------------------------------------------- drain
    def flush(self) -> Generator:
        per_osd: dict[str, list[BlockId]] = defaultdict(list)
        for pbid in list(self._pending):
            per_osd[self.ecfs.osd_hosting(pbid).name].append(pbid)
        jobs = []
        for osd in self.ecfs.osds:
            blocks = per_osd.get(osd.name)
            if blocks:
                jobs.append(
                    self.env.process(
                        self._flush_osd(osd, blocks), name=f"plr-flush-{osd.name}"
                    )
                )
        if jobs:
            yield self.env.all_of(jobs)
        else:
            yield self.env.timeout(0)

    def _flush_osd(self, osd: OSD, blocks: list[BlockId]) -> Generator:
        for pbid in blocks:
            yield from self._recycle_block(osd, pbid, IOPriority.BACKGROUND)

    def log_debt_bytes(self, osd: OSD) -> int:
        return sum(
            used
            for pbid, used in self._used.items()
            if self.ecfs.osd_hosting(pbid).name == osd.name
        )

    def _pending_unsettled(self) -> set[tuple[int, int]]:
        """Reserved-space deltas correspond to data already in place."""
        out = set(self._busy_stripes)
        for pbid, entries in self._pending.items():
            if entries:
                out.add((pbid.file_id, pbid.stripe))
        return out

    def on_node_failed(self, victim: OSD) -> None:
        # reserved-space deltas are colocated with their parity block and
        # die with it; re-encoded rebuilds subsume them
        for pbid in list(self._pending):
            if self.ecfs.osd_hosting(pbid).name == victim.name:
                self._pending.pop(pbid, None)
                self._used.pop(pbid, None)

    def recovery_prepare(self, posd: OSD) -> Generator:
        mine = [
            pbid
            for pbid in list(self._pending)
            if self.ecfs.osd_hosting(pbid).name == posd.name
        ]
        for pbid in mine:
            yield from self._recycle_block(posd, pbid, IOPriority.FOREGROUND)

    def memory_bytes(self, osd: OSD) -> int:
        return 0  # deltas live on disk in the reserved areas
