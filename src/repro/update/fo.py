"""FO — Full Overwrite (Aguilera et al. 2005; §2.2).

In-place update of the data block *and* every parity block, all in the
critical path.  All I/O is small-grained and random; the update path is the
longest of all methods (Fig. 1), but with zero log debt FO recovers fastest
(Fig. 8b's reference point).

FO keeps no logs, so the bulk drain plane (``ClusterConfig.bulk_drain``,
:mod:`repro.sim.bulk`) has nothing to batch here: ``flush`` is the base
class's no-op and the method is trivially byte-identical under either flag
setting (the equivalence tests still run it through the full matrix).
"""

from __future__ import annotations

from typing import Generator

from repro.cluster.client import UpdateOp
from repro.cluster.osd import OSD
from repro.common.errors import IntegrityError
from repro.ec.incremental import parity_delta
from repro.sim.batch import spawn_fanout
from repro.update.base import UpdateMethod

__all__ = ["FullOverwrite"]


class FullOverwrite(UpdateMethod):
    name = "fo"

    def handle_update(self, osd: OSD, op: UpdateOp) -> Generator:
        # 1. in-place RMW of the data block (random read + random write)
        delta = yield from self.data_rmw(osd, op)
        # 2. for every parity block: compute the parity delta at the data
        #    node (GF multiply), ship it, and RMW the parity block in place.
        if self.batched:
            yield spawn_fanout(
                self.env,
                [
                    self._update_parity(osd, posd, pbid, op, delta, j)
                    for j, posd, pbid in self.parity_targets(op.block)
                ],
            )
            return
        jobs = []
        for j, posd, pbid in self.parity_targets(op.block):
            jobs.append(
                self.env.process(
                    self._update_parity(osd, posd, pbid, op, delta, j),
                    name=f"fo-p{j}",
                )
            )
        yield self.env.all_of(jobs)

    def schedule_plan(self):
        from repro.sim.schedule import fanout_slot, gen_slot

        def rmw(run):
            return self.data_rmw(run.primary, run.op)

        def parity_legs(run):
            osd, op, delta = run.primary, run.op, run.val
            return [
                self._update_parity(osd, posd, pbid, op, delta, j)
                for j, posd, pbid in self.parity_targets(op.block)
            ]

        return (gen_slot(rmw), fanout_slot(parity_legs))

    def _update_parity(self, osd: OSD, posd: OSD, pbid, op: UpdateOp, delta, j) -> Generator:
        yield self.env.timeout(self.costs.gf_mul(op.size))
        pdelta = parity_delta(self.parity_coef(j, op.block.idx), delta)
        yield from self.forward(osd, posd, op.size)
        try:
            yield from self.parity_rmw(posd, pbid, op.offset, pdelta)
        except IntegrityError:
            # the parity node died with the data already committed in
            # place: the stripe resyncs once the node restarts or rebuilds
            self._mark_parity_resync(pbid)
            raise
