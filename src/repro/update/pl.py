"""PL — Parity Logging (Stodolsky et al., ISCA '93; §2.2).

Data blocks update in place (write-after-read to get the delta); the parity
delta for each parity block is appended to that parity OSD's *parity log*
(a large sequential log).  Log recycling is deferred until a space
watermark (``ClusterConfig.recycle_high_watermark`` — effectively until
flush/recovery in a bounded run, since the default watermark is 1 GiB) —
so PL's foreground is fast but it carries the largest log debt into
recovery.  When a node's log does pass the high watermark, a background
recycle drains it below the low watermark through the unified maintenance
scheduler's ``recycle`` stream.
"""

from __future__ import annotations

import warnings
from collections import defaultdict
from typing import Generator

import numpy as np

from repro.background.work import RecycleOp
from repro.cluster.client import UpdateOp
from repro.cluster.ids import BlockId
from repro.cluster.osd import OSD
from repro.common.errors import IntegrityError
from repro.ec.incremental import parity_delta
from repro.sim.batch import spawn_fanout
from repro.storage.base import IOKind, IOPriority
from repro.update.base import UpdateMethod

__all__ = ["ParityLogging"]


class _DeprecatedThreshold:
    """Shim for the retired ``ParityLogging.RECYCLE_THRESHOLD`` module
    constant: reading it warns and reports the config default — the live
    knob is ``ClusterConfig.recycle_high_watermark``.  A data descriptor,
    so *instance* writes to the old knob fail loudly instead of silently
    doing nothing (class-level rebinding cannot be intercepted without a
    metaclass; the AttributeError message covers the common tuning path).
    """

    def __get__(self, obj, objtype=None) -> int:
        warnings.warn(
            "ParityLogging.RECYCLE_THRESHOLD is deprecated; use "
            "ClusterConfig.recycle_high_watermark (cluster/config.py)",
            DeprecationWarning,
            stacklevel=2,
        )
        if obj is not None:
            return obj.ecfs.config.recycle_high_watermark
        from repro.cluster.config import ClusterConfig

        return ClusterConfig.recycle_high_watermark

    def __set__(self, obj, value) -> None:
        raise AttributeError(
            "RECYCLE_THRESHOLD no longer drives recycling; set "
            "ClusterConfig.recycle_high_watermark / recycle_low_watermark "
            "instead"
        )


class ParityLogging(UpdateMethod):
    name = "pl"

    #: deprecated: see ClusterConfig.recycle_high_watermark
    RECYCLE_THRESHOLD = _DeprecatedThreshold()

    def __init__(self, ecfs) -> None:
        super().__init__(ecfs)
        # per-OSD: list of (parity BlockId, offset, pdelta) in arrival order
        self._logs: dict[str, list[tuple[BlockId, int, np.ndarray]]] = defaultdict(list)
        self._log_bytes: dict[str, int] = defaultdict(int)
        #: nodes with a watermark-triggered background recycle in flight
        self._draining: set[str] = set()

    def handle_update(self, osd: OSD, op: UpdateOp) -> Generator:
        delta = yield from self.data_rmw(osd, op)
        if self.batched:
            yield spawn_fanout(
                self.env,
                [
                    self._log_parity(osd, posd, pbid, op, delta, j)
                    for j, posd, pbid in self.parity_targets(op.block)
                ],
            )
            return
        jobs = []
        for j, posd, pbid in self.parity_targets(op.block):
            jobs.append(
                self.env.process(
                    self._log_parity(osd, posd, pbid, op, delta, j), name=f"pl-p{j}"
                )
            )
        yield self.env.all_of(jobs)

    def schedule_plan(self):
        from repro.sim.schedule import fanout_slot, gen_slot

        def rmw(run):
            return self.data_rmw(run.primary, run.op)

        def log_legs(run):
            osd, op, delta = run.primary, run.op, run.val
            return [
                self._log_parity(osd, posd, pbid, op, delta, j)
                for j, posd, pbid in self.parity_targets(op.block)
            ]

        return (gen_slot(rmw), fanout_slot(log_legs))

    def _log_parity(self, osd: OSD, posd: OSD, pbid, op: UpdateOp, delta, j) -> Generator:
        yield self.env.timeout(self.costs.gf_mul(op.size))
        pdelta = parity_delta(self.parity_coef(j, op.block.idx), delta)
        yield from self.forward(osd, posd, op.size)
        try:
            # sequential append into the node-wide parity log
            yield from posd.io_log_append("paritylog", op.size, tag="pl-append")
        except IntegrityError:
            # the parity node died with the data already committed in
            # place: the stripe resyncs once the node restarts or rebuilds
            self._mark_parity_resync(pbid)
            raise
        self._logs[posd.name].append((pbid, op.offset, pdelta))
        self._log_bytes[posd.name] += op.size
        self._maybe_trigger_recycle(posd)

    # ------------------------------------------------------------- recycle
    def _maybe_trigger_recycle(self, posd: OSD) -> None:
        """High-watermark trigger: a node whose parity log passed
        ``recycle_high_watermark`` drains below the low watermark in the
        background (one drain per node at a time)."""
        name = posd.name
        if name in self._draining:
            return
        if self._log_bytes[name] < self.ecfs.config.recycle_high_watermark:
            return
        self._draining.add(name)
        self.env.process(self._watermark_drain(posd), name=f"pl-wm-{name}")

    def _watermark_drain(self, posd: OSD) -> Generator:
        try:
            yield from self._recycle_node(
                posd,
                IOPriority.BACKGROUND,
                target_bytes=self.ecfs.config.recycle_low_watermark,
            )
        except IntegrityError:
            pass  # the node died mid-drain; resync marks cover the rows
        finally:
            self._draining.discard(posd.name)

    def flush(self) -> Generator:
        jobs = [
            self.env.process(self._recycle_node(osd), name=f"pl-flush-{osd.name}")
            for osd in self.ecfs.osds
            if not osd.failed and self._logs.get(osd.name)
        ]
        if jobs:
            yield self.env.all_of(jobs)
        else:
            yield self.env.timeout(0)

    def _recycle_node(
        self,
        posd: OSD,
        priority: int = IOPriority.BACKGROUND,
        target_bytes: int = 0,
    ) -> Generator:
        """Replay this node's parity log: read deltas back, RMW parity blocks.

        ``target_bytes > 0`` drains oldest-first only until the remaining
        log drops to the target (the watermark path); 0 drains everything
        (flush / recovery preparation).
        """
        log = self._logs.get(posd.name)
        if not log:
            return
        if target_bytes > 0:
            excess = self._log_bytes[posd.name] - target_bytes
            drop = freed = 0
            while drop < len(log) and freed < excess:
                freed += int(log[drop][2].shape[0])
                drop += 1
            entries = log[:drop]
            del log[:drop]
            self._log_bytes[posd.name] -= freed
        else:
            entries = self._logs.pop(posd.name, [])
            self._log_bytes[posd.name] = 0
        if not entries:
            return
        stripes = {(pbid.file_id, pbid.stripe) for pbid, _o, _d in entries}
        # busy-mark BEFORE the arbiter grant: while the grant is pending the
        # popped deltas are in neither the visible log nor the blocks, and a
        # concurrent reconstruction must not capture that torn state
        self._stripes_busy_begin(stripes)
        try:
            # unified maintenance plane: the whole replay is one recycle
            # grant — but only when recycling AS background work.  A
            # FOREGROUND drain (recovery_prepare's pre-rebuild settlement)
            # must not queue behind governed background pacing: that would
            # stretch the reduced-redundancy exposure window the repair
            # stream's heavy weight exists to minimize.
            if priority >= IOPriority.BACKGROUND:
                # batch-grant arbiter path: one RecycleOp covers the whole
                # replayed backlog (byte accounting is the sum of every
                # popped entry), submitted through the bulk-drain batch
                # entry point — a single-item batch is event-for-event
                # identical to a plain request()
                yield from self.ecfs.background.request_batch(
                    [
                        RecycleOp(
                            osd=posd.name,
                            nbytes=sum(int(d.shape[0]) for _p, _o, d in entries),
                            tag="paritylog",
                        )
                    ]
                )
            # PL's recycle is random-read-heavy: the log is read back and
            # every entry is applied individually (no locality merging).
            for pbid, offset, pdelta in entries:
                try:
                    yield from posd.io_at(
                        IOKind.READ,
                        addr=(hash((pbid, offset)) & 0xFFFFFFFF),
                        size=int(pdelta.shape[0]),
                        stream="paritylog-read",
                        priority=priority,
                        tag="pl-recycle",
                    )
                    # the log entry may predate a placement-epoch re-home:
                    # the log (and its read) stays with ``posd``, but the
                    # delta must land on the parity block's CURRENT host
                    target = self.ecfs.osd_hosting(pbid)
                    if target is not posd:
                        yield from self.forward(posd, target, int(pdelta.shape[0]))
                    yield from self.parity_rmw(
                        target, pbid, offset, pdelta, priority, tag="pl-recycle"
                    )
                except IntegrityError:
                    # the node died mid-recycle with the entries already
                    # popped: the row resyncs on restart / its rebuild
                    self._mark_parity_resync(pbid)
        finally:
            self._stripes_busy_end(stripes)

    def log_debt_bytes(self, osd: OSD) -> int:
        return self._log_bytes.get(osd.name, 0)

    def _pending_unsettled(self) -> set[tuple[int, int]]:
        """Logged parity deltas correspond to data already updated in place."""
        out = set(self._busy_stripes)
        for entries in self._logs.values():
            for pbid, _offset, _pdelta in entries:
                out.add((pbid.file_id, pbid.stripe))
        return out

    def on_node_failed(self, victim: OSD) -> None:
        """The victim's parity log dies with its parity blocks; the data
        blocks already hold every update (in-place), so re-encoded rebuilds
        subsume the lost deltas."""
        self._logs.pop(victim.name, None)
        self._log_bytes[victim.name] = 0

    def recovery_prepare(self, posd: OSD) -> Generator:
        """Merge this node's pending parity log before its blocks are used."""
        yield from self._recycle_node(posd, IOPriority.FOREGROUND)

    def memory_bytes(self, osd: OSD) -> int:
        return self._log_bytes.get(osd.name, 0)
