"""Recycle planning: block-affinity lanes over sealed log units (§3.2.1).

The paper recycles log units *per block* on a thread pool, with all records
of one block pinned to one thread so merges happen in arrival order.  The
planner reproduces that: given a sealed unit's index, it yields per-block
work items and assigns each block to a lane by hash, so the TSUE method can
run ``n_lanes`` concurrent recycle processes without reordering a block's
records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator

from repro.background.work import RecycleOp
from repro.core.intervals import Extent
from repro.core.logunit import LogUnit

__all__ = [
    "BlockWork",
    "RecyclePlanner",
    "unit_recycle_op",
    "unit_batch_recycle_op",
]


def unit_recycle_op(osd_name: str, pool_name: str, unit: LogUnit) -> RecycleOp:
    """The typed work item recycling one sealed unit submits to the unified
    background scheduler: the byte cost is the unit's live content (what the
    recycle will read, merge, and write back), charged to the hosting OSD's
    background budget under the ``recycle`` stream."""
    return RecycleOp(osd=osd_name, nbytes=int(unit.used), tag=pool_name)


def unit_batch_recycle_op(
    osd_name: str, pool_name: str, units: list[LogUnit]
) -> RecycleOp:
    """One grant covering a whole unit batch (bulk drain): the byte cost is
    the summed live content, so the arbiter's accounting matches issuing one
    :func:`unit_recycle_op` per unit — only the grant count changes."""
    return RecycleOp(
        osd=osd_name,
        nbytes=sum(int(u.used) for u in units),
        tag=pool_name,
    )


@dataclass
class BlockWork:
    """All merged extents of one block within one sealed unit."""

    block: Hashable
    extents: list[Extent]
    raw_records: int
    lane: int

    @property
    def live_bytes(self) -> int:
        return sum(e.size for e in self.extents)


@dataclass
class RecyclePlanner:
    """Splits a unit into per-block work with stable lane assignment."""

    n_lanes: int = 4
    #: cumulative stats across all planned units
    planned_units: int = 0
    planned_blocks: int = 0
    planned_extents: int = 0
    raw_records: int = 0

    def plan(self, unit: LogUnit, record: bool = True) -> list[BlockWork]:
        """Work items for one sealed unit, ordered by lane then block.

        ``record=False`` skips the cumulative stats update — the bulk drain
        plane peeks ahead at queued units to precompute deltas, and those
        units are planned again (with recording) when their own recycle
        runs; counting the peek would double the reported plan stats.
        """
        if self.n_lanes < 1:
            raise ValueError("need at least one lane")
        items: list[BlockWork] = []
        for block in unit.index.blocks():
            emap = unit.index.extent_map(block)
            assert emap is not None
            extents = list(emap.extents())
            if not extents:
                continue
            items.append(
                BlockWork(
                    block=block,
                    extents=extents,
                    raw_records=emap.records_absorbed,
                    lane=self.lane_of(block),
                )
            )
        # Keep the index's insertion order within each lane: when merging is
        # disabled (fig7 baseline) a block's records appear as separate keys
        # and must recycle in append order.
        items.sort(key=lambda w: w.lane)
        if record:
            self.planned_units += 1
            self.planned_blocks += len(items)
            self.planned_extents += sum(len(w.extents) for w in items)
            self.raw_records += sum(w.raw_records for w in items)
        return items

    def lanes(self, items: list[BlockWork]) -> Iterator[list[BlockWork]]:
        """Group planned items by lane (each lane processed sequentially)."""
        for lane in range(self.n_lanes):
            lane_items = [w for w in items if w.lane == lane]
            if lane_items:
                yield lane_items

    def lane_of(self, block: Hashable) -> int:
        # RawKey (merging disabled) hashes by its real block so that all of
        # one block's records share a lane and apply in append order.
        real = getattr(block, "block", block)
        return hash(real) % self.n_lanes

    @property
    def reduction_ratio(self) -> float:
        """Raw log records per recycled extent across all planned work."""
        return self.raw_records / max(1, self.planned_extents)
