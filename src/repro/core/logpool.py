"""FIFO log pool (§3.2): unit rotation, quota backpressure, read cache.

A pool owns a FIFO queue of :class:`LogUnit`.  The *active* unit (queue tail)
takes appends; when full it is sealed (-> RECYCLABLE) and handed to the
recycler through :attr:`recyclable`.  A new active unit is obtained by
reusing the oldest RECYCLED unit — whose retained index stops serving as a
read cache at that moment — or by allocating a fresh unit while the pool is
below its quota.  When neither is possible the append **waits**: this
backpressure is the mechanism behind Fig. 6a (a 2-unit quota starves updates
because appends stall until recycling frees a unit).

The pool can also *shrink*: :meth:`trim` drops RECYCLED units above
``min_units`` when the workload is idle, releasing memory (§3.2.2).
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Hashable, Optional

import numpy as np

from repro.common.errors import ConfigError, IntegrityError, UnavailableError
from repro.core.intervals import MergePolicy
from repro.core.logunit import LogUnit, LogUnitState
from repro.sim import Environment, Event, Store

__all__ = ["LogPool"]


class LogPool:
    """One log pool: FIFO unit queue + quota + read-cache lookups."""

    def __init__(
        self,
        env: Environment,
        name: str,
        unit_size: int,
        policy: MergePolicy,
        min_units: int = 2,
        max_units: int = 4,
        block_size: int = 0,
        merge: bool = True,
    ) -> None:
        if min_units < 1 or max_units < min_units:
            raise ConfigError(
                f"quota must satisfy 1 <= min ({min_units}) <= max ({max_units})"
            )
        self.env = env
        self.name = name
        self.unit_size = unit_size
        self.policy = policy
        self.min_units = min_units
        self.max_units = max_units
        self.block_size = block_size
        self.merge = merge

        self._next_unit_id = 0
        self._dead = False
        self.units: deque[LogUnit] = deque()
        self.active = self._new_unit()
        self.units.append(self.active)

        #: sealed units for the recycler (a DES Store, so recyclers block on get)
        self.recyclable: Store = Store(env)
        self._space_waiters: list[Event] = []

        # statistics
        self.appends = 0
        self.append_bytes = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.stall_time = 0.0
        self.stalls = 0
        self.peak_units = 1
        self.residence: list[tuple[float, float]] = []  # (buffer s, recycle s)

    # ------------------------------------------------------------------ API
    def append(
        self, block: Hashable, offset: int, data: np.ndarray, own: bool = False
    ) -> Generator:
        """Process generator: append a record, waiting for space if needed.

        ``own=True`` hands the array over without the index's defensive copy
        (see :meth:`ExtentMap.insert`); only pass it for arrays nothing else
        will mutate.
        """
        data = np.asarray(data, dtype=np.uint8)
        nbytes = int(data.shape[0])
        if nbytes > self.unit_size:
            raise ConfigError(
                f"record of {nbytes}B exceeds unit size {self.unit_size}B"
            )
        if self._dead:
            raise UnavailableError(f"log pool {self.name} is on a failed node")
        # The active pointer may reference a SEALED unit when the quota was
        # exhausted (acquire failed); state must be checked alongside space
        # or a smaller record could sneak into a RECYCLABLE unit.
        while (
            self.active.state is not LogUnitState.EMPTY
            or not self.active.fits(nbytes)
        ):
            if self.active.state is LogUnitState.EMPTY:
                self._seal_active()
            if not self._acquire_active():
                t0 = self.env.now
                waiter = self.env.event()
                self._space_waiters.append(waiter)
                self.stalls += 1
                yield waiter
                self.stall_time += self.env.now - t0
                if self._dead:
                    raise UnavailableError(
                        f"log pool {self.name} died while an append waited"
                    )
        self.active.append(block, offset, data, self.env.now, own=own)
        self.appends += 1
        self.append_bytes += nbytes

    def lookup(self, block: Hashable, offset: int, size: int) -> Optional[np.ndarray]:
        """Read-cache query over all units, newest first (§3.3.3)."""
        for unit in reversed(self.units):
            hit = unit.index.lookup(block, offset, size)
            if hit is not None:
                self.cache_hits += 1
                return hit
        self.cache_misses += 1
        return None

    def covers_any(self, block: Hashable, offset: int, size: int) -> bool:
        return any(u.index.covers_any(block, offset, size) for u in self.units)

    def overlay(
        self, block: Hashable, offset: int, size: int, buf: np.ndarray
    ) -> np.ndarray:
        """Apply any logged (newer) bytes of ``block`` onto ``buf`` — the
        partial-hit read path ensuring no stale data is returned (§3.3.3).
        Units are applied oldest to newest so later records win."""
        end = offset + size
        for unit in self.units:
            emap = unit.index.extent_map(block)
            if emap is None:
                continue
            for ext in emap.extents():
                s = max(ext.start, offset)
                e = min(ext.end, end)
                if s < e:
                    buf[s - offset : e - offset] = ext.data[s - ext.start : e - ext.start]
        return buf

    def seal_active_if_dirty(self) -> None:
        """Force-seal a non-empty active unit (flush/drain path).

        The active pointer may already reference a sealed unit when the
        quota is exhausted (single-unit pools) — nothing to do then.
        """
        if self.active.state is LogUnitState.EMPTY and self.active.used > 0:
            self._seal_active()
            self._acquire_active()

    def unit_recycled(self, unit: LogUnit) -> None:
        """Recycler callback: unit finished; record stats and wake waiters."""
        unit.finish_recycle(self.env.now)
        buf = unit.buffer_interval or 0.0
        rec = unit.recycle_interval or 0.0
        self.residence.append((buf, rec))
        if self._space_waiters and self._acquire_active():
            for waiter in self._space_waiters:
                if not waiter.triggered:
                    waiter.succeed()
            self._space_waiters.clear()

    def fail(self) -> None:
        """Node death: error out waiting appenders instead of leaving them
        blocked on recycling that will never happen, and refuse new appends
        (so a front end never acks an update this pool cannot make durable)."""
        self._dead = True
        waiters, self._space_waiters = self._space_waiters, []
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed()

    def trim(self) -> int:
        """Drop RECYCLED units above ``min_units``; returns units freed."""
        freed = 0
        while len(self.units) > self.min_units:
            victim = None
            for u in self.units:
                if u.state is LogUnitState.RECYCLED:
                    victim = u
                    break
            if victim is None:
                break
            self.units.remove(victim)
            freed += 1
        return freed

    # ------------------------------------------------------------- metrics
    @property
    def dead(self) -> bool:
        """True once :meth:`fail` ran (the hosting node crashed for good)."""
        return self._dead

    @property
    def n_units(self) -> int:
        return len(self.units)

    @property
    def memory_bytes(self) -> int:
        """Memory footprint: every resident unit reserves its full buffer."""
        return len(self.units) * self.unit_size

    @property
    def backlog(self) -> int:
        """Units sealed but not yet recycled."""
        return sum(
            1
            for u in self.units
            if u.state in (LogUnitState.RECYCLABLE, LogUnitState.RECYCLING)
        )

    # ------------------------------------------------------------ internals
    def _new_unit(self) -> LogUnit:
        unit = LogUnit(
            self._next_unit_id,
            self.unit_size,
            self.policy,
            self.block_size,
            merge=self.merge,
        )
        self._next_unit_id += 1
        return unit

    def _seal_active(self) -> None:
        if self.active.state is not LogUnitState.EMPTY:
            raise IntegrityError("active unit is not appendable")
        self.active.seal(self.env.now)
        self.recyclable.put(self.active)

    def _acquire_active(self) -> bool:
        """Find/allocate an EMPTY unit and move it to the tail; False if the
        quota is exhausted and nothing is RECYCLED yet."""
        if self.active.state is LogUnitState.EMPTY and self.active.used == 0:
            return True  # already have a fresh active (racing waiters)
        for u in self.units:
            if u.state is LogUnitState.RECYCLED:
                u.reuse()
                self.units.remove(u)
                self.units.append(u)
                self.active = u
                return True
        if len(self.units) < self.max_units:
            unit = self._new_unit()
            self.units.append(unit)
            self.active = unit
            self.peak_units = max(self.peak_units, len(self.units))
            return True
        return False
