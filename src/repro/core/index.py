"""Two-level index of a log unit (§3.3.1).

Level 1: hash map block-key -> :class:`ExtentMap`.
Level 2: the ExtentMap's offset-sorted extent list.

A page-granular bitmap per block answers "could this range be in the log?"
in O(pages) without touching the extent list — the paper adds it to avoid
unnecessary linked-list walks under read load.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Optional

import numpy as np

from repro.core.intervals import Extent, ExtentMap, MergePolicy

__all__ = ["TwoLevelIndex"]

_BITMAP_PAGE = 4096


class TwoLevelIndex:
    """Block-keyed extent index with bitmap-accelerated membership tests."""

    def __init__(
        self, policy: MergePolicy = MergePolicy.OVERWRITE, block_size: int = 0
    ) -> None:
        self.policy = policy
        self.block_size = block_size  # 0 = unknown/variable
        self._maps: dict[Hashable, ExtentMap] = {}
        self._bitmaps: dict[Hashable, np.ndarray] = {}

    # ------------------------------------------------------------------ API
    def insert(
        self, block: Hashable, offset: int, data: np.ndarray, own: bool = False
    ) -> None:
        emap = self._maps.get(block)
        if emap is None:
            emap = self._maps[block] = ExtentMap(self.policy)
        emap.insert(offset, data, own=own)
        self._mark_bitmap(block, offset, len(data))

    def lookup(self, block: Hashable, offset: int, size: int) -> Optional[np.ndarray]:
        """Read-cache query: bytes if the full range is covered, else None."""
        if not self._bitmap_may_contain(block, offset, size):
            return None
        emap = self._maps.get(block)
        if emap is None:
            return None
        return emap.lookup(offset, size)

    def covers_any(self, block: Hashable, offset: int, size: int) -> bool:
        if not self._bitmap_touches(block, offset, size):
            return False
        emap = self._maps.get(block)
        return emap is not None and emap.covers_any(offset, size)

    def blocks(self) -> Iterator[Hashable]:
        return iter(self._maps)

    def extents(self, block: Hashable) -> Iterable[Extent]:
        emap = self._maps.get(block)
        return emap.extents() if emap else ()

    def extent_map(self, block: Hashable) -> Optional[ExtentMap]:
        return self._maps.get(block)

    def read_ranges_many(
        self, block: Hashable, ranges: list[tuple[int, int]]
    ) -> Optional[np.ndarray]:
        """Packed multi-range gather from one block's extent map.

        Flat uint8 buffer with the ranges concatenated in order, or None
        if the block is unknown or any byte is uncovered (see
        :meth:`ExtentMap.read_ranges_many`).
        """
        emap = self._maps.get(block)
        if emap is None:
            return None
        return emap.read_ranges_many(ranges)

    def clear(self) -> None:
        self._maps.clear()
        self._bitmaps.clear()

    def __len__(self) -> int:
        return len(self._maps)

    @property
    def total_extents(self) -> int:
        return sum(len(m) for m in self._maps.values())

    @property
    def total_records_absorbed(self) -> int:
        return sum(m.records_absorbed for m in self._maps.values())

    @property
    def live_bytes(self) -> int:
        return sum(m.live_bytes for m in self._maps.values())

    # ------------------------------------------------------------ internals
    def _mark_bitmap(self, block: Hashable, offset: int, size: int) -> None:
        if not self.block_size:
            return
        bm = self._bitmaps.get(block)
        if bm is None:
            npages = -(-self.block_size // _BITMAP_PAGE)
            bm = self._bitmaps[block] = np.zeros(npages, dtype=bool)
        bm[offset // _BITMAP_PAGE : -(-(offset + size) // _BITMAP_PAGE)] = True

    def _bitmap_may_contain(self, block: Hashable, offset: int, size: int) -> bool:
        """Full-coverage pre-check for lookup: every touched page marked."""
        if not self.block_size:
            return True  # no bitmap: fall through to the extent map
        bm = self._bitmaps.get(block)
        if bm is None:
            return False
        lo = offset // _BITMAP_PAGE
        hi = -(-(offset + size) // _BITMAP_PAGE)
        return bool(bm[lo:hi].all())

    def _bitmap_touches(self, block: Hashable, offset: int, size: int) -> bool:
        """Any-overlap pre-check for covers_any: at least one page marked."""
        if not self.block_size:
            return True
        bm = self._bitmaps.get(block)
        if bm is None:
            return False
        lo = offset // _BITMAP_PAGE
        hi = -(-(offset + size) // _BITMAP_PAGE)
        return bool(bm[lo:hi].any())
