"""Fixed-size log units with the four-state lifecycle of Fig. 3."""

from __future__ import annotations

import enum
from typing import Hashable, NamedTuple, Optional

import numpy as np

from repro.common.errors import IntegrityError
from repro.core.index import TwoLevelIndex
from repro.core.intervals import MergePolicy

__all__ = ["LogUnitState", "LogUnit", "RawKey"]


class RawKey(NamedTuple):
    """Index key used when locality merging is disabled (fig. 7 baseline):
    every record gets its own key so nothing merges; ``block`` is the real
    block id, ``seq`` preserves append order."""

    block: Hashable
    seq: int


class LogUnitState(enum.Enum):
    EMPTY = "empty"  # active or ready for appends
    RECYCLABLE = "recyclable"  # sealed, waiting for a recycle thread
    RECYCLING = "recycling"  # attached to a recycle thread
    RECYCLED = "recycled"  # done; index retained as read cache until reuse


class LogUnit:
    """One append-only unit of a log pool.

    ``capacity`` bounds the *raw* appended bytes (the on-disk footprint of
    the append stream); the in-memory index may hold fewer live bytes thanks
    to merging.  Timestamps record the residence intervals behind Table 2:
    ``first_append_at`` → ``sealed_at`` is the fill period, ``sealed_at`` →
    ``recycled_at`` is the buffer+recycle period.
    """

    def __init__(
        self,
        unit_id: int,
        capacity: int,
        policy: MergePolicy,
        block_size: int = 0,
        merge: bool = True,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.unit_id = unit_id
        self.capacity = capacity
        self.state = LogUnitState.EMPTY
        self.merge = merge
        self.index = TwoLevelIndex(policy, block_size=block_size)
        self.used = 0
        self._seq = 0
        #: extents a recycler already applied durably — consulted when a
        #: crashed/restarted recycle replays the unit so nothing re-applies
        self.recycle_progress: set = set()
        #: bumped on every reuse so (unit_id, generation) names one fill
        #: cycle uniquely — the basis of replay-dedup tokens
        self.generation = 0
        self.first_append_at: Optional[float] = None
        self.sealed_at: Optional[float] = None
        self.recycle_started_at: Optional[float] = None
        self.recycled_at: Optional[float] = None

    # ------------------------------------------------------------------ API
    def fits(self, nbytes: int) -> bool:
        return self.used + nbytes <= self.capacity

    def append(
        self,
        block: Hashable,
        offset: int,
        data: np.ndarray,
        now: float,
        own: bool = False,
    ) -> None:
        """Append a record (caller must have checked :meth:`fits`)."""
        if self.state is not LogUnitState.EMPTY:
            raise IntegrityError(f"append to unit in state {self.state}")
        nbytes = int(np.asarray(data).shape[0])
        if not self.fits(nbytes):
            raise IntegrityError("append overflows log unit")
        if self.first_append_at is None:
            self.first_append_at = now
        if self.merge:
            self.index.insert(block, offset, data, own=own)
        else:
            self.index.insert(RawKey(block, self._seq), offset, data, own=own)
            self._seq += 1
        self.used += nbytes

    # -- lifecycle ----------------------------------------------------------
    def seal(self, now: float) -> None:
        self._transition(LogUnitState.EMPTY, LogUnitState.RECYCLABLE)
        self.sealed_at = now

    def start_recycle(self, now: float) -> None:
        self._transition(LogUnitState.RECYCLABLE, LogUnitState.RECYCLING)
        self.recycle_started_at = now

    def finish_recycle(self, now: float) -> None:
        self._transition(LogUnitState.RECYCLING, LogUnitState.RECYCLED)
        self.recycled_at = now

    def reuse(self) -> None:
        """RECYCLED -> EMPTY: drop the retained (read-cache) index."""
        self._transition(LogUnitState.RECYCLED, LogUnitState.EMPTY)
        self.index.clear()
        self.used = 0
        self._seq = 0
        self.recycle_progress.clear()
        self.generation += 1
        self.first_append_at = None
        self.sealed_at = None
        self.recycle_started_at = None
        self.recycled_at = None

    def _transition(self, expect: LogUnitState, to: LogUnitState) -> None:
        if self.state is not expect:
            raise IntegrityError(
                f"unit {self.unit_id}: illegal transition {self.state} -> {to}"
            )
        self.state = to

    @property
    def plan_key(self) -> tuple[int, int]:
        """``(unit_id, generation)`` — names one fill cycle uniquely; the
        bulk drain plane keys precomputed delta plans on it so a reused
        unit can never consume a stale plan."""
        return (self.unit_id, self.generation)

    # -- residence windows (Table 2) ----------------------------------------
    @property
    def buffer_interval(self) -> Optional[float]:
        """Seconds from first append to recycle start."""
        if self.first_append_at is None or self.recycle_started_at is None:
            return None
        return self.recycle_started_at - self.first_append_at

    @property
    def recycle_interval(self) -> Optional[float]:
        if self.recycle_started_at is None or self.recycled_at is None:
            return None
        return self.recycled_at - self.recycle_started_at

    def __repr__(self) -> str:
        return (
            f"<LogUnit {self.unit_id} {self.state.value} "
            f"{self.used}/{self.capacity}B {len(self.index)} blocks>"
        )
