"""Extent maps: the offset-level (second-level) index of a log unit.

An :class:`ExtentMap` stores non-overlapping, offset-sorted byte extents for
one block.  Inserting a new record exploits spatio-temporal locality exactly
as §3.3.2 prescribes:

* **temporal** — a record overlapping an existing extent merges with it:
  with :attr:`MergePolicy.OVERWRITE` the new bytes replace the old (Eq. 4:
  only the latest update of an address matters); with :attr:`MergePolicy.XOR`
  the overlap is XOR-combined (Eq. 3: deltas compose additively);
* **spatial** — extents that touch end-to-start are coalesced into one
  larger extent, turning many small random I/Os into one larger I/O at
  recycle time.

The map records how many raw records were absorbed so recycle-reduction
statistics (requests merged away, bytes coalesced) fall out for free.
"""

from __future__ import annotations

import enum
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

__all__ = ["MergePolicy", "Extent", "ExtentMap"]


class MergePolicy(enum.Enum):
    """How overlapping byte ranges combine."""

    OVERWRITE = "overwrite"  # DataLog: newest data wins
    XOR = "xor"  # DeltaLog / ParityLog: deltas accumulate


@dataclass
class Extent:
    """A contiguous run of bytes at ``start`` (payload length = size)."""

    start: int
    data: np.ndarray

    @property
    def end(self) -> int:
        return self.start + self.data.shape[0]

    @property
    def size(self) -> int:
        return int(self.data.shape[0])

    def __repr__(self) -> str:
        return f"Extent[{self.start}, {self.end})"


class ExtentMap:
    """Sorted, non-overlapping extents for one block with merge-on-insert."""

    def __init__(self, policy: MergePolicy = MergePolicy.OVERWRITE) -> None:
        self.policy = policy
        self._starts: list[int] = []
        self._extents: list[Extent] = []
        self.records_absorbed = 0
        self.bytes_absorbed = 0

    # ------------------------------------------------------------------ API
    def insert(self, offset: int, data: np.ndarray, own: bool = False) -> None:
        """Insert a record; merges overlaps per policy and coalesces adjacency.

        ``own=True`` transfers ownership of ``data`` to the map instead of
        taking a defensive copy — for hot-path callers handing over a fresh
        array nothing else will mutate (GF products, computed deltas).
        Extents never mutate their payload in place (merge and coalesce
        build new buffers), so an adopted array is only ever read.
        """
        data = np.asarray(data, dtype=np.uint8)
        if data.ndim != 1 or data.shape[0] == 0:
            raise ValueError("record payload must be a non-empty 1-D array")
        if offset < 0:
            raise ValueError("offset must be >= 0")
        self.records_absorbed += 1
        self.bytes_absorbed += data.shape[0]

        new = Extent(offset, data if own else data.copy())
        lo, hi = self._overlap_range(new.start, new.end)
        if lo == hi:
            self._insert_at(lo, new)
        else:
            merged = self._merge(self._extents[lo:hi], new)
            del self._starts[lo:hi]
            del self._extents[lo:hi]
            self._insert_at(lo, merged)
        self._coalesce_around(self._index_of(new.start if lo == hi else merged.start))

    def lookup(self, offset: int, size: int) -> Optional[np.ndarray]:
        """Return bytes iff [offset, offset+size) is fully covered by ONE
        extent (the read-cache hit path); None otherwise."""
        if size <= 0:
            return None
        i = bisect_right(self._starts, offset) - 1
        if i < 0:
            return None
        ext = self._extents[i]
        if ext.start <= offset and offset + size <= ext.end:
            rel = offset - ext.start
            return ext.data[rel : rel + size].copy()
        return None

    def covers_any(self, offset: int, size: int) -> bool:
        """True if any byte of the range is present (staleness check)."""
        lo, hi = self._overlap_range(offset, offset + size)
        return lo != hi

    def uncovered(self, offset: int, size: int) -> list[tuple[int, int]]:
        """Sub-ranges of [offset, offset+size) NOT covered by any extent,
        as (offset, size) pairs in ascending order."""
        if size <= 0:
            return []
        end = offset + size
        gaps: list[tuple[int, int]] = []
        cursor = offset
        lo, hi = self._overlap_range(offset, end)
        for ext in self._extents[lo:hi]:
            if ext.start > cursor:
                gaps.append((cursor, ext.start - cursor))
            cursor = max(cursor, ext.end)
        if cursor < end:
            gaps.append((cursor, end - cursor))
        return gaps

    def read_range(self, offset: int, size: int) -> Optional[np.ndarray]:
        """Bytes of [offset, offset+size) if FULLY covered (possibly by
        several extents); None if any byte is missing."""
        if self.uncovered(offset, size):
            return None
        # full coverage is guaranteed above: every byte of `out` is
        # assigned below, so the zero-fill would be pure waste
        out = np.empty(size, dtype=np.uint8)
        lo, hi = self._overlap_range(offset, offset + size)
        for ext in self._extents[lo:hi]:
            s = max(ext.start, offset)
            e = min(ext.end, offset + size)
            out[s - offset : e - offset] = ext.data[s - ext.start : e - ext.start]
        return out

    def read_ranges_many(
        self, ranges: list[tuple[int, int]]
    ) -> Optional[np.ndarray]:
        """Gather many ``(offset, size)`` ranges into ONE packed buffer.

        Returns a flat uint8 array of ``sum(sizes)`` bytes with the ranges
        concatenated in argument order, or ``None`` if *any* byte of any
        range is uncovered — the all-or-nothing contract lets bulk drain
        planners fall back to the per-extent oracle without partial state.
        Equivalent to ``np.concatenate([read_range(o, s) for o, s in
        ranges])`` but with a single allocation and no per-range temporaries.
        """
        total = 0
        for _off, size in ranges:
            if size <= 0:
                return None
            total += size
        out = np.empty(total, dtype=np.uint8)
        pos = 0
        for offset, size in ranges:
            end = offset + size
            lo, hi = self._overlap_range(offset, end)
            cursor = offset
            for ext in self._extents[lo:hi]:
                if ext.start > cursor:
                    return None  # gap inside the range
                e = min(ext.end, end)
                out[pos + cursor - offset : pos + e - offset] = ext.data[
                    cursor - ext.start : e - ext.start
                ]
                cursor = e
            if cursor < end:
                return None
            pos += size
        return out

    def extents(self) -> Iterator[Extent]:
        return iter(self._extents)

    def __len__(self) -> int:
        return len(self._extents)

    @property
    def live_bytes(self) -> int:
        return sum(e.size for e in self._extents)

    @property
    def reduction_ratio(self) -> float:
        """raw records in / extents out — the recycle-savings factor."""
        return self.records_absorbed / max(1, len(self._extents))

    def clear(self) -> None:
        self._starts.clear()
        self._extents.clear()
        self.records_absorbed = 0
        self.bytes_absorbed = 0

    # ------------------------------------------------------------ internals
    def _overlap_range(self, start: int, end: int) -> tuple[int, int]:
        """Index range of extents overlapping [start, end)."""
        lo = bisect_right(self._starts, start) - 1
        if lo < 0 or self._extents[lo].end <= start:
            lo += 1
        hi = bisect_left(self._starts, end)
        return lo, hi

    def _merge(self, olds: list[Extent], new: Extent) -> Extent:
        """Combine overlapping extents + new record into one extent."""
        start = min(new.start, olds[0].start)
        end = max(new.end, olds[-1].end)
        if self.policy is MergePolicy.OVERWRITE:
            buf = np.zeros(end - start, dtype=np.uint8)
            for old in olds:  # old data first, new data wins on top
                buf[old.start - start : old.end - start] = old.data
            buf[new.start - start : new.end - start] = new.data
        else:  # XOR composition
            buf = np.zeros(end - start, dtype=np.uint8)
            for old in olds:
                buf[old.start - start : old.end - start] ^= old.data
            buf[new.start - start : new.end - start] ^= new.data
        return Extent(start, buf)

    def _insert_at(self, i: int, ext: Extent) -> None:
        self._starts.insert(i, ext.start)
        self._extents.insert(i, ext)

    def _index_of(self, start: int) -> int:
        i = bisect_left(self._starts, start)
        assert self._starts[i] == start
        return i

    def _coalesce_around(self, i: int) -> None:
        """Merge extent i with byte-adjacent neighbours (spatial locality)."""
        # merge with left neighbour
        while i > 0 and self._extents[i - 1].end == self._extents[i].start:
            left, right = self._extents[i - 1], self._extents[i]
            joined = Extent(left.start, np.concatenate([left.data, right.data]))
            self._starts[i - 1 : i + 1] = [joined.start]
            self._extents[i - 1 : i + 1] = [joined]
            i -= 1
        # merge with right neighbour
        while (
            i + 1 < len(self._extents)
            and self._extents[i].end == self._extents[i + 1].start
        ):
            left, right = self._extents[i], self._extents[i + 1]
            joined = Extent(left.start, np.concatenate([left.data, right.data]))
            self._starts[i : i + 2] = [joined.start]
            self._extents[i : i + 2] = [joined]
