"""TSUE core: the paper's primary contribution.

Data structures and policies of the two-stage update method:

* :mod:`repro.core.intervals` — extent maps with the two merge policies the
  three log layers need (latest-wins overwrite for DataLog, XOR composition
  for DeltaLog/ParityLog), plus adjacency coalescing,
* :mod:`repro.core.index` — the two-level index (block hash map -> offset-
  sorted extents) with the per-block bitmap fast path (§3.3.1),
* :mod:`repro.core.logunit` — fixed-size log units with the EMPTY /
  RECYCLABLE / RECYCLING / RECYCLED lifecycle and residence-time tracking,
* :mod:`repro.core.logpool` — the FIFO log-pool with a dynamic unit quota,
  backpressure on appends, and read-cache lookups (§3.2),
* :mod:`repro.core.recycler` — the per-block-affinity recycle scheduler.

The cluster-facing TSUE update method (:class:`repro.update.tsue.TSUE`)
composes these into the DataLog → DeltaLog → ParityLog pipeline.
"""

from repro.core.intervals import Extent, ExtentMap, MergePolicy
from repro.core.index import TwoLevelIndex
from repro.core.logunit import LogUnit, LogUnitState
from repro.core.logpool import LogPool
from repro.core.recycler import RecyclePlanner

__all__ = [
    "Extent",
    "ExtentMap",
    "MergePolicy",
    "TwoLevelIndex",
    "LogUnit",
    "LogUnitState",
    "LogPool",
    "RecyclePlanner",
]
