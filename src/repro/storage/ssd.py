"""SSD timing model with a calibrated sequential/random gap and flash wear.

The model follows the paper's premise (§2.3.1): on NAND SSDs random
small-grained I/O pays a per-command latency several times the sequential
per-byte cost, and the gap widens under load (served here by queueing on the
device's channels).  Defaults approximate a 400 GB datacenter SATA/NVMe-lite
device like the Chameleon nodes'.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.sim import Environment
from repro.storage.base import IOKind, IORequest, StorageDevice
from repro.storage.wear import FlashWearModel

__all__ = ["SSDParams", "SSDevice"]


@dataclass(frozen=True)
class SSDParams:
    """Latency/bandwidth parameters (seconds, bytes/second)."""

    seq_read_bw: float = 2.0e9
    seq_write_bw: float = 1.2e9
    rand_read_lat: float = 80e-6  # per-command random 4K read
    rand_write_lat: float = 100e-6  # per-command random 4K write
    seq_cmd_overhead: float = 8e-6  # per-command cost on a sequential stream
    channels: int = 4  # SATA-era 400 GB datacenter device
    capacity: int = 400_000_000_000

    def validate(self) -> None:
        if min(self.seq_read_bw, self.seq_write_bw) <= 0:
            raise ValueError("bandwidths must be positive")
        if min(self.rand_read_lat, self.rand_write_lat, self.seq_cmd_overhead) < 0:
            raise ValueError("latencies must be non-negative")
        if self.channels < 1:
            raise ValueError("channels must be >= 1")


class SSDevice(StorageDevice):
    """An SSD: queued channels, seq/random service times, NAND wear."""

    def __init__(
        self,
        env: Environment,
        name: str = "ssd",
        params: SSDParams | None = None,
        wear: FlashWearModel | None = None,
    ) -> None:
        self.params = params or SSDParams()
        self.params.validate()
        super().__init__(env, name, channels=self.params.channels)
        self.wear = wear or FlashWearModel()
        # precomputed native-µs constants for the submit hot path
        p = self.params
        self._us_rd_per_byte = 1e6 / p.seq_read_bw
        self._us_wr_per_byte = 1e6 / p.seq_write_bw
        self._seq_cmd_us = p.seq_cmd_overhead * 1e6
        self._rand_rd_us = p.rand_read_lat * 1e6
        self._rand_wr_us = p.rand_write_lat * 1e6

    def _service_time(self, req: IORequest, sequential: bool) -> float:
        p = self.params
        if req.kind is IOKind.READ:
            bw = p.seq_read_bw
            cmd = p.seq_cmd_overhead if sequential else p.rand_read_lat
        else:
            bw = p.seq_write_bw
            cmd = p.seq_cmd_overhead if sequential else p.rand_write_lat
        return cmd + req.size / bw

    def _service_time_us(self, req: IORequest, sequential: bool) -> int:
        if req.kind is IOKind.READ:
            cmd = self._seq_cmd_us if sequential else self._rand_rd_us
            return round(cmd + req.size * self._us_rd_per_byte)
        cmd = self._seq_cmd_us if sequential else self._rand_wr_us
        return round(cmd + req.size * self._us_wr_per_byte)

    def _service_times_us(
        self, reqs: Sequence[IORequest], seqs: Sequence[bool]
    ) -> list[int]:
        n = len(reqs)
        if n < 4:  # numpy setup outweighs the loop for tiny batches
            return [self._service_time_us(r, s) for r, s in zip(reqs, seqs)]
        sizes = np.empty(n, dtype=np.float64)
        rates = np.empty(n, dtype=np.float64)
        cmds = np.empty(n, dtype=np.float64)
        for i, (req, sequential) in enumerate(zip(reqs, seqs)):
            sizes[i] = req.size
            if req.kind is IOKind.READ:
                rates[i] = self._us_rd_per_byte
                cmds[i] = self._seq_cmd_us if sequential else self._rand_rd_us
            else:
                rates[i] = self._us_wr_per_byte
                cmds[i] = self._seq_cmd_us if sequential else self._rand_wr_us
        # same op order and half-to-even rounding as _service_time_us
        return np.rint(cmds + sizes * rates).astype(np.int64).tolist()

    def _account(self, req: IORequest, sequential: bool, service: float) -> None:
        super()._account(req, sequential, service)
        if req.kind is IOKind.WRITE:
            self.wear.record_write(
                req.size,
                sequential=sequential,
                overwrite=req.overwrite,
                stream=req.stream,
            )
