"""HDD timing model: seek + rotational latency for random access.

Used for the paper's §5.4 HDD-cluster experiments (Fig. 8).  The random/
sequential gap on disks is one to two orders of magnitude, which is why the
paper drops the DeltaLog layer there and leans harder on sequential logging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.sim import Environment
from repro.storage.base import IOKind, IORequest, StorageDevice

__all__ = ["HDDParams", "HDDevice"]


@dataclass(frozen=True)
class HDDParams:
    """7200rpm-class 2TB drive."""

    seq_bw: float = 180e6  # bytes/s sustained
    avg_seek: float = 8e-3  # seconds
    avg_rotation: float = 4.17e-3  # half a revolution at 7200rpm
    seq_cmd_overhead: float = 50e-6
    capacity: int = 2_000_000_000_000

    def validate(self) -> None:
        if self.seq_bw <= 0:
            raise ValueError("bandwidth must be positive")
        if min(self.avg_seek, self.avg_rotation, self.seq_cmd_overhead) < 0:
            raise ValueError("latencies must be non-negative")


class HDDevice(StorageDevice):
    """A spinning disk: single actuator (one channel), seek-dominated random I/O."""

    def __init__(
        self, env: Environment, name: str = "hdd", params: HDDParams | None = None
    ) -> None:
        self.params = params or HDDParams()
        self.params.validate()
        super().__init__(env, name, channels=1)
        # precomputed native-µs constants for the submit hot path
        p = self.params
        self._us_per_byte = 1e6 / p.seq_bw
        self._seq_cmd_us = p.seq_cmd_overhead * 1e6
        self._rand_us = (p.avg_seek + p.avg_rotation) * 1e6

    def _service_time(self, req: IORequest, sequential: bool) -> float:
        p = self.params
        transfer = req.size / p.seq_bw
        if sequential:
            return p.seq_cmd_overhead + transfer
        return p.avg_seek + p.avg_rotation + transfer

    def _service_time_us(self, req: IORequest, sequential: bool) -> int:
        transfer = req.size * self._us_per_byte
        if sequential:
            return round(self._seq_cmd_us + transfer)
        return round(self._rand_us + transfer)

    def _service_times_us(
        self, reqs: Sequence[IORequest], seqs: Sequence[bool]
    ) -> list[int]:
        n = len(reqs)
        if n < 4:  # numpy setup outweighs the loop for tiny batches
            return [self._service_time_us(r, s) for r, s in zip(reqs, seqs)]
        sizes = np.fromiter((r.size for r in reqs), dtype=np.float64, count=n)
        cmds = np.where(np.fromiter(seqs, dtype=bool, count=n),
                        self._seq_cmd_us, self._rand_us)
        # same op order and half-to-even rounding as _service_time_us
        return np.rint(cmds + sizes * self._us_per_byte).astype(np.int64).tolist()
