"""Flash wear model: page programs, invalidations, and GC block erases.

The paper's lifespan claim (SSDs under TSUE endure 2.5x-13x longer) derives
from the number and granularity of overwrite operations.  This model maps the
I/O stream a device sees to NAND wear the way an FTL would:

* every write programs whole flash pages — a 4 KiB random overwrite still
  programs one full page (``page_size``), which is the small-write penalty;
* *sequential* stream writes coalesce in the FTL write buffer, so a log
  append stream programs ``ceil(bytes/page)`` pages in aggregate rather than
  one page per call;
* an overwrite invalidates the previous version of its pages; invalidated
  pages must be garbage-collected, and each GC cycle relocates the still-live
  fraction of its victim block (``gc_live_fraction``) before erasing it.

Erase count = programs/pages_per_block (capacity writes) +
GC erases driven by invalidations.  ``lifespan_years`` converts the erase
rate to endurance, given per-block PE-cycle budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FlashWearModel"]


@dataclass
class FlashWearModel:
    page_size: int = 16 * 1024
    pages_per_block: int = 256  # 4 MiB erase block
    pe_cycles: int = 3000  # TLC-class endurance
    total_blocks: int = 100_000  # 400 GB / 4 MiB
    gc_live_fraction: float = 0.25  # live data copied per GC victim block

    page_programs: int = 0
    page_invalidations: int = 0
    gc_page_copies: int = 0
    _seq_buffer: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ API
    def record_write(
        self, size: int, *, sequential: bool, overwrite: bool, stream: str = ""
    ) -> None:
        """Account one write op's NAND impact."""
        if size <= 0:
            raise ValueError("size must be positive")
        if sequential and not overwrite:
            # Appends coalesce in the write buffer: program pages only as
            # whole pages fill.
            buffered = self._seq_buffer.get(stream, 0) + size
            full_pages, rest = divmod(buffered, self.page_size)
            self.page_programs += full_pages
            self._seq_buffer[stream] = rest
        else:
            pages = self._pages_touched(size)
            self.page_programs += pages
            if overwrite:
                self.page_invalidations += pages

    def flush(self) -> None:
        """Flush partial append buffers (end of run): program residual pages."""
        for stream, rest in self._seq_buffer.items():
            if rest:
                self.page_programs += 1
        self._seq_buffer.clear()

    # ------------------------------------------------------------- derived
    @property
    def gc_erases(self) -> float:
        """Erases forced by GC reclaiming invalidated pages.

        Each victim block yields ``pages_per_block * (1 - live)`` free pages
        and costs ``pages_per_block * live`` page copies plus one erase.
        """
        reclaim_per_erase = self.pages_per_block * (1.0 - self.gc_live_fraction)
        return self.page_invalidations / reclaim_per_erase

    @property
    def capacity_erases(self) -> float:
        """Erases implied by total page programs filling blocks."""
        programs = self.page_programs + self.gc_page_copies_estimate
        return programs / self.pages_per_block

    @property
    def gc_page_copies_estimate(self) -> float:
        return self.gc_erases * self.pages_per_block * self.gc_live_fraction

    @property
    def total_erases(self) -> float:
        return self.capacity_erases + self.gc_erases

    def endurance_consumed(self) -> float:
        """Fraction of the device's total PE budget consumed so far."""
        budget = float(self.pe_cycles) * self.total_blocks
        return self.total_erases / budget if budget else 0.0

    def lifespan_factor_vs(self, other: "FlashWearModel") -> float:
        """How many times longer this device lasts than ``other`` under the
        respective recorded workloads (ratio of erase rates)."""
        mine = self.total_erases
        theirs = other.total_erases
        if mine == 0:
            return float("inf")
        return theirs / mine

    # ------------------------------------------------------------ internals
    def _pages_touched(self, size: int) -> int:
        return -(-size // self.page_size)  # ceil division

    def snapshot(self) -> dict[str, float]:
        return {
            "page_programs": self.page_programs,
            "page_invalidations": self.page_invalidations,
            "gc_erases": self.gc_erases,
            "capacity_erases": self.capacity_erases,
            "total_erases": self.total_erases,
        }
