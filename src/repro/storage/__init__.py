"""Storage device timing/wear models and the in-memory block store.

The device classes are *timing and accounting* models: they charge simulated
time for each I/O on the DES and keep the counters the paper's Table 1 and
lifespan analysis need (read/write counts and volume, overwrite counts and
volume, sequential/random split, flash page programs and block erases).

Actual bytes live in :class:`repro.storage.blockstore.BlockStore`, which is a
plain dict of numpy arrays — keeping data movement (verifiable) separate from
time accounting (simulated).
"""

from repro.storage.base import IOKind, IORequest, StorageDevice
from repro.storage.blockstore import BlockStore
from repro.storage.hdd import HDDevice, HDDParams
from repro.storage.ssd import SSDevice, SSDParams
from repro.storage.wear import FlashWearModel

__all__ = [
    "IOKind",
    "IORequest",
    "StorageDevice",
    "BlockStore",
    "SSDevice",
    "SSDParams",
    "HDDevice",
    "HDDParams",
    "FlashWearModel",
]
