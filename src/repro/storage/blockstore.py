"""In-memory byte store for blocks — the *contents* side of an OSD's disk.

Timing is charged by the device models; this class holds the actual bytes so
the reproduction can verify end-to-end that every update path leaves stripes
that still decode (see the integrity oracle in :mod:`repro.cluster.verify`).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

import numpy as np

from repro.common.errors import IntegrityError

__all__ = ["BlockStore"]


class BlockStore:
    """Mapping of block id -> mutable uint8 array with ranged read/write."""

    def __init__(self, block_size: int) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = block_size
        self._blocks: dict[Hashable, np.ndarray] = {}
        #: blocks carrying a latent sector error (drive-detectable on read)
        self.corrupted: set[Hashable] = set()
        # copy-on-write zero template: zero-filled blocks share one
        # read-only array until first mutation (bulk populate creates
        # thousands of them; most are never written)
        self._zero = np.zeros(block_size, dtype=np.uint8)
        self._zero.flags.writeable = False

    def __contains__(self, block_id: Hashable) -> bool:
        return block_id in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._blocks)

    def create(
        self, block_id: Hashable, data: np.ndarray | None = None, own: bool = False
    ) -> None:
        """Materialize a block, zero-filled or from ``data``.

        ``own=True`` transfers ownership of ``data`` (a fresh, unshared,
        writable uint8 array) to the store instead of copying it — the bulk-
        populate and rebuild paths hand over arrays nothing else references.
        """
        if block_id in self._blocks:
            raise IntegrityError(f"block {block_id!r} already exists")
        if data is None:
            self._blocks[block_id] = self._zero  # CoW: promoted on mutation
        else:
            data = np.asarray(data, dtype=np.uint8)
            if data.shape != (self.block_size,):
                raise IntegrityError(
                    f"block {block_id!r}: size {data.shape} != {self.block_size}"
                )
            if own and data.flags.owndata and data.flags.writeable:
                self._blocks[block_id] = data
            else:
                self._blocks[block_id] = data.copy()

    def create_shared(self, block_id: Hashable, data: np.ndarray) -> None:
        """Materialize a block as a read-only view sharing ``data``'s buffer.

        The zero-copy sibling of ``create(own=True)`` for bulk paths that
        carve many blocks out of one backing matrix (vectorized populate):
        the store keeps a read-only view, so the usual copy-on-write
        promotion in :meth:`_writable` gives the block a private array on
        its first mutation.  The caller must not mutate the backing buffer
        afterwards.
        """
        if block_id in self._blocks:
            raise IntegrityError(f"block {block_id!r} already exists")
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != (self.block_size,):
            raise IntegrityError(
                f"block {block_id!r}: size {data.shape} != {self.block_size}"
            )
        if data.flags.writeable:
            data = data.view()
            data.flags.writeable = False
        self._blocks[block_id] = data

    def create_zero(self, block_id: Hashable) -> None:
        """Materialize a zero-filled block sharing the CoW template (no
        allocation); promoted to a private copy on first mutation."""
        if block_id in self._blocks:
            raise IntegrityError(f"block {block_id!r} already exists")
        self._blocks[block_id] = self._zero

    def create_zero_many(self, block_ids: Iterable[Hashable]) -> None:
        """Bulk :meth:`create_zero`: one existence sweep, one dict update."""
        ids = list(block_ids)
        for bid in ids:
            if bid in self._blocks:
                raise IntegrityError(f"block {bid!r} already exists")
        zero = self._zero
        self._blocks.update((bid, zero) for bid in ids)

    def ensure(self, block_id: Hashable) -> np.ndarray:
        if block_id not in self._blocks:
            self._blocks[block_id] = np.zeros(self.block_size, dtype=np.uint8)
        return self._blocks[block_id]

    def _writable(self, block_id: Hashable) -> np.ndarray:
        """Copy-on-write promotion: hand back a privately owned, writable
        array for ``block_id``, materializing it if missing."""
        block = self._blocks.get(block_id)
        if block is None or block is self._zero:
            # Zero-template promotion: a calloc'd array (lazily page-zeroed
            # by the OS) beats memcpy'ing 256 KiB of zeros — this is the
            # hottest copy in the update path per the profile.
            block = self._blocks[block_id] = np.zeros(
                self.block_size, dtype=np.uint8
            )
        elif not block.flags.writeable:
            block = self._blocks[block_id] = block.copy()
        return block

    def read(self, block_id: Hashable, offset: int = 0, size: int | None = None) -> np.ndarray:
        """Copy out ``size`` bytes at ``offset`` (whole block by default)."""
        block = self._get(block_id)
        size = self.block_size - offset if size is None else size
        self._check_range(offset, size)
        return block[offset : offset + size].copy()

    def view(self, block_id: Hashable) -> np.ndarray:
        """Zero-copy read-only view of a whole block."""
        view = self._get(block_id).view()
        view.flags.writeable = False
        return view

    def read_view(
        self, block_id: Hashable, offset: int = 0, size: int | None = None
    ) -> np.ndarray:
        """Zero-copy read-only view of a range — the hot-path alternative to
        :meth:`read` for callers that *consume* the bytes (e.g. XOR them
        into a fresh delta) before the next simulation yield.  The view
        aliases live storage: it reflects any later mutation, so snapshot
        semantics require materializing a derived array immediately."""
        block = self._get(block_id)
        size = self.block_size - offset if size is None else size
        self._check_range(offset, size)
        view = block[offset : offset + size]
        view.flags.writeable = False
        return view

    def write(self, block_id: Hashable, offset: int, data: np.ndarray) -> None:
        """Write ``data`` at ``offset``, materializing the block if needed."""
        data = np.asarray(data, dtype=np.uint8)
        self._check_range(offset, data.shape[0])
        self._writable(block_id)[offset : offset + data.shape[0]] = data

    def xor_in(self, block_id: Hashable, offset: int, delta: np.ndarray) -> None:
        """In-place XOR merge — the parity-log recycle primitive."""
        delta = np.asarray(delta, dtype=np.uint8)
        self._check_range(offset, delta.shape[0])
        self._writable(block_id)[offset : offset + delta.shape[0]] ^= delta

    def corrupt(self, block_id: Hashable, offset: int, nbytes: int) -> None:
        """Inject a latent sector error: flip bytes in place, bypassing the
        write path.  The damage is flagged in :attr:`corrupted` — the model's
        stand-in for the per-sector checksum a real drive fails on read —
        which scrubbing consults to localize and repair the block."""
        if block_id not in self._blocks:
            raise IntegrityError(f"block {block_id!r} does not exist")
        block = self._writable(block_id)
        self._check_range(offset, nbytes)
        block[offset : offset + nbytes] ^= 0xA5  # guaranteed to change bytes
        self.corrupted.add(block_id)

    def mark_clean(self, block_id: Hashable) -> None:
        """Clear the latent-error flag after a repair rewrote the block."""
        self.corrupted.discard(block_id)

    def delete(self, block_id: Hashable) -> None:
        self._blocks.pop(block_id, None)
        self.corrupted.discard(block_id)

    def nbytes(self) -> int:
        return len(self._blocks) * self.block_size

    # ------------------------------------------------------------ internals
    def _get(self, block_id: Hashable) -> np.ndarray:
        try:
            return self._blocks[block_id]
        except KeyError:
            raise IntegrityError(f"block {block_id!r} does not exist") from None

    def _check_range(self, offset: int, size: int) -> None:
        if offset < 0 or size <= 0 or offset + size > self.block_size:
            raise IntegrityError(
                f"range [{offset}, {offset + size}) outside block of "
                f"{self.block_size} bytes"
            )
