"""Common device machinery: I/O requests, sequentiality detection, counters."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Generator, Optional, Sequence

from repro.sim import Chain, CountdownLatch, Environment, PriorityResource
from repro.sim.core import _PROCESSED, Event

__all__ = ["IOKind", "IOPriority", "IORequest", "DeviceCounters", "StorageDevice"]


class IOKind(enum.Enum):
    READ = "read"
    WRITE = "write"


class IOPriority(enum.IntEnum):
    """Queue ordering on the device (lower value wins the queue).

    Three lanes, used end-to-end by every I/O submitter:

    * ``FOREGROUND`` — client-facing request work;
    * ``DEMOTED`` — foreground work whose deadline already expired: the
      tenant stopped waiting, so it must not compete with live foreground
      traffic, but it still beats maintenance (its effects are acked state);
    * ``BACKGROUND`` — the maintenance plane (recycle, scrub, repair,
      rebalance), arbitrated by :mod:`repro.background`.
    """

    FOREGROUND = 0
    DEMOTED = 5
    BACKGROUND = 10


@dataclass(slots=True)
class IORequest:
    """One device I/O.

    ``stream`` names a logical access stream (e.g. "datalog-pool3",
    "blockstore"); the device decides sequential-vs-random per stream by
    comparing ``offset`` with the stream's previous end offset.

    ``overwrite`` marks writes that replace live data in place (the paper's
    write-penalty metric counts these separately from appends/first writes).
    """

    kind: IOKind
    offset: int
    size: int
    stream: str = "default"
    priority: int = IOPriority.FOREGROUND
    overwrite: bool = False
    tag: str = ""

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"I/O size must be positive, got {self.size}")
        if self.offset < 0:
            raise ValueError(f"I/O offset must be >= 0, got {self.offset}")


@dataclass
class DeviceCounters:
    """Cumulative op/byte counters, split by pattern and overwrite status."""

    reads: int = 0
    writes: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    overwrites: int = 0
    overwrite_bytes: int = 0
    seq_ops: int = 0
    rand_ops: int = 0
    busy_time: float = 0.0
    # background (recycle) share, for the fig6a analysis
    bg_ops: int = 0
    bg_bytes: int = 0

    def snapshot(self) -> dict[str, float]:
        return dict(self.__dict__)

    @property
    def total_ops(self) -> int:
        return self.reads + self.writes


class _BatchLegDone:
    """Completion callback for one leg of a :meth:`StorageDevice.submit_many`
    fast-path batch: frees the leg's channel slot (one occurrence of the
    shared multi-grant) and counts down the latch."""

    __slots__ = ("resource", "grant", "latch")

    def __init__(self, resource: PriorityResource, grant, latch: CountdownLatch) -> None:
        self.resource = resource
        self.grant = grant
        self.latch = latch

    def __call__(self, _ev: Event) -> None:
        self.resource.release(self.grant)
        self.latch.leg_done()


class _SubmitChain:
    """One in-flight :meth:`StorageDevice.submit_chain`: a slotted state
    machine reused as the callback of every segment event (grant → stall →
    service hold → release + inline finish), so a chained I/O allocates two
    objects instead of a closure per stage."""

    __slots__ = ("device", "chain", "req", "grant", "stage")

    def __init__(self, device: "StorageDevice", chain: Chain, req: IORequest) -> None:
        self.device = device
        self.chain = chain
        self.req = req
        self.stage = 0
        grant = self.grant = device.resource.request(priority=req.priority)
        if grant._state >= _PROCESSED:
            self(grant)
        else:
            grant.callbacks.append(self)

    def __call__(self, ev: Event) -> None:
        stage = self.stage
        device = self.device
        env = device.env
        if stage == 0:  # granted: stall if the device is stuck
            self.stage = 1
            now_us = env.now_us
            if now_us < device._stuck_until_us:
                delay_us = device._stuck_until_us - now_us
                device.fault_delay_time += delay_us / 1e6
                stall = env.timeout_us(delay_us)
                stall.callbacks.append(self)
                return
            self(ev)
        elif stage == 1:  # start service
            self.stage = 2
            req = self.req
            sequential = device._classify(req)
            service_us = device._service_time_us(req, sequential)
            if device.slow_factor != 1.0:
                service_us = round(service_us * device.slow_factor)
            device._account(req, sequential, service_us / 1e6)
            hold = env.timeout_us(service_us)
            hold.callbacks.append(self)
        else:  # service done: free the channel, finish inline
            device.resource.release(self.grant)
            self.chain.finish()


class StorageDevice:
    """Base class: queued service of IORequests on the DES.

    Subclasses implement :meth:`_service_time` from their hardware model.
    ``channels`` is the device's internal parallelism (NVMe SSDs serve several
    commands concurrently; HDDs serve one).
    """

    #: gap (bytes) below which a follow-on access still counts as sequential
    SEQ_GAP = 4096

    def __init__(self, env: Environment, name: str, channels: int = 1) -> None:
        self.env = env
        self.name = name
        self.channels = channels
        self.resource = PriorityResource(env, capacity=channels)
        self.counters = DeviceCounters()
        self._stream_end: dict[str, int] = {}
        # fault-injection state (repro.fault): service-time inflation and a
        # stuck interval during which no command completes
        self.slow_factor = 1.0
        self._stuck_until_us = 0
        self.fault_delay_time = 0.0

    # ------------------------------------------------------------------ API
    def submit(self, req: IORequest) -> Generator:
        """Process generator: queue on the device, hold it for the service
        time, update counters.  Yields until the I/O completes.
        """
        with self.resource.request(priority=req.priority) as grant:
            yield grant
            env = self.env
            now_us = env.now_us
            if now_us < self._stuck_until_us:
                delay_us = self._stuck_until_us - now_us
                self.fault_delay_time += delay_us / 1e6
                yield env.timeout_us(delay_us)
            sequential = self._classify(req)
            service_us = self._service_time_us(req, sequential)
            if self.slow_factor != 1.0:
                service_us = round(service_us * self.slow_factor)
            self._account(req, sequential, service_us / 1e6)
            yield env.timeout_us(service_us)

    def submit_chain(self, req: IORequest) -> Chain:
        """:meth:`submit` as a flat event chain (macro-op batching): same
        grant → stall → classify → account → service sequence and the same
        release-at-completion ordering, with plain callbacks instead of a
        generator frame per resume."""
        chain = Chain(self.env)
        _SubmitChain(self, chain, req)
        return chain

    def submit_many(self, reqs: Sequence[IORequest]) -> CountdownLatch:
        """Batched fan-out of I/Os on this device: one latch + one grant
        object instead of a process/request/``AllOf`` member per leg.

        The uncontended fast path takes every channel slot with a single
        ``acquire_many`` grant and computes the per-leg service times in one
        vectorized pass; each leg still completes (and frees its slot) at
        its own service time, so a competing request arriving mid-batch
        sees exactly the channel availability the per-leg path would give
        it.  Contended or stuck devices fall back to per-leg chains, whose
        queueing order is byte-identical to legacy ``submit``."""
        env = self.env
        latch = CountdownLatch(env, len(reqs))
        if not reqs:
            latch.succeed()
            return latch
        resource = self.resource
        multi = None
        if env.now_us >= self._stuck_until_us:
            multi = resource.acquire_many(len(reqs))
        if multi is None:
            for req in reqs:
                chain = self.submit_chain(req)
                if chain._state >= _PROCESSED:
                    latch.leg_done()
                else:
                    latch.count_event(chain)
            return latch
        seqs = [self._classify(req) for req in reqs]
        services = self._service_times_us(reqs, seqs)
        slow = self.slow_factor
        for req, sequential, service_us in zip(reqs, seqs, services):
            if slow != 1.0:
                service_us = round(service_us * slow)
            self._account(req, sequential, service_us / 1e6)
            hold = env.timeout_us(service_us)
            hold.callbacks.append(_BatchLegDone(resource, multi, latch))
        return latch

    # --------------------------------------------------------- fault control
    def set_slowdown(self, factor: float) -> None:
        """Inflate every service time by ``factor`` (1.0 restores health)."""
        if factor <= 0:
            raise ValueError("slowdown factor must be positive")
        self.slow_factor = factor

    def stick(self, duration: float) -> None:
        """Hang the device: commands at the head of the queue stall until
        ``duration`` seconds from now (models a stuck/timeout-prone disk)."""
        if duration < 0:
            raise ValueError("stuck duration must be non-negative")
        self._stuck_until_us = max(
            self._stuck_until_us, self.env.now_us + round(duration * 1e6)
        )

    def estimate(self, req: IORequest) -> float:
        """Service time the request *would* take now (no queueing, no state
        change) — used by latency-path analyses."""
        sequential = self._peek_classify(req)
        return self._service_time(req, sequential)

    @property
    def queue_depth(self) -> int:
        return self.resource.queue_len + self.resource.count

    @property
    def quiescent(self) -> bool:
        """No armed slow/stuck fault on this device — the steady-state
        probe the schedule fast path gates admission on (an armed fault is
        still handled exactly by ``submit``/``submit_chain`` if it lands
        mid-request)."""
        return self.slow_factor == 1.0 and self.env.now_us >= self._stuck_until_us

    # ------------------------------------------------------------ internals
    def _classify(self, req: IORequest) -> bool:
        """Sequentiality from the stream's access history; updates history."""
        last_end = self._stream_end.get(req.stream)
        sequential = (
            last_end is not None and 0 <= req.offset - last_end <= self.SEQ_GAP
        )
        self._stream_end[req.stream] = req.offset + req.size
        return sequential

    def _peek_classify(self, req: IORequest) -> bool:
        last_end = self._stream_end.get(req.stream)
        return last_end is not None and 0 <= req.offset - last_end <= self.SEQ_GAP

    def _service_time(self, req: IORequest, sequential: bool) -> float:
        raise NotImplementedError

    def _service_time_us(self, req: IORequest, sequential: bool) -> int:
        """Integer-µs service time; the engine runs on this grid.  The
        default quantizes :meth:`_service_time`; hot device models override
        it with precomputed native-µs constants."""
        return round(self._service_time(req, sequential) * 1e6)

    def _service_times_us(
        self, reqs: Sequence[IORequest], seqs: Sequence[bool]
    ) -> list[int]:
        """Per-leg service times for a :meth:`submit_many` batch.  Hot
        device models override with one numpy pass over the precomputed µs
        rates; results must match :meth:`_service_time_us` leg-for-leg."""
        return [self._service_time_us(r, s) for r, s in zip(reqs, seqs)]

    def _account(self, req: IORequest, sequential: bool, service: float) -> None:
        c = self.counters
        if req.kind is IOKind.READ:
            c.reads += 1
            c.read_bytes += req.size
        else:
            c.writes += 1
            c.write_bytes += req.size
            if req.overwrite:
                c.overwrites += 1
                c.overwrite_bytes += req.size
        if sequential:
            c.seq_ops += 1
        else:
            c.rand_ops += 1
        if req.priority >= IOPriority.BACKGROUND:
            c.bg_ops += 1
            c.bg_bytes += req.size
        c.busy_time += service

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
