"""GF(2^8) arithmetic and matrix algebra.

Vectorized over numpy ``uint8`` arrays via exp/log tables (the standard
0x11d primitive polynomial).  This is the arithmetic substrate for the
Reed-Solomon coder in :mod:`repro.ec`.
"""

from repro.gf.field import (
    GF_ORDER,
    PRIMITIVE_POLY,
    gf_add,
    gf_div,
    gf_exp_table,
    gf_inv,
    gf_log_table,
    gf_mul,
    gf_mul_scalar,
    gf_pow,
)
from repro.gf.matrix import (
    gf_mat_inv,
    gf_mat_mul,
    gf_mat_rank,
    gf_mat_vec,
    identity,
)

__all__ = [
    "GF_ORDER",
    "PRIMITIVE_POLY",
    "gf_add",
    "gf_div",
    "gf_exp_table",
    "gf_inv",
    "gf_log_table",
    "gf_mul",
    "gf_mul_scalar",
    "gf_pow",
    "gf_mat_inv",
    "gf_mat_mul",
    "gf_mat_rank",
    "gf_mat_vec",
    "identity",
]
