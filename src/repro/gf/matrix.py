"""GF(2^8) matrix algebra: multiply, invert, rank.

Matrices are 2-D ``uint8`` numpy arrays.  Inversion is Gauss-Jordan with
partial "pivoting" (any nonzero pivot works in a field).  These routines run
on k x k decode matrices (k <= 128 in practice), so clarity beats micro-
optimization here; the per-byte hot path lives in :func:`repro.gf.field.gf_mul_scalar`.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import DecodeError
from repro.gf.field import gf_div, gf_mul

__all__ = ["identity", "gf_mat_mul", "gf_mat_vec", "gf_mat_inv", "gf_mat_rank"]


def identity(n: int) -> np.ndarray:
    """n x n identity over GF(256)."""
    return np.eye(n, dtype=np.uint8)


def gf_mat_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(256).

    Implemented as XOR-accumulation of scalar-row products; vectorized along
    the columns of ``b``.
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch {a.shape} @ {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
    for i in range(a.shape[0]):
        acc = np.zeros(b.shape[1], dtype=np.uint8)
        row = a[i]
        for j in range(a.shape[1]):
            if row[j]:
                acc ^= gf_mul(np.uint8(row[j]), b[j])
        out[i] = acc
    return out


def gf_mat_vec(a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Matrix-vector (or matrix-by-block-matrix) product over GF(256).

    ``x`` may be 1-D (vector) or 2-D with rows as data blocks; rows of the
    result are XOR-sums of coefficient-scaled rows of ``x``.
    """
    x = np.asarray(x, dtype=np.uint8)
    if x.ndim == 1:
        return gf_mat_mul(a, x[:, None])[:, 0]
    return gf_mat_mul(a, x)


def gf_mat_inv(a: np.ndarray) -> np.ndarray:
    """Invert a square GF(256) matrix; raises DecodeError if singular."""
    a = np.asarray(a, dtype=np.uint8)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"matrix must be square, got {a.shape}")
    n = a.shape[0]
    aug = np.concatenate([a.copy(), identity(n)], axis=1)
    for col in range(n):
        pivot_row = -1
        for row in range(col, n):
            if aug[row, col]:
                pivot_row = row
                break
        if pivot_row < 0:
            raise DecodeError(f"singular matrix (rank < {n}) — cannot decode")
        if pivot_row != col:
            aug[[col, pivot_row]] = aug[[pivot_row, col]]
        pivot = aug[col, col]
        if pivot != 1:
            aug[col] = gf_div(aug[col], np.uint8(pivot))
        for row in range(n):
            if row != col and aug[row, col]:
                aug[row] ^= gf_mul(np.uint8(aug[row, col]), aug[col])
    return aug[:, n:].copy()


def gf_mat_rank(a: np.ndarray) -> int:
    """Rank of a GF(256) matrix (row echelon elimination)."""
    a = np.asarray(a, dtype=np.uint8).copy()
    rows, cols = a.shape
    rank = 0
    for col in range(cols):
        pivot_row = -1
        for row in range(rank, rows):
            if a[row, col]:
                pivot_row = row
                break
        if pivot_row < 0:
            continue
        a[[rank, pivot_row]] = a[[pivot_row, rank]]
        a[rank] = gf_div(a[rank], np.uint8(a[rank, col]))
        for row in range(rows):
            if row != rank and a[row, col]:
                a[row] ^= gf_mul(np.uint8(a[row, col]), a[rank])
        rank += 1
        if rank == rows:
            break
    return rank
