"""Scalar and vectorized GF(2^8) field operations.

The field is built over the primitive polynomial x^8+x^4+x^3+x^2+1 (0x11d),
the same polynomial used by ISA-L / jerasure.  A full 256x256 multiplication
table (64 KiB) is precomputed at import so the erasure-coding hot path —
multiplying a whole data block by one coefficient — is a single fancy-index
``table[coef][data]`` with no branching and no temporaries beyond the output.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "GF_ORDER",
    "PRIMITIVE_POLY",
    "gf_exp_table",
    "gf_log_table",
    "gf_add",
    "gf_mul",
    "gf_mul_scalar",
    "gf_mul_into",
    "gf_mul_row",
    "gf_div",
    "gf_inv",
    "gf_pow",
]

GF_ORDER = 256
PRIMITIVE_POLY = 0x11D


def _build_tables() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    exp = np.zeros(512, dtype=np.int32)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= PRIMITIVE_POLY
    exp[255:510] = exp[:255]
    # Full multiplication table: mul[a, b] = a*b, with the zero row/col zeroed.
    mul = exp[(log[:, None] + log[None, :])].astype(np.uint8)
    mul[0, :] = 0
    mul[:, 0] = 0
    return exp, log, mul


_EXP, _LOG, _MUL = _build_tables()


def gf_exp_table() -> np.ndarray:
    """Read-only exp table (length 512, doubled to skip the mod-255)."""
    view = _EXP.view()
    view.flags.writeable = False
    return view


def gf_log_table() -> np.ndarray:
    """Read-only log table (length 256; ``log[0]`` is undefined and set to 0)."""
    view = _LOG.view()
    view.flags.writeable = False
    return view


def gf_add(a, b) -> np.ndarray:
    """Addition == subtraction == XOR in GF(2^8)."""
    return np.bitwise_xor(np.asarray(a, dtype=np.uint8), np.asarray(b, dtype=np.uint8))


def gf_mul(a, b) -> np.ndarray:
    """Element-wise product of uint8 arrays/scalars (numpy broadcasting)."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    return _MUL[a, b]


def gf_mul_scalar(coef: int, data) -> np.ndarray:
    """Multiply a data array by one field scalar — the EC hot path.

    ``np.take`` over the precomputed row beats fancy indexing ~2x for the
    block-sized gathers this path performs.
    """
    coef = int(coef)
    if not 0 <= coef < 256:
        raise ValueError(f"coefficient {coef} outside GF(256)")
    data = np.asarray(data, dtype=np.uint8)
    if coef == 0:
        return np.zeros_like(data)
    if coef == 1:
        return data.copy()
    return np.take(_MUL[coef], data)


def gf_mul_into(coef: int, data: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Scalar multiply into a preallocated ``out`` array.

    Byte-identical to :func:`gf_mul_scalar` for every coefficient
    (including the 0/1 special cases) but with the caller owning the
    destination, so bulk gathers over packed extent buffers allocate once
    per batch instead of once per extent.
    """
    coef = int(coef)
    if not 0 <= coef < 256:
        raise ValueError(f"coefficient {coef} outside GF(256)")
    if coef == 0:
        out[...] = 0
    elif coef == 1:
        np.copyto(out, data)
    else:
        np.take(_MUL[coef], data, out=out)
    return out


def gf_mul_row(coef: int) -> np.ndarray:
    """Read-only multiplication-table row for ``coef``.

    Batched encode kernels gather through the row themselves
    (``np.take(row, data, out=tmp)``) to reuse a preallocated output
    instead of paying one temporary per coefficient like
    :func:`gf_mul_scalar`.
    """
    coef = int(coef)
    if not 0 <= coef < 256:
        raise ValueError(f"coefficient {coef} outside GF(256)")
    row = _MUL[coef].view()
    row.flags.writeable = False
    return row


def gf_div(a, b) -> np.ndarray:
    """Element-wise division; raises ZeroDivisionError on any zero divisor."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if (b == 0).any():
        raise ZeroDivisionError("division by zero in GF(256)")
    out = _EXP[(_LOG[a] - _LOG[b]) % 255].astype(np.uint8)
    if a.ndim == 0:
        return out if a else np.uint8(0)
    out[a == 0] = 0
    return out


def gf_inv(a: int) -> int:
    """Multiplicative inverse of a nonzero scalar."""
    a = int(a)
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return int(_EXP[255 - _LOG[a]])


def gf_pow(a: int, n: int) -> int:
    """Scalar exponentiation ``a**n`` for ``n >= 0``."""
    a = int(a)
    n = int(n)
    if n < 0:
        raise ValueError("negative exponent")
    if n == 0:
        return 1
    if a == 0:
        return 0
    return int(_EXP[(_LOG[a] * n) % 255])
