"""Bulk recycle/drain plane: batch recycle reads and parity regeneration.

The drain/recycle phase of every log-structured update method ends in the
same shape of work — read surviving extents, merge, regenerate parity,
write back — historically done one unit and one extent at a time: one
``read_range`` + one ``gf_mul_scalar`` temporary per extent, one planner
walk per unit.  This module batches the *host-side math* of that work
across whole unit queues the way ``ECFS.populate`` batches encoding:

* **datalog recycle (TSUE)** — when a unit starts recycling, every
  settleable unit queued behind it is planned in one pass; old bytes are
  gathered into one packed buffer (store views + an overlay of writes the
  batch itself will perform), XORed against the packed new bytes in a
  single vector op, and the per-extent deltas handed back as views when
  the per-unit recycler reaches the same extent;
* **parity-delta regeneration** — per-stripe extent sets are scattered
  into a dense ``(touched_columns, union_bytes)`` matrix and pushed
  through :meth:`RSCode.encode_partial`, one ``gf_mul_row``/``np.take``
  pass per coding coefficient instead of one temporary per extent;
* **XOR folding** — scattered parity-delta entries destined for the same
  block coalesce into maximal disjoint extents before being applied.

The contract is the one ``macro_batching``/``request_schedules`` set: the
simulated event structure (every io, forward, timeout — order included)
is byte-identical with the plane on or off, because precomputed arrays
are consumed at exactly the yield points where the oracle would have
computed them.  Guards protect only the *content* of the precompute:

* an **epoch counter** bumped on any out-of-band mutation of real blocks
  (OSD fail/restart, stripe freeze for reconstruction/migration/resync,
  scrub repair, fault-injected corruption, on-demand settlement)
  invalidates all outstanding plans — consumers fall back to the oracle
  math per extent;
* a **presence check** per extent (was the block expected in the store?)
  catches anything the epoch hooks might miss.

The per-unit/per-extent path stays in the tree as the byte-exact
equivalence oracle (``ClusterConfig.bulk_drain`` off), pinned by
``tests/test_bulk_drain.py``.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, Hashable, Optional

import numpy as np

from repro.core.intervals import Extent, ExtentMap, MergePolicy
from repro.gf.field import gf_mul_row

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.ecfs import ECFS
    from repro.core.logunit import LogUnit
    from repro.core.recycler import BlockWork

__all__ = ["BulkDrainEngine", "union_spans"]

#: extents at or above this average size are delta'd directly instead of
#: through the packed gather — bytes dominate there and packing would only
#: double the memory traffic (the packed path wins on numpy per-call
#: overhead, which needs many small extents to matter)
_PACK_AVG_BYTES = 16 * 1024


def union_spans(spans: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Maximal disjoint intervals of the union of ``(start, end)`` spans.

    Spans that overlap **or touch** end-to-start merge — exactly the
    extent boundaries an :class:`ExtentMap` ends up with after inserting
    the same spans one at a time (merge-on-overlap + coalesce-on-touch),
    which is what makes the dense scatter below byte-identical to the
    per-extent oracle, boundaries included.
    """
    if not spans:
        return []
    spans = sorted(spans)
    out: list[list[int]] = [[spans[0][0], spans[0][1]]]
    for s, e in spans[1:]:
        last = out[-1]
        if s <= last[1]:
            if e > last[1]:
                last[1] = e
        else:
            out.append([s, e])
    return [(s, e) for s, e in out]


class _UnitPlan:
    """Precomputed per-extent datalog deltas for one sealed unit."""

    __slots__ = ("engine", "epoch", "deltas")

    def __init__(self, engine: "BulkDrainEngine", epoch: int, deltas: dict):
        self.engine = engine
        self.epoch = epoch
        #: key -> (delta view, expected block presence at execution)
        self.deltas = deltas

    def take(self, key, present: bool) -> Optional[np.ndarray]:
        """The precomputed delta for ``key``, or None to fall back.

        ``present`` is whether the real block exists in the store at the
        consuming yield point; a mismatch with the plan-time expectation
        (or any churn since planning) voids the entry.
        """
        entry = self.deltas.pop(key, None)
        if entry is None:
            return None
        if self.epoch != self.engine.epoch:
            self.engine.fallbacks += 1
            return None
        delta, expect_present = entry
        if present != expect_present:
            self.engine.fallbacks += 1
            return None
        self.engine.consumed += 1
        return delta


class BulkDrainEngine:
    """Session-wide bulk precompute state, armed as ``ecfs.bulk``."""

    def __init__(self, ecfs: "ECFS") -> None:
        self.ecfs = ecfs
        #: bumped on any out-of-band real-block mutation; outstanding
        #: plans carry the epoch they were computed under
        self.epoch = 0
        self._datalog_plans: dict[tuple, _UnitPlan] = {}
        #: real block -> [(plan, key), ...] for targeted invalidation: a
        #: recycle lane writing a real block voids OTHER plans' entries on
        #: that block (live-range resurrection: a newer unit's recycle can
        #: merge away, un-shadowing a planned extent whose old bytes the
        #: write just changed — the epoch guard is deliberately not bumped
        #: by recycle's own writes, so this registry covers them)
        self._block_entries: dict[Hashable, list] = {}
        # -- stats (surfaced via stats(); tests assert engagement) --
        self.batches = 0
        self.planned_units = 0
        self.planned_extents = 0
        self.consumed = 0
        self.fallbacks = 0
        self.invalidations = 0
        self.shadowed = 0
        self.parity_panels = 0
        self.folds = 0
        #: grow-on-demand scratch for panel accumulation (host-side only)
        self._scratch = np.empty(0, dtype=np.uint8)

    def _scratch_buf(self, n: int) -> np.ndarray:
        if self._scratch.shape[0] < n:
            self._scratch = np.empty(max(n, 2 * self._scratch.shape[0]), dtype=np.uint8)
        return self._scratch[:n]

    # ------------------------------------------------------------- guards
    def note_churn(self) -> None:
        """Out-of-band mutation of real blocks: void every plan."""
        self.epoch += 1
        if self._datalog_plans:
            self.invalidations += 1
            self._datalog_plans.clear()
        self._block_entries.clear()

    def note_block_write(self, real: Hashable, exempt=None) -> None:
        """A recycle lane wrote real block ``real``: void every OTHER
        plan's entries on that block.

        Concurrent recycles (a settle-forced flush racing the arbitered
        recycler) break the single-snapshot partition the batch plan
        leans on: once a newer unit's overlapping content merges, a
        planned extent it used to shadow becomes live again — with ``old``
        bytes the newer unit's write just changed.  The writing unit's own
        plan (``exempt``) stays valid: its extents are disjoint per block
        within its own snapshot."""
        entries = self._block_entries.get(real)
        if not entries:
            return
        keep = []
        for plan, key in entries:
            if plan is exempt:
                keep.append((plan, key))
            elif plan.deltas.pop(key, None) is not None:
                self.shadowed += 1
        if keep:
            self._block_entries[real] = keep
        else:
            del self._block_entries[real]

    def healthy(self) -> bool:
        """Plan only when no OSD is down — recovery rewrites real blocks
        through paths the per-extent oracle handles case by case."""
        return not any(osd.failed for osd in self.ecfs.osds)

    # ------------------------------------------------- datalog unit plans
    def datalog_plan(self, pool_name: str, unit: "LogUnit") -> Optional[_UnitPlan]:
        """The (still-valid) plan for one unit's recycle, if any."""
        key = (pool_name,) + unit.plan_key
        plan = self._datalog_plans.get(key)
        if plan is not None and plan.epoch != self.epoch:
            del self._datalog_plans[key]
            return None
        return plan

    def drop_datalog_plan(self, pool_name: str, unit: "LogUnit") -> None:
        self._datalog_plans.pop((pool_name,) + unit.plan_key, None)

    def plan_datalog_batch(
        self,
        store,
        pool_name: str,
        batch: list[tuple["LogUnit", list["BlockWork"]]],
    ) -> None:
        """Precompute datalog recycle deltas for a queue of sealed units.

        ``batch`` lists ``(unit, planned work items)`` in recycle order —
        the unit about to recycle first.  For each extent the delta the
        oracle would compute at its yield point is ``old ^ new`` where
        *old* is the store content **at that moment** — which equals the
        store content *now*: the planner's live extents come from one
        latest-wins index snapshot, so every byte belongs to exactly one
        unit and the batch's own writes never feed its later reads (only
        out-of-band churn can intervene, and the epoch guard covers it).
        A block the batch writes before this extent reads it will exist
        by then even if absent now (``BlockStore.write`` materializes) —
        the expected-presence flag encodes that.

        One exception to "every byte belongs to exactly one extent": with
        DataLog locality merging disabled (fig. 7 Baseline, TSUE O1 off)
        a unit's records keep separate RawKeys, so one unit can hold
        *overlapping* extents of the same real block that must apply in
        append order — the later extent's *old* includes the earlier
        extent's write, which this single snapshot cannot see (and
        ``note_block_write`` exempts a plan's own writes, by design).
        Such extents are simply left out of the plan: a missing key makes
        the consuming lane fall back to the oracle expression, which is
        byte-exact at any interleaving.
        """
        self.batches += 1
        epoch = self.epoch
        #: real blocks an earlier batch entry writes (hence materializes)
        written: set[Hashable] = set()
        for unit, items in batch:
            flat: list[tuple[tuple, Hashable, Extent]] = []
            total = 0
            #: per real block, [start, end) ranges this unit applies —
            #: in append order, planned or not (an unplanned overlap still
            #: writes at consume time, so later overlaps of IT are stale too)
            cover: dict[Hashable, list[tuple[int, int]]] = {}
            for work in items:
                real = getattr(work.block, "block", work.block)
                for ext in work.extents:
                    lo, hi = ext.start, ext.start + ext.size
                    seen = cover.setdefault(real, [])
                    overlaps = any(lo < e and s < hi for s, e in seen)
                    seen.append((lo, hi))
                    if overlaps:
                        # intra-unit append-order overlap: oracle fallback
                        # (the write still materializes the block)
                        written.add(real)
                        continue
                    flat.append(
                        (("dl", work.block, ext.start, ext.size), real, ext)
                    )
                    total += ext.size
            deltas: dict = {}
            plan_key = (pool_name,) + unit.plan_key
            if not flat:
                self._datalog_plans[plan_key] = _UnitPlan(self, epoch, deltas)
                self.planned_units += 1
                continue
            if total < _PACK_AVG_BYTES * len(flat):
                # many small extents: one packed gather + one vector XOR
                # amortizes the per-call numpy overhead across the unit
                old = np.empty(total, dtype=np.uint8)
                new = np.empty(total, dtype=np.uint8)
                metas: list[tuple[tuple, int, int, bool]] = []
                pos = 0
                for key, real, ext in flat:
                    n = ext.size
                    new[pos : pos + n] = ext.data
                    present = real in store
                    if present:
                        old[pos : pos + n] = store.read_view(real, ext.start, n)
                    else:
                        old[pos : pos + n] = 0
                    metas.append((key, pos, n, present or real in written))
                    written.add(real)
                    pos += n
                old ^= new  # one vector pass: old becomes the delta buffer
                old.flags.writeable = False
                for key, p, n, expect in metas:
                    deltas[key] = (old[p : p + n], expect)
            else:
                # few large extents: bytes dominate, so packing would just
                # double the memory traffic — compute each delta directly
                # (the oracle's exact expression, hoisted to plan time)
                for key, real, ext in flat:
                    present = real in store
                    if present:
                        delta = store.read_view(real, ext.start, ext.size) ^ ext.data
                    else:
                        delta = ext.data.copy()
                    delta.flags.writeable = False
                    deltas[key] = (delta, present or real in written)
                    written.add(real)
            plan = _UnitPlan(self, epoch, deltas)
            self._datalog_plans[plan_key] = plan
            for key, real, _ext in flat:
                self._block_entries.setdefault(real, []).append((plan, key))
            self.planned_units += 1
            self.planned_extents += len(deltas)

    # ------------------------------------------------ per-block delta plans
    def plan_block_deltas(
        self, store, block: Hashable, exts: list[Extent]
    ) -> tuple[int, list[tuple[np.ndarray, bool]]]:
        """Packed old-gather + delta precompute for one block's recycle.

        ``exts`` are the disjoint extents (an OVERWRITE map's) one merge
        pass will apply to ``block`` in order.  Returns ``(epoch, plans)``
        with one ``(delta view, expected presence)`` per extent: disjoint
        extents mean the pass's own writes never feed its later reads, so
        every delta is ``store-bytes-now ^ new`` — and the first applied
        extent materializes the block, so every later extent expects it
        present.  The caller must recheck the epoch (and presence) at each
        consuming yield point and fall back per extent on a mismatch.
        """
        total = sum(ext.size for ext in exts)
        present0 = block in store
        self.planned_extents += len(exts)
        if total >= _PACK_AVG_BYTES * len(exts):
            # few large extents: direct per-extent deltas (see
            # plan_datalog_batch — packing would double memory traffic)
            plans: list[tuple[np.ndarray, bool]] = []
            for i, ext in enumerate(exts):
                if present0:
                    delta = store.read_view(block, ext.start, ext.size) ^ ext.data
                else:
                    delta = ext.data.copy()
                delta.flags.writeable = False
                plans.append((delta, present0 or i > 0))
            return self.epoch, plans
        old = np.empty(total, dtype=np.uint8) if present0 else np.zeros(total, dtype=np.uint8)
        new = np.empty(total, dtype=np.uint8)
        metas: list[tuple[int, int, bool]] = []
        pos = 0
        for i, ext in enumerate(exts):
            n = ext.size
            new[pos : pos + n] = ext.data
            if present0:
                old[pos : pos + n] = store.read_view(block, ext.start, n)
            metas.append((pos, n, present0 or i > 0))
            pos += n
        old ^= new
        old.flags.writeable = False
        return self.epoch, [(old[p : p + n], exp) for p, n, exp in metas]

    # ------------------------------------------- parity-delta regeneration
    def stripe_parity_extents(
        self, sources: list[tuple[int, list[Extent]]]
    ) -> list[list[Extent]]:
        """Per-parity-column merged delta extents for one stripe.

        ``sources`` lists ``(data_column, extents)`` for every touched
        data block.  Result: for each parity column ``j`` the list of
        coalesced :class:`Extent` objects over the union intervals of all
        source spans, whose bytes equal XOR-folding per-extent
        ``gf_mul_scalar(coding[j, col], ext.data)`` products into an
        XOR-policy :class:`ExtentMap` one at a time — same table lookups,
        same zero-fill, same boundaries (:func:`union_spans`).  Payloads
        are read-only views into one ``(m, union)`` panel.
        """
        spans = union_spans(
            [(ext.start, ext.end) for _c, exts in sources for ext in exts]
        )
        starts = [s for s, _e in spans]
        offs: dict[int, int] = {}
        total = 0
        for s, e in spans:
            offs[s] = total
            total += e - s
        rs = self.ecfs.rs
        m = rs.m
        coding = rs.coding
        # sparse accumulate: gather each source extent's bytes once per
        # coefficient and XOR into the panel row — the same table lookups
        # as encode_partial over a dense scatter matrix, minus the
        # full-union-row gathers across every zero-filled gap.  When no two
        # source extents overlap (sum of sizes == union size — the common
        # case) every extent is the sole contributor to its region, so the
        # gather lands *directly* in the panel row with no accumulate pass;
        # XOR into zeros is byte-identical to assignment.
        panel = np.zeros((m, total), dtype=np.uint8)
        disjoint = sum(ext.size for _c, exts in sources for ext in exts) == total
        for col, exts in sources:
            coefs = [int(coding[i, int(col)]) for i in range(m)]
            for ext in exts:
                i = bisect_right(starts, ext.start) - 1
                s0 = starts[i]
                p = offs[s0] + (ext.start - s0)
                n = ext.size
                for j, coef in enumerate(coefs):
                    if coef == 0:
                        continue
                    row = panel[j, p : p + n]
                    if coef == 1:
                        if disjoint:
                            row[:] = ext.data
                        else:
                            row ^= ext.data
                    elif disjoint:
                        np.take(gf_mul_row(coef), ext.data, out=row)
                    else:
                        scratch = self._scratch_buf(n)
                        np.take(gf_mul_row(coef), ext.data, out=scratch)
                        row ^= scratch
        panel.flags.writeable = False
        self.parity_panels += 1
        out: list[list[Extent]] = []
        for j in range(self.ecfs.rs.m):
            prow = panel[j]
            out.append(
                [Extent(s, prow[offs[s] : offs[s] + (e - s)]) for s, e in spans]
            )
        return out

    # ---------------------------------------------------------- XOR folds
    def fold_xor(
        self, entries: list[tuple[int, np.ndarray]]
    ) -> list[tuple[int, np.ndarray]]:
        """Coalesce scattered ``(offset, delta)`` XOR entries.

        XOR is associative and commutative per byte, so applying the
        returned maximal disjoint extents yields the same block bytes as
        applying every raw entry in order — with far fewer ``xor_in``
        round trips on dense logs.
        """
        emap = ExtentMap(MergePolicy.XOR)
        for offset, delta in entries:
            emap.insert(offset, delta, own=True)
        self.folds += 1
        return [(e.start, e.data) for e in emap.extents()]

    # -------------------------------------------------------------- stats
    def stats(self) -> dict:
        return {
            "batches": self.batches,
            "planned_units": self.planned_units,
            "planned_extents": self.planned_extents,
            "consumed": self.consumed,
            "fallbacks": self.fallbacks,
            "invalidations": self.invalidations,
            "shadowed": self.shadowed,
            "parity_panels": self.parity_panels,
            "folds": self.folds,
        }
