"""Discrete-event simulation engine.

A compact, dependency-free process-based DES in the style of SimPy: processes
are Python generators that ``yield`` events; the :class:`Environment` advances
a virtual clock along an event heap.  The engine provides the primitives the
cluster model needs:

* :class:`Event` / :class:`Timeout` / :class:`Process` — core event types,
* :class:`AllOf` / :class:`AnyOf` — condition events for fan-out/fan-in,
* :class:`Resource` / :class:`PriorityResource` — queued mutual exclusion used
  to model storage devices and NICs,
* :class:`Store` — producer/consumer queue used for mailboxes and pipelines,
* :class:`Interrupt` — cooperative cancellation (used by failure injection).

The public API is in **seconds** (float); the engine itself runs on an
integer-microsecond clock with ``(t_us, phase, seq)`` event ordering — see
:mod:`repro.sim.core` for the native-µs entry points (``timeout_us``,
``now_us``, ``schedule_at_us``) and the :data:`PHASE_URGENT` /
:data:`PHASE_NORMAL` / :data:`PHASE_LATE` same-time lanes.
"""

from repro.sim.core import (
    PHASE_LATE,
    PHASE_NORMAL,
    PHASE_URGENT,
    AllOf,
    AnyOf,
    Chain,
    CountdownLatch,
    Environment,
    Event,
    Interrupt,
    Lane,
    Process,
    SimulationError,
    Timeout,
    failed_chain,
    spawn_fanout,
)
from repro.sim.resources import PriorityResource, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Chain",
    "CountdownLatch",
    "Environment",
    "Event",
    "Interrupt",
    "Lane",
    "PHASE_LATE",
    "PHASE_NORMAL",
    "PHASE_URGENT",
    "PriorityResource",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
    "failed_chain",
    "spawn_fanout",
]
