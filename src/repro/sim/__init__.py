"""Discrete-event simulation engine.

A compact, dependency-free process-based DES in the style of SimPy: processes
are Python generators that ``yield`` events; the :class:`Environment` advances
a virtual clock along an event heap.  The engine provides the primitives the
cluster model needs:

* :class:`Event` / :class:`Timeout` / :class:`Process` — core event types,
* :class:`AllOf` / :class:`AnyOf` — condition events for fan-out/fan-in,
* :class:`Resource` / :class:`PriorityResource` — queued mutual exclusion used
  to model storage devices and NICs,
* :class:`Store` — producer/consumer queue used for mailboxes and pipelines,
* :class:`Interrupt` — cooperative cancellation (used by failure injection).

All simulated time is in **seconds** (float).
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Lane,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import PriorityResource, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Lane",
    "PriorityResource",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
]
