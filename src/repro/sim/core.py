"""Core of the discrete-event engine: events, processes, environment.

Time representation
-------------------
The clock is an **integer count of microseconds** (``Environment._now``).
Heap entries are ordered by ``(t_us, phase, seq)``:

* ``t_us`` — integer microsecond timestamp (exact arithmetic: hours of
  simulated time accumulate no float error);
* ``phase`` — the same-time lane: :data:`PHASE_URGENT` (0, process
  initialization and interrupts), :data:`PHASE_NORMAL` (1, the default),
  :data:`PHASE_LATE` (2, settle/maintenance wakeups that must sort after
  all normal work at the same tick);
* ``seq`` — a global schedule-order counter breaking ties FIFO.

The public API stays in float **seconds**: ``timeout``/``schedule_at``/
``peek``/``run(until=...)`` convert at the boundary (``round(s * 1e6)``),
so every existing caller keeps working.  Hot internal callers use the
native integer entry points (``timeout_us``, ``now_us``, ``peek_us``,
``schedule_at_us``) and skip the float conversion entirely.

Hot-path notes
--------------
The engine is the profiled bottleneck of every experiment, so the event
loop is written for throughput:

* :meth:`Environment.run` drains **all events at one timestamp per outer
  iteration** (batched same-time drain): the clock is written once per
  distinct ``t_us``, and the callback sweep runs with local bindings and
  no method-call dispatch per event;
* zero-delay events scheduled *during* the active drain (process spawns,
  wakeups, uncontended grants — the majority of all events in a dense
  run) go to per-phase FIFO **bucket deques** instead of the heap: no
  key-tuple allocation, no sift.  Heap entries at the draining timestamp
  always predate bucket entries (anything scheduled mid-drain for the
  current tick is bucketed), so heap-before-bucket within a phase *is*
  ``seq`` order;
* events carry a cancellation flag (:meth:`Event.cancel`): a cancelled
  entry is discarded when reached — no heap surgery, no callbacks, no
  clock movement — which is what makes abandoning a pending
  :class:`Timeout` (interrupted processes, raced waiters) free;
* a process yielding an already-processed event resumes inline without a
  heap round-trip, and resources exploit this by *immediately* finishing
  uncontended grants (see :mod:`repro.sim.resources`).

Tie-break ordering: events scheduled at the same simulated time process in
(phase, schedule-order) order; :meth:`Environment.peek` reports the next
non-cancelled entry's time.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimulationError",
    "Interrupt",
    "Event",
    "Timeout",
    "Lane",
    "Process",
    "AllOf",
    "AnyOf",
    "Environment",
    "PHASE_URGENT",
    "PHASE_NORMAL",
    "PHASE_LATE",
]

_INF = float("inf")

#: same-time lanes: urgent (init/interrupt) < normal < late (settle/maintenance)
PHASE_URGENT = 0
PHASE_NORMAL = 1
PHASE_LATE = 2


class SimulationError(RuntimeError):
    """Raised for engine misuse (double trigger, yielding foreign events...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed by the interrupter.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


# Event lifecycle states.
_PENDING = 0
_TRIGGERED = 1  # scheduled on the heap, not yet processed
_PROCESSED = 2


class Event:
    """A one-shot occurrence on the simulation timeline.

    Events start *pending*; :meth:`succeed` or :meth:`fail` moves them to
    *triggered* (scheduled), and the environment loop then runs their
    callbacks, making them *processed*.  Processes wait on events by yielding
    them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_state", "_defused",
                 "_cancelled", "_seq")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = _PENDING
        self._defused = False
        self._cancelled = False

    # -- inspection ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state >= _PROCESSED

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def ok(self) -> bool:
        if self._state == _PENDING:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        env = self.env
        seq = env._counter
        env._counter = seq + 1
        self._seq = seq
        if env._draining:
            env._bucket1.append(self)
        else:
            heappush(env._heap, (env._now, PHASE_NORMAL, seq, self))
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception; waiters will have it raised."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exc
        self._state = _TRIGGERED
        self.env._schedule(self)
        return self

    def cancel(self) -> None:
        """Discard a scheduled-but-unprocessed event (a heap-surgery-free
        cancellation flag).

        The heap entry stays put; the event loop drops it when reached — no
        callbacks run, the clock does not advance for it, and it never counts
        as a processed event.  Cancelling is only meaningful for events
        nothing waits on (cancel drops any callbacks silently); waiters that
        share an event must deregister first.  Cancelling a pending or
        already-processed event is a no-op.
        """
        if self._state == _TRIGGERED:
            self._cancelled = True

    def trigger(self, event: "Event") -> None:
        """Mirror another event's outcome (used by condition events)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self._defused = True
            self.fail(event._value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        st = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}
        flag = " cancelled" if self._cancelled else ""
        return f"<{type(self).__name__} {st[self._state]}{flag} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation.

    The delay is quantized to the engine's integer-microsecond grid at
    construction; :attr:`delay` reports the quantized value in seconds and
    :attr:`delay_us` the native integer.
    """

    __slots__ = ("_delay_us",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        d_us = round(delay * 1e6)
        # Inlined Event.__init__ + succeed: a Timeout is born triggered.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self._cancelled = False
        self._delay_us = d_us
        self._state = _TRIGGERED
        seq = env._counter
        env._counter = seq + 1
        self._seq = seq
        if d_us == 0 and env._draining:
            env._bucket1.append(self)
        else:
            heappush(env._heap, (env._now + d_us, PHASE_NORMAL, seq, self))

    @property
    def delay(self) -> float:
        return self._delay_us / 1e6

    @property
    def delay_us(self) -> int:
        return self._delay_us


class Initialize(Event):
    """Internal: first resume of a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self._defused = False
        self._cancelled = False
        self._state = _TRIGGERED
        seq = env._counter
        env._counter = seq + 1
        self._seq = seq
        if env._draining:
            env._bucket0.append(self)
        else:
            heappush(env._heap, (env._now, PHASE_URGENT, seq, self))


class Lane:
    """A shared scheduling-lane cell carried by a tree of processes.

    ``priority`` (when set) is a *floor* on the I/O priority of every device
    request issued under the lane: callers that would submit at a stronger
    (numerically lower) priority are demoted to the lane's value, while
    already-weaker requests are untouched.  Processes inherit their parent's
    lane cell at spawn time, so mutating the one cell re-prioritizes the
    whole in-flight tree — this is how a deadline-expired front-end request
    stops competing at FOREGROUND priority mid-execution.
    """

    __slots__ = ("priority",)

    def __init__(self, priority: Optional[int] = None) -> None:
        self.priority = priority

    def floor(self, priority: int) -> int:
        """Apply the lane to a call-site priority (identity when unset)."""
        if self.priority is not None and self.priority > priority:
            return self.priority
        return priority


class Process(Event):
    """A running generator; also an event that fires when the generator ends.

    The process yields :class:`Event` instances; when a yielded event is
    processed the generator is resumed with the event's value (or the event's
    exception is thrown in).
    """

    __slots__ = ("_generator", "_target", "name", "lane")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # lane inheritance: a process spawned from inside another process
        # shares its parent's lane cell (None for top-level processes)
        active = env._active_proc
        self.lane: Optional[Lane] = active.lane if active is not None else None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._state == _PENDING

    def cancel_chain(self, cause: Any = None) -> None:
        """Interrupt the *deepest* process this one is (transitively) waiting
        on, so the exception unwinds through every intermediate frame in
        inner-to-outer order — each frame's ``with``/``finally`` cleanup runs
        and each intermediate process failure is consumed by its waiter.

        Used to cancel abandoned front-end read legs: queued resource claims
        are withdrawn (context managers release them), pending service/net
        timeouts are cancelled, and no frame is left holding a device.  A
        frame waiting on a *condition* (AllOf/AnyOf) is interrupted itself;
        the condition's member processes are not cancelled (partial
        cancellation — simulated work already dispatched to other actors
        runs out, like real RPCs already on the wire).
        """
        proc: "Process" = self
        while isinstance(proc._target, Process) and proc._target.is_alive:
            proc = proc._target
        proc.interrupt(cause)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current sim time.

        The abandoned wait target is deregistered; an abandoned private
        :class:`Timeout` is cancelled outright so it never drains as a stale
        wakeup.
        """
        if self._state != _PENDING or self._generator is None:
            return  # already finished; interrupting a dead process is a no-op
        target = self._target
        if target is not None and target._state != _PROCESSED:
            cbs = target.callbacks
            try:
                cbs.remove(self._resume)
            except ValueError:
                pass
            if not cbs and isinstance(target, Timeout):
                target.cancel()
        self._target = None
        interrupt_ev = Event(self.env)
        interrupt_ev.callbacks.append(self._resume)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev._defused = True
        interrupt_ev._state = _TRIGGERED
        self.env._schedule(interrupt_ev, priority=PHASE_URGENT)

    # Make the process usable directly as a callback.
    def __call__(self, event: Event) -> None:  # pragma: no cover - alias
        self._resume(event)

    def _resume(self, event: Event) -> None:
        gen = self._generator
        if gen is None:
            return  # stale wakeup: the generator already finished
        env = self.env
        env._active_proc = self
        send = gen.send
        throw = gen.throw
        while True:
            try:
                if event._ok:
                    next_ev = send(event._value)
                else:
                    event._defused = True
                    next_ev = throw(event._value)
            except StopIteration as stop:
                self._generator = None
                self._state = _PENDING  # allow succeed() below
                self.succeed(stop.value)
                break
            except BaseException as exc:
                self._generator = None
                self._state = _PENDING
                self.fail(exc)
                break

            try:
                state = next_ev._state
                foreign = next_ev.env is not env
            except AttributeError:
                exc = SimulationError(
                    f"process {self.name!r} yielded non-event {next_ev!r}"
                )
                event = Event(env)
                event._ok = False
                event._value = exc
                continue
            if foreign:
                exc = SimulationError("yielded event belongs to another environment")
                event = Event(env)
                event._ok = False
                event._value = exc
                continue
            if state == _PROCESSED:
                # Already done: resume immediately with its outcome —
                # no event allocation, no heap round-trip.
                event = next_ev
                continue

            next_ev.callbacks.append(self._resume)
            self._target = next_ev
            break
        env._active_proc = None


class _Condition(Event):
    """Base for AllOf/AnyOf: waits on a set of events."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("condition mixes environments")
        for ev in self._events:
            if ev._state == _PROCESSED:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
        if not self._events and self._state == _PENDING:
            self.succeed({})

    def _collect(self) -> dict[Event, Any]:
        return {
            ev: ev._value
            for ev in self._events
            if ev._state >= _TRIGGERED and ev._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every event has fired; value is a dict event→value."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if not event._ok:
            # The condition consumes member failures even after it has
            # already triggered: when two branches fail (e.g. two parity
            # writes hitting one crashed node) the second failure must not
            # escape as an unhandled event and abort the whole simulation.
            event._defused = True
            if self._state == _PENDING:
                self.fail(event._value)
            return
        if self._state != _PENDING:
            return
        self._count += 1
        if self._count == len(self._events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires as soon as one event fires; value is a dict of fired events."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if not event._ok:
            event._defused = True
            if self._state == _PENDING:
                self.fail(event._value)
            return
        if self._state != _PENDING:
            return
        self.succeed(self._collect())


class Environment:
    """The simulation clock and event loop (integer-microsecond time)."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now: int = round(float(initial_time) * 1e6)
        self._heap: list[tuple[int, int, int, Event]] = []
        self._counter = 0
        self._steps = 0
        self._active_proc: Optional[Process] = None
        # Per-phase FIFO buckets for zero-delay events scheduled while the
        # run loop is draining the current timestamp (see module docstring).
        self._bucket0: deque[Event] = deque()
        self._bucket1: deque[Event] = deque()
        self._draining = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds (``now_us / 1e6``)."""
        return self._now / 1e6

    @property
    def now_us(self) -> int:
        """Current simulated time in integer microseconds (native)."""
        return self._now

    @property
    def steps(self) -> int:
        """Events processed so far (cancelled entries do not count)."""
        return self._steps

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_proc

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def timeout_us(
        self, delay_us: int, value: Any = None, phase: int = PHASE_NORMAL
    ) -> Timeout:
        """Native integer-microsecond timeout (no float conversion).

        ``phase`` selects the same-time lane; :data:`PHASE_LATE` wakeups
        sort after all normal work at their tick (used by maintenance
        pacing so background grants never preempt same-instant foreground
        events).
        """
        if delay_us < 0:
            raise ValueError(f"negative timeout delay {delay_us!r}us")
        ev = Timeout.__new__(Timeout)
        ev.env = self
        ev.callbacks = []
        ev._value = value
        ev._ok = True
        ev._defused = False
        ev._cancelled = False
        ev._delay_us = delay_us
        ev._state = _TRIGGERED
        seq = self._counter
        self._counter = seq + 1
        ev._seq = seq
        if delay_us == 0 and self._draining and phase == PHASE_NORMAL:
            self._bucket1.append(ev)
        else:
            heappush(self._heap, (self._now + delay_us, phase, seq, ev))
        return ev

    def timeout_at(self, when: float, value: Any = None) -> Event:
        """An event firing at the *absolute* simulated time ``when`` (the
        :meth:`schedule_at` fast path — no delay arithmetic at the call
        site).  Used by schedulers that hold wall-of-time plans, e.g. the
        fault injector's trigger list."""
        ev = Event(self)
        ev._value = value
        ev._state = _TRIGGERED
        self.schedule_at(ev, when)
        return ev

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        """Float-seconds scheduling shim (``priority`` is the phase lane)."""
        seq = self._counter
        self._counter = seq + 1
        event._seq = seq
        if delay:
            heappush(
                self._heap, (self._now + round(delay * 1e6), priority, seq, event)
            )
        elif self._draining and priority == PHASE_NORMAL:
            self._bucket1.append(event)
        elif self._draining and priority == PHASE_URGENT:
            self._bucket0.append(event)
        else:
            heappush(self._heap, (self._now, priority, seq, event))

    def schedule_at(self, event: Event, when: float, priority: int = 1) -> None:
        """Absolute-time scheduling in float seconds (shim over
        :meth:`schedule_at_us`).

        ``event`` must already be triggered-but-unscheduled by the caller
        (engine-internal use) or be an externally managed event; ``when``
        must not be in the past.
        """
        self.schedule_at_us(event, round(when * 1e6), priority)

    def schedule_at_us(
        self, event: Event, when_us: int, phase: int = PHASE_NORMAL
    ) -> None:
        """Absolute-time scheduling fast path (native integer microseconds)."""
        now = self._now
        if when_us < now:
            raise ValueError(
                f"schedule_at({when_us / 1e6}) is in the past (now={now / 1e6})"
            )
        seq = self._counter
        self._counter = seq + 1
        event._seq = seq
        if when_us == now and self._draining and phase == PHASE_NORMAL:
            self._bucket1.append(event)
        else:
            heappush(self._heap, (when_us, phase, seq, event))

    def peek_us(self) -> Optional[int]:
        """Integer-µs time of the next live entry, or ``None`` if none."""
        b0 = self._bucket0
        while b0 and b0[0]._cancelled:
            b0.popleft()._state = _PROCESSED
        b1 = self._bucket1
        while b1 and b1[0]._cancelled:
            b1.popleft()._state = _PROCESSED
        if b0 or b1:
            return self._now
        heap = self._heap
        while heap and heap[0][3]._cancelled:
            heappop(heap)[3]._state = _PROCESSED
        return heap[0][0] if heap else None

    def peek(self) -> float:
        """Time of the next live (non-cancelled) entry, or +inf if none.

        Cancelled placeholders at the head are discarded here, so ``peek``
        and the run loop agree on what fires next.
        """
        t_us = self.peek_us()
        return _INF if t_us is None else t_us / 1e6

    def step(self) -> None:
        """Process exactly one event (cancelled entries are skipped)."""
        heap = self._heap
        while heap:
            when, _phase, _seq, event = heappop(heap)
            if event._cancelled:
                event._state = _PROCESSED
                continue
            self._now = when
            self._steps += 1
            callbacks = event.callbacks
            event.callbacks = []
            event._state = _PROCESSED
            for cb in callbacks:
                cb(event)
            if not event._ok and not event._defused:
                raise event._value  # unhandled failure
            return
        raise SimulationError("no scheduled events")

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the heap drains, a deadline passes, or an event fires.

        ``until`` may be a time (float seconds), an :class:`Event` (returns
        its value), or ``None`` (drain all events).

        When ``until`` is an event, the loop additionally drains events at
        the stop event's timestamp that were *scheduled before it* (smaller
        ``seq``), in (phase, seq) order, stopping at the first entry that
        is later-scheduled or later-timed.  Work enqueued at the same
        instant ahead of the stop event therefore completes before control
        returns — and :meth:`peek` afterwards reports either a later time or
        a same-time event scheduled after the stop.

        The loop drains all events at one ``t_us`` per outer iteration:
        the clock is set once per distinct timestamp, and zero-delay events
        scheduled by callbacks land in per-phase FIFO buckets that are
        consumed in-place (no heap traffic).  Any bucket leftovers (an
        event-mode stop mid-timestamp, or an unhandled failure) are flushed
        back to the heap on exit, preserving their ``seq`` order.
        """
        heap = self._heap
        b0 = self._bucket0
        b1 = self._bucket1
        stop: Optional[Event] = None
        deadline: Optional[int] = None
        if until is not None:
            if isinstance(until, Event):
                stop = until
                if stop.env is not self:
                    raise SimulationError("`until` belongs to another environment")
                if stop._state == _PROCESSED:
                    if not stop._ok:
                        raise stop._value
                    return stop._value
            else:
                u = float(until)
                if u != _INF:
                    deadline = round(u * 1e6)
                    if deadline < self._now:
                        raise ValueError(
                            f"until={u} is in the past (now={self._now / 1e6})"
                        )
        steps = 0
        limit: Optional[int] = None  # seq bound for the event-mode tie drain
        self._draining = True
        try:
            while True:
                # Scrub cancelled entries so a timestamp with no live event
                # never advances the clock.
                while heap and heap[0][3]._cancelled:
                    heappop(heap)[3]._state = _PROCESSED
                if not heap:
                    if stop is not None:
                        raise SimulationError(
                            "simulation ran out of events before `until` fired"
                        )
                    break
                t = heap[0][0]
                if deadline is not None and t > deadline:
                    break
                self._now = t
                # Batched same-time drain: everything due at t, in
                # (phase, seq) order across the heap and the buckets.
                while True:
                    if b0:
                        # Heap URGENT entries at t predate all bucket ones.
                        if heap and heap[0][0] == t and heap[0][1] == PHASE_URGENT:
                            seq = heap[0][2]
                            src = 0
                        else:
                            seq = b0[0]._seq
                            src = 1
                    elif heap and heap[0][0] == t:
                        h = heap[0]
                        if h[1] <= PHASE_NORMAL or not b1:
                            seq = h[2]
                            src = 0
                        else:  # bucketed NORMAL arrivals beat heap LATE ones
                            seq = b1[0]._seq
                            src = 2
                    elif b1:
                        seq = b1[0]._seq
                        src = 2
                    else:
                        break
                    if limit is not None and seq >= limit:
                        break
                    if src == 0:
                        event = heappop(heap)[3]
                    elif src == 1:
                        event = b0.popleft()
                    else:
                        event = b1.popleft()
                    if event._cancelled:
                        event._state = _PROCESSED
                        continue
                    steps += 1
                    callbacks = event.callbacks
                    event.callbacks = []
                    event._state = _PROCESSED
                    for cb in callbacks:
                        cb(event)
                    if not event._ok and not event._defused:
                        raise event._value  # unhandled failure
                    if stop is not None and stop._state == _PROCESSED:
                        # Tie-break drain: finish same-timestamp events that
                        # were scheduled before the stop event (see
                        # docstring).  An event finished inline (never
                        # scheduled) has no seq stamp and drains nothing.
                        limit = getattr(stop, "_seq", -1)
                        stop = None
                if limit is not None:
                    break
        finally:
            self._draining = False
            if b0 or b1:
                # Flush mid-timestamp leftovers back to the heap (seq order
                # is preserved in the keys).
                now = self._now
                for ev in b0:
                    heappush(heap, (now, PHASE_URGENT, ev._seq, ev))
                b0.clear()
                for ev in b1:
                    heappush(heap, (now, PHASE_NORMAL, ev._seq, ev))
                b1.clear()
            self._steps += steps
        if limit is not None:
            stop_ev = until  # type: ignore[assignment]
            if not stop_ev._ok:
                raise stop_ev._value
            return stop_ev._value
        if deadline is not None:
            self._now = deadline
        return None


# Macro-op batching primitives live in repro.sim.batch; exposed here so the
# latch is importable next to AllOf/AnyOf as part of the engine surface.
# Resolved lazily (PEP 562) — batch imports from this module, so an eager
# import here would be circular when batch is imported first.
_BATCH_EXPORTS = frozenset({"Chain", "CountdownLatch", "failed_chain", "spawn_fanout"})


def __getattr__(name):
    if name in _BATCH_EXPORTS:
        from repro.sim import batch

        return getattr(batch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
