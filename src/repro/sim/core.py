"""Core of the discrete-event engine: events, processes, environment.

Hot-path notes
--------------
The engine is the profiled bottleneck of every experiment (a 1500-op TSUE
run spends ~80% of wall-clock in ``step``/``_resume``/generator sends), so
the event loop is written for throughput:

* :meth:`Environment.run` inlines the step loop with local bindings — one
  heap pop, one state flip, and the callback sweep per event, with no
  method-call dispatch per event;
* scheduling stamps the event (``_tie``) instead of rebuilding bookkeeping
  tuples per event elsewhere; :meth:`Environment.schedule_at` is the
  absolute-time fast path;
* events carry a cancellation flag (:meth:`Event.cancel`): a cancelled
  entry is discarded when popped — no heap surgery, no callbacks, no
  clock movement — which is what makes abandoning a pending
  :class:`Timeout` (interrupted processes, raced waiters) free;
* a process yielding an already-processed event resumes inline without a
  heap round-trip, and resources exploit this by *immediately* finishing
  uncontended grants (see :mod:`repro.sim.resources`).

Tie-break ordering: events scheduled at the same simulated time process in
(priority, schedule-order) order; ``priority=0`` (process initialization,
interrupts) beats the default ``priority=1``.  :meth:`Environment.peek`
reports the next non-cancelled entry's time.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimulationError",
    "Interrupt",
    "Event",
    "Timeout",
    "Lane",
    "Process",
    "AllOf",
    "AnyOf",
    "Environment",
]

_INF = float("inf")


class SimulationError(RuntimeError):
    """Raised for engine misuse (double trigger, yielding foreign events...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed by the interrupter.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


# Event lifecycle states.
_PENDING = 0
_TRIGGERED = 1  # scheduled on the heap, not yet processed
_PROCESSED = 2


class Event:
    """A one-shot occurrence on the simulation timeline.

    Events start *pending*; :meth:`succeed` or :meth:`fail` moves them to
    *triggered* (scheduled), and the environment loop then runs their
    callbacks, making them *processed*.  Processes wait on events by yielding
    them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_state", "_defused",
                 "_cancelled", "_tie")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = _PENDING
        self._defused = False
        self._cancelled = False

    # -- inspection ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state >= _PROCESSED

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def ok(self) -> bool:
        if self._state == _PENDING:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        env = self.env
        tie = env._counter
        env._counter = tie + 1
        self._tie = tie
        heappush(env._heap, (env._now, 1, tie, self))
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception; waiters will have it raised."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exc
        self._state = _TRIGGERED
        self.env._schedule(self)
        return self

    def cancel(self) -> None:
        """Discard a scheduled-but-unprocessed event (a heap-surgery-free
        cancellation flag).

        The heap entry stays put; the event loop drops it when popped — no
        callbacks run, the clock does not advance for it, and it never counts
        as a processed event.  Cancelling is only meaningful for events
        nothing waits on (cancel drops any callbacks silently); waiters that
        share an event must deregister first.  Cancelling a pending or
        already-processed event is a no-op.
        """
        if self._state == _TRIGGERED:
            self._cancelled = True

    def trigger(self, event: "Event") -> None:
        """Mirror another event's outcome (used by condition events)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self._defused = True
            self.fail(event._value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        st = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}
        flag = " cancelled" if self._cancelled else ""
        return f"<{type(self).__name__} {st[self._state]}{flag} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        # Inlined Event.__init__ + succeed: a Timeout is born triggered.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self._cancelled = False
        self.delay = delay
        self._state = _TRIGGERED
        tie = env._counter
        env._counter = tie + 1
        self._tie = tie
        heappush(env._heap, (env._now + delay, 1, tie, self))


class Initialize(Event):
    """Internal: first resume of a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self._defused = False
        self._cancelled = False
        self._state = _TRIGGERED
        tie = env._counter
        env._counter = tie + 1
        self._tie = tie
        heappush(env._heap, (env._now, 0, tie, self))


class Lane:
    """A shared scheduling-lane cell carried by a tree of processes.

    ``priority`` (when set) is a *floor* on the I/O priority of every device
    request issued under the lane: callers that would submit at a stronger
    (numerically lower) priority are demoted to the lane's value, while
    already-weaker requests are untouched.  Processes inherit their parent's
    lane cell at spawn time, so mutating the one cell re-prioritizes the
    whole in-flight tree — this is how a deadline-expired front-end request
    stops competing at FOREGROUND priority mid-execution.
    """

    __slots__ = ("priority",)

    def __init__(self, priority: Optional[int] = None) -> None:
        self.priority = priority

    def floor(self, priority: int) -> int:
        """Apply the lane to a call-site priority (identity when unset)."""
        if self.priority is not None and self.priority > priority:
            return self.priority
        return priority


class Process(Event):
    """A running generator; also an event that fires when the generator ends.

    The process yields :class:`Event` instances; when a yielded event is
    processed the generator is resumed with the event's value (or the event's
    exception is thrown in).
    """

    __slots__ = ("_generator", "_target", "name", "lane")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # lane inheritance: a process spawned from inside another process
        # shares its parent's lane cell (None for top-level processes)
        active = env._active_proc
        self.lane: Optional[Lane] = active.lane if active is not None else None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._state == _PENDING

    def cancel_chain(self, cause: Any = None) -> None:
        """Interrupt the *deepest* process this one is (transitively) waiting
        on, so the exception unwinds through every intermediate frame in
        inner-to-outer order — each frame's ``with``/``finally`` cleanup runs
        and each intermediate process failure is consumed by its waiter.

        Used to cancel abandoned front-end read legs: queued resource claims
        are withdrawn (context managers release them), pending service/net
        timeouts are cancelled, and no frame is left holding a device.  A
        frame waiting on a *condition* (AllOf/AnyOf) is interrupted itself;
        the condition's member processes are not cancelled (partial
        cancellation — simulated work already dispatched to other actors
        runs out, like real RPCs already on the wire).
        """
        proc: "Process" = self
        while isinstance(proc._target, Process) and proc._target.is_alive:
            proc = proc._target
        proc.interrupt(cause)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current sim time.

        The abandoned wait target is deregistered; an abandoned private
        :class:`Timeout` is cancelled outright so it never drains as a stale
        wakeup.
        """
        if self._state != _PENDING or self._generator is None:
            return  # already finished; interrupting a dead process is a no-op
        target = self._target
        if target is not None and target._state != _PROCESSED:
            cbs = target.callbacks
            try:
                cbs.remove(self._resume)
            except ValueError:
                pass
            if not cbs and isinstance(target, Timeout):
                target.cancel()
        self._target = None
        interrupt_ev = Event(self.env)
        interrupt_ev.callbacks.append(self._resume)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev._defused = True
        interrupt_ev._state = _TRIGGERED
        self.env._schedule(interrupt_ev, priority=0)

    # Make the process usable directly as a callback.
    def __call__(self, event: Event) -> None:  # pragma: no cover - alias
        self._resume(event)

    def _resume(self, event: Event) -> None:
        gen = self._generator
        if gen is None:
            return  # stale wakeup: the generator already finished
        env = self.env
        env._active_proc = self
        send = gen.send
        throw = gen.throw
        while True:
            try:
                if event._ok:
                    next_ev = send(event._value)
                else:
                    event._defused = True
                    next_ev = throw(event._value)
            except StopIteration as stop:
                self._generator = None
                self._state = _PENDING  # allow succeed() below
                self.succeed(stop.value)
                break
            except BaseException as exc:
                self._generator = None
                self._state = _PENDING
                self.fail(exc)
                break

            try:
                state = next_ev._state
                foreign = next_ev.env is not env
            except AttributeError:
                exc = SimulationError(
                    f"process {self.name!r} yielded non-event {next_ev!r}"
                )
                event = Event(env)
                event._ok = False
                event._value = exc
                continue
            if foreign:
                exc = SimulationError("yielded event belongs to another environment")
                event = Event(env)
                event._ok = False
                event._value = exc
                continue
            if state == _PROCESSED:
                # Already done: resume immediately with its outcome —
                # no event allocation, no heap round-trip.
                event = next_ev
                continue

            next_ev.callbacks.append(self._resume)
            self._target = next_ev
            break
        env._active_proc = None


class _Condition(Event):
    """Base for AllOf/AnyOf: waits on a set of events."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("condition mixes environments")
        for ev in self._events:
            if ev._state == _PROCESSED:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
        if not self._events and self._state == _PENDING:
            self.succeed({})

    def _collect(self) -> dict[Event, Any]:
        return {
            ev: ev._value
            for ev in self._events
            if ev._state >= _TRIGGERED and ev._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every event has fired; value is a dict event→value."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if not event._ok:
            # The condition consumes member failures even after it has
            # already triggered: when two branches fail (e.g. two parity
            # writes hitting one crashed node) the second failure must not
            # escape as an unhandled event and abort the whole simulation.
            event._defused = True
            if self._state == _PENDING:
                self.fail(event._value)
            return
        if self._state != _PENDING:
            return
        self._count += 1
        if self._count == len(self._events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires as soon as one event fires; value is a dict of fired events."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if not event._ok:
            event._defused = True
            if self._state == _PENDING:
                self.fail(event._value)
            return
        if self._state != _PENDING:
            return
        self.succeed(self._collect())


class Environment:
    """The simulation clock and event loop."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = 0
        self._steps = 0
        self._active_proc: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def steps(self) -> int:
        """Events processed so far (cancelled entries do not count)."""
        return self._steps

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_proc

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def timeout_at(self, when: float, value: Any = None) -> Event:
        """An event firing at the *absolute* simulated time ``when`` (the
        :meth:`schedule_at` fast path — no delay arithmetic at the call
        site).  Used by schedulers that hold wall-of-time plans, e.g. the
        fault injector's trigger list."""
        ev = Event(self)
        ev._value = value
        ev._state = _TRIGGERED
        self.schedule_at(ev, when)
        return ev

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        tie = self._counter
        self._counter = tie + 1
        event._tie = tie
        heappush(self._heap, (self._now + delay, priority, tie, event))

    def schedule_at(self, event: Event, when: float, priority: int = 1) -> None:
        """Absolute-time scheduling fast path (no delay arithmetic).

        ``event`` must already be triggered-but-unscheduled by the caller
        (engine-internal use) or be an externally managed event; ``when``
        must not be in the past.
        """
        if when < self._now:
            raise ValueError(f"schedule_at({when}) is in the past (now={self._now})")
        tie = self._counter
        self._counter = tie + 1
        event._tie = tie
        heappush(self._heap, (when, priority, tie, event))

    def peek(self) -> float:
        """Time of the next live (non-cancelled) entry, or +inf if none.

        Cancelled placeholders at the head are discarded here, so ``peek``
        and the run loop agree on what fires next.
        """
        heap = self._heap
        while heap and heap[0][3]._cancelled:
            heappop(heap)[3]._state = _PROCESSED
        return heap[0][0] if heap else _INF

    def step(self) -> None:
        """Process exactly one event (cancelled entries are skipped)."""
        heap = self._heap
        while heap:
            when, _prio, _tie, event = heappop(heap)
            if event._cancelled:
                event._state = _PROCESSED
                continue
            self._now = when
            self._steps += 1
            callbacks = event.callbacks
            event.callbacks = []
            event._state = _PROCESSED
            for cb in callbacks:
                cb(event)
            if not event._ok and not event._defused:
                raise event._value  # unhandled failure
            return
        raise SimulationError("no scheduled events")

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the heap drains, a deadline passes, or an event fires.

        ``until`` may be a time (float), an :class:`Event` (returns its
        value), or ``None`` (drain all events).

        When ``until`` is an event, the loop additionally drains events at
        the stop event's timestamp that were *scheduled before it* (smaller
        tie-break counter), in heap order, stopping at the first entry that
        is later-scheduled or later-timed.  Work enqueued at the same
        instant ahead of the stop event therefore completes before control
        returns — and :meth:`peek` afterwards reports either a later time or
        a same-time event scheduled after the stop.  (The seed engine
        returned immediately, leaving earlier same-timestamp events pending.)
        """
        heap = self._heap
        steps = 0
        if isinstance(until, Event):
            stop_ev = until
            try:
                while stop_ev._state != _PROCESSED:
                    if not heap:
                        raise SimulationError(
                            "simulation ran out of events before `until` fired"
                        )
                    when, _prio, _tie, event = heappop(heap)
                    if event._cancelled:
                        event._state = _PROCESSED
                        continue
                    self._now = when
                    steps += 1
                    callbacks = event.callbacks
                    event.callbacks = []
                    event._state = _PROCESSED
                    for cb in callbacks:
                        cb(event)
                    if not event._ok and not event._defused:
                        raise event._value
                # Tie-break drain: finish same-timestamp events that were
                # scheduled before the stop event (see docstring).  An event
                # finished inline (never heap-scheduled) has no tie stamp
                # and nothing to drain ahead of it.
                stop_tie = getattr(stop_ev, "_tie", None)
                if stop_tie is None:
                    stop_tie = -1
                now = self._now
                while heap and heap[0][0] == now and heap[0][2] < stop_tie:
                    _when, _prio, _tie, event = heappop(heap)
                    if event._cancelled:
                        event._state = _PROCESSED
                        continue
                    steps += 1
                    callbacks = event.callbacks
                    event.callbacks = []
                    event._state = _PROCESSED
                    for cb in callbacks:
                        cb(event)
                    if not event._ok and not event._defused:
                        raise event._value
            finally:
                self._steps += steps
            if not stop_ev._ok:
                raise stop_ev._value
            return stop_ev._value

        deadline = _INF if until is None else float(until)
        if deadline != _INF and deadline < self._now:
            raise ValueError(f"until={deadline} is in the past (now={self._now})")
        try:
            while heap and heap[0][0] <= deadline:
                when, _prio, _tie, event = heappop(heap)
                if event._cancelled:
                    event._state = _PROCESSED
                    continue
                self._now = when
                steps += 1
                callbacks = event.callbacks
                event.callbacks = []
                event._state = _PROCESSED
                for cb in callbacks:
                    cb(event)
                if not event._ok and not event._defused:
                    raise event._value  # unhandled failure
        finally:
            self._steps += steps
        if deadline != _INF:
            self._now = deadline
        return None
