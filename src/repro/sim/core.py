"""Core of the discrete-event engine: events, processes, environment."""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimulationError",
    "Interrupt",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Environment",
]


class SimulationError(RuntimeError):
    """Raised for engine misuse (double trigger, yielding foreign events...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed by the interrupter.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


# Event lifecycle states.
_PENDING = 0
_TRIGGERED = 1  # scheduled on the heap, not yet processed
_PROCESSED = 2


class Event:
    """A one-shot occurrence on the simulation timeline.

    Events start *pending*; :meth:`succeed` or :meth:`fail` moves them to
    *triggered* (scheduled), and the environment loop then runs their
    callbacks, making them *processed*.  Processes wait on events by yielding
    them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_state", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = _PENDING
        self._defused = False

    # -- inspection ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state >= _PROCESSED

    @property
    def ok(self) -> bool:
        if self._state == _PENDING:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        self.env._schedule(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception; waiters will have it raised."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exc
        self._state = _TRIGGERED
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror another event's outcome (used by condition events)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self._defused = True
            self.fail(event._value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        st = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}
        return f"<{type(self).__name__} {st[self._state]} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        env._schedule(self, delay=delay)


class Initialize(Event):
    """Internal: first resume of a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._state = _TRIGGERED
        env._schedule(self, priority=0)


class Process(Event):
    """A running generator; also an event that fires when the generator ends.

    The process yields :class:`Event` instances; when a yielded event is
    processed the generator is resumed with the event's value (or the event's
    exception is thrown in).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current sim time."""
        if self._state != _PENDING:
            return  # already finished; interrupting a dead process is a no-op
        if self._target is not None and self in self._target.callbacks:
            self._target.callbacks.remove(self)
        interrupt_ev = Event(self.env)
        interrupt_ev.callbacks.append(self._resume)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev._defused = True
        interrupt_ev._state = _TRIGGERED
        self.env._schedule(interrupt_ev, priority=0)

    # Make the process usable directly as a callback.
    def __call__(self, event: Event) -> None:  # pragma: no cover - alias
        self._resume(event)

    def _resume(self, event: Event) -> None:
        self.env._active_proc = self
        while True:
            try:
                if event._ok:
                    next_ev = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_ev = self._generator.throw(event._value)
            except StopIteration as stop:
                self._state = _PENDING  # allow succeed() below
                self.succeed(stop.value)
                break
            except BaseException as exc:
                self._state = _PENDING
                self.fail(exc)
                break

            if not isinstance(next_ev, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded non-event {next_ev!r}"
                )
                event = Event(self.env)
                event._ok = False
                event._value = exc
                continue
            if next_ev.env is not self.env:
                exc = SimulationError("yielded event belongs to another environment")
                event = Event(self.env)
                event._ok = False
                event._value = exc
                continue

            if next_ev._state == _PROCESSED:
                # Already done: resume immediately with its outcome.
                event = next_ev
                continue
            next_ev.callbacks.append(self._resume)
            self._target = next_ev
            break
        self.env._active_proc = None


class _Condition(Event):
    """Base for AllOf/AnyOf: waits on a set of events."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("condition mixes environments")
        for ev in self._events:
            if ev._state == _PROCESSED:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
        if not self._events and self._state == _PENDING:
            self.succeed({})

    def _collect(self) -> dict[Event, Any]:
        return {
            ev: ev._value
            for ev in self._events
            if ev._state >= _TRIGGERED and ev._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every event has fired; value is a dict event→value."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if not event._ok:
            # The condition consumes member failures even after it has
            # already triggered: when two branches fail (e.g. two parity
            # writes hitting one crashed node) the second failure must not
            # escape as an unhandled event and abort the whole simulation.
            event._defused = True
            if self._state == _PENDING:
                self.fail(event._value)
            return
        if self._state != _PENDING:
            return
        self._count += 1
        if self._count == len(self._events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires as soon as one event fires; value is a dict of fired events."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if not event._ok:
            event._defused = True
            if self._state == _PENDING:
                self.fail(event._value)
            return
        if self._state != _PENDING:
            return
        self.succeed(self._collect())


class Environment:
    """The simulation clock and event loop."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        self._active_proc: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_proc

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        heapq.heappush(
            self._heap, (self._now + delay, priority, next(self._counter), event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("no scheduled events")
        when, _prio, _tie, event = heapq.heappop(self._heap)
        self._now = when
        callbacks, event.callbacks = event.callbacks, []
        event._state = _PROCESSED
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            raise event._value  # unhandled failure

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the heap drains, a deadline passes, or an event fires.

        ``until`` may be a time (float), an :class:`Event` (returns its
        value), or ``None`` (drain all events).
        """
        if isinstance(until, Event):
            stop_ev = until
            while not stop_ev.processed:
                if not self._heap:
                    raise SimulationError(
                        "simulation ran out of events before `until` fired"
                    )
                self.step()
            if not stop_ev.ok:
                raise stop_ev.value
            return stop_ev.value
        deadline = float("inf") if until is None else float(until)
        if deadline != float("inf") and deadline < self._now:
            raise ValueError(f"until={deadline} is in the past (now={self._now})")
        while self._heap and self._heap[0][0] <= deadline:
            self.step()
        if deadline != float("inf"):
            self._now = deadline
        return None
