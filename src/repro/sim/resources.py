"""Queued resources for the DES: Resource, PriorityResource, Store.

These model contended hardware: a storage device is a ``Resource`` with
capacity equal to its internal parallelism; a mailbox between actors is a
``Store``.  Requests are events, so processes simply ``yield res.request()``.

Hot-path notes
--------------
An *uncontended* grant (free capacity, empty queue) finishes the request
event immediately at creation — the requester's ``yield`` then resumes
inline via the engine's already-processed fast path, with no heap
round-trip.  Contended grants still go through the heap (FIFO / priority
order is what the queue exists for).  ``release`` no longer constructs a
confirmation event (the seed's ``Release``): nothing in the tree ever
waited on one, and at ~25% of all scheduled events in a profiled TSUE run
they were pure event-loop ballast.  Likewise ``Store.put``/``Store.get``
finish immediately when the queue has room/items.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Optional

from repro.sim.core import _PENDING, _PROCESSED, Environment, Event

__all__ = ["Request", "Resource", "PriorityResource", "Store"]


class Request(Event):
    """A pending claim on a :class:`Resource`; fires when granted.

    Usable as a context manager inside a process::

        with device.request() as req:
            yield req
            ... hold the device ...
    """

    __slots__ = ("resource", "priority", "key")

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        env = resource.env
        self.env = env
        self.callbacks = []
        self._value = None
        self._ok = True
        self._defused = False
        self._cancelled = False
        self.resource = resource
        self.priority = priority
        users = resource.users
        if len(users) < resource.capacity and not resource.queue:
            # Uncontended: grant inline — the requester's `yield` resumes
            # without a heap round-trip.
            users.append(self)
            self._state = _PROCESSED
        else:
            self._state = _PENDING
            tie = resource._tiebreak
            resource._tiebreak = tie + 1
            self.key = (priority, tie)
            heapq.heappush(resource.queue, (self.key, self))

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request."""
        self.resource._cancel(self)


class Resource:
    """FIFO resource with integer capacity."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: list[tuple[tuple[int, int], Request]] = []
        self._tiebreak = 0

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self.users)

    @property
    def queue_len(self) -> int:
        return len(self.queue)

    def queued_below(self, priority: int) -> int:
        """Waiting (not yet granted) requests stronger than ``priority``.

        The lane-aware read-out a background arbiter uses to subordinate its
        grants to foreground pressure: a non-zero count means foreground I/O
        is *backlogged* on this resource (merely-held channels don't count —
        a device serving one foreground command is busy, not saturated).
        """
        return sum(
            1
            for _key, req in self.queue
            if req.priority < priority and not req.triggered
        )

    def request(self, priority: int = 0) -> Request:
        return Request(self, priority)

    def release(self, req: Request) -> None:
        try:
            self.users.remove(req)
        except ValueError:
            self._cancel(req)
            return
        if self.queue:
            self._grant_next()

    def acquire_many(self, count: int) -> Optional[Request]:
        """Grant ``count`` slots as ONE request when wholly uncontended.

        The macro-op fast path: an n-leg fan-out against an idle device takes
        one grant object instead of n Request allocations and n queue checks.
        Returns ``None`` when the resource has any holder, any waiter, or not
        enough free capacity — the caller falls back to per-leg requests so
        queueing order under contention is byte-identical to the legacy path.
        Release with ``release_many``.
        """
        if self.users or self.queue or count > self.capacity:
            return None
        req = Request(self)  # uncontended: granted inline, occupies slot 1
        self.users.extend([req] * (count - 1))  # slots 2..n, same object
        return req

    def release_many(self, req: Request) -> None:
        """Release every slot held by an ``acquire_many`` grant."""
        users = self.users
        if req in users:
            self.users = users = [u for u in users if u is not req]
        if self.queue:
            self._grant_next()

    def _cancel(self, req: Request) -> None:
        for i, (_k, queued) in enumerate(self.queue):
            if queued is req:
                self.queue.pop(i)
                heapq.heapify(self.queue)
                return

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            _key, req = heapq.heappop(self.queue)
            if req.triggered:  # cancelled/failed while queued
                continue
            self.users.append(req)
            req.succeed()


class PriorityResource(Resource):
    """Resource whose queue orders by ``priority`` (lower first), FIFO ties.

    Used to let foreground I/O preempt *queue position* over background
    recycle I/O on the same device (no mid-service preemption; real block
    devices don't abort in-flight commands either).
    """

    def request(self, priority: int = 0) -> Request:
        return Request(self, priority)


class StoreGet(Event):
    __slots__ = ()


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, env: Environment, item: Any) -> None:
        super().__init__(env)
        self.item = item


class Store:
    """Unbounded-or-bounded FIFO queue of Python objects.

    ``put`` blocks only when a finite ``capacity`` is set and reached;
    ``get`` blocks until an item is available.  Immediately satisfiable
    puts/gets finish inline (no heap round-trip); blocked ones are woken
    through the heap in FIFO order.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[StoreGet] = deque()
        self._putters: deque[StorePut] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        ev = StorePut(self.env, item)
        if len(self.items) < self.capacity:
            self.items.append(item)
            ev._state = _PROCESSED
            self._wake_getters()
        else:
            self._putters.append(ev)
        return ev

    def put_front(self, item: Any) -> StorePut:
        """Insert at the head of the queue (recovery requeues use this so an
        interrupted item replays before newer ones — FIFO is preserved)."""
        ev = StorePut(self.env, item)
        if len(self.items) < self.capacity:
            self.items.appendleft(item)
            ev._state = _PROCESSED
            self._wake_getters()
        else:
            self._putters.appendleft(ev)
        return ev

    def get(self) -> StoreGet:
        ev = StoreGet(self.env)
        if self.items:
            ev._value = self.items.popleft()
            ev._state = _PROCESSED
            self._admit_putters()
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking pop; None when empty."""
        if not self.items:
            return None
        item = self.items.popleft()
        self._admit_putters()
        return item

    def _wake_getters(self) -> None:
        while self._getters and self.items:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(self.items.popleft())

    def _admit_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            putter = self._putters.popleft()
            if putter.triggered:
                continue
            self.items.append(putter.item)
            putter.succeed()
            self._wake_getters()
