"""Macro-op fan-out batching: aggregate n sub-op legs into O(1) events.

The classic fan-out idiom —

    jobs = [env.process(leg()) for leg in legs]
    yield env.all_of(jobs)

costs, per leg, a :class:`~repro.sim.core.Process` allocation, an
``Initialize`` event, a process-finish event, and an ``AllOf`` membership
check.  For a k+m stripe fan-out that is ~2(k+m)+1 scheduled events of pure
scaffolding around the legs' actual work.  This module collapses the
scaffolding to a constant three events regardless of width:

* one *starter* event (URGENT lane) that begins every leg back-to-back —
  exactly where the per-leg ``Initialize`` events would have run,
* one *relay* event standing in the queue slot of the final leg's finish
  event,
* the :class:`CountdownLatch` itself, fired by the relay where the ``AllOf``
  condition event would have fired.

Legs run as :class:`_GenDriver` objects — the same send/throw resume loop as
``Process._resume``, minus the event bookkeeping — or as :class:`Chain`
events: flat callback sequences (a batched network transfer, a batched
device I/O) that complete *inline* at their final event's pop, the way a
``yield from`` sub-generator resumes its caller without an extra hop.

Timing equivalence with the per-leg path (the property the determinism
digests pin down):

* the starter drains from ``bucket0`` immediately after the spawning
  process suspends — the exact slot the first ``Initialize`` occupied — and
  runs the legs' first segments consecutively, as consecutive ``Initialize``
  pops did;
* every mid-leg event carries the driver's resume callback in the same
  queue position the leg process's would have had;
* the latch fires two same-tick hops after the final leg's last action
  (relay, then latch) — matching finish-event + ``AllOf`` in the per-leg
  path; leg failures reach the waiter two hops after the failing action,
  and later failures are swallowed exactly as a triggered ``AllOf`` defuses
  its members.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.core import (
    _PENDING,
    _PROCESSED,
    PHASE_URGENT,
    Environment,
    Event,
    Lane,
    SimulationError,
)

__all__ = ["Chain", "CountdownLatch", "drive_chain", "failed_chain", "spawn_fanout"]


class _LaneCtx:
    """Minimal stand-in for the active process while batched code runs from
    an event callback: everything that inspects ``env.active_process`` in
    this tree reads only ``.lane`` (lane-floor priority, lane inheritance)."""

    __slots__ = ("lane",)

    def __init__(self, lane: Optional[Lane]) -> None:
        self.lane = lane


class Chain(Event):
    """An event completed *inline* by a flat callback sequence.

    Batched primitives (``NetworkFabric.transfer_chain``,
    ``StorageDevice.submit_chain``) hand one of these to the caller, then
    drive it through plain callbacks on their internal timeouts.  The final
    segment calls :meth:`finish` (or :meth:`finish_fail`), which runs the
    waiter's callbacks immediately — zero extra queue hops, exactly when a
    ``yield from`` of the equivalent generator would have resumed the
    caller.  A chain that completes before anyone waits on it is simply an
    already-``_PROCESSED`` event: the engine's inline fast path picks it up.
    """

    __slots__ = ()

    def finish(self, value: Any = None) -> None:
        if self._state >= _PROCESSED:
            raise SimulationError(f"{self!r} already finished")
        self._ok = True
        self._value = value
        self._state = _PROCESSED
        cbs = self.callbacks
        if cbs:
            self.callbacks = []
            for cb in cbs:
                cb(self)

    def finish_fail(self, exc: BaseException) -> None:
        if self._state >= _PROCESSED:
            raise SimulationError(f"{self!r} already finished")
        self._ok = False
        self._value = exc
        self._state = _PROCESSED
        cbs = self.callbacks
        if cbs:
            self.callbacks = []
            for cb in cbs:
                cb(self)
        # With no waiter registered yet the failure is delivered through the
        # engine's already-processed fast path when the creator yields the
        # chain; a chain abandoned *without* ever being waited on must be
        # routed to a latch by its creator instead.


def failed_chain(env: Environment, exc: BaseException) -> Chain:
    """A chain born failed — lets flat compositions report a synchronous
    error (dead node, bad range) through the normal waiter path instead of
    raising out of an event callback."""
    chain = Chain(env)
    chain._ok = False
    chain._value = exc
    chain._state = _PROCESSED
    return chain


class CountdownLatch(Event):
    """``all_of_n`` without per-leg processes: fires when ``n`` legs finish.

    Legs report through :meth:`leg_done` / :meth:`leg_failed`; completion
    and first-failure each reach the waiter via one relay event + the latch
    event itself — the same two same-tick hops as finish-event + ``AllOf``
    on the per-leg path.  Failures after the first (or after success) are
    swallowed, as a triggered ``AllOf`` defuses late member failures.
    """

    __slots__ = ("_remaining", "_settling")

    def __init__(self, env: Environment, count: int) -> None:
        super().__init__(env)
        self._remaining = count
        self._settling = False

    def leg_done(self) -> None:
        self._remaining -= 1
        if self._remaining == 0 and not self._settling:
            self._settling = True
            relay = Event(self.env)
            relay.callbacks.append(self._relay_ok)
            relay._state = 1  # _TRIGGERED
            self.env._schedule(relay)

    def leg_failed(self, exc: BaseException) -> None:
        self._remaining -= 1
        if self._settling:
            return  # late failure: defused, like a triggered AllOf member
        self._settling = True
        relay = Event(self.env)
        relay.callbacks.append(self._relay_fail)
        relay._state = 1  # _TRIGGERED
        relay._value = exc
        self.env._schedule(relay)

    def _relay_ok(self, _relay: Event) -> None:
        if self._state == _PENDING:
            self.succeed()

    def _relay_fail(self, relay: Event) -> None:
        if self._state == _PENDING:
            self.fail(relay._value)

    def count_event(self, leg: Event) -> None:
        """Count a pending event (e.g. an in-flight :class:`Chain`) as one
        of this latch's legs."""
        leg.callbacks.append(self._on_leg)

    def _on_leg(self, ev: Event) -> None:
        if ev._ok:
            self.leg_done()
        else:
            ev._defused = True
            self.leg_failed(ev._value)


class _DriverBase:
    """``Process._resume``'s send/throw loop minus the process scaffolding:
    no Initialize event, no finish event — completion reported inline via
    :meth:`_on_done` / :meth:`_on_fail`.  Masquerades as the active process
    during resume so lane-floor priority and child-process lane inheritance
    keep working inside the generator."""

    __slots__ = ("env", "_generator", "_sink", "lane", "name")

    def __init__(
        self,
        env: Environment,
        generator: Generator[Event, Any, Any],
        sink: Event,
        lane: Optional[Lane],
    ) -> None:
        self.env = env
        self._generator = generator
        self._sink = sink
        self.lane = lane
        self.name = getattr(generator, "__name__", "leg")

    def _on_done(self, value: Any) -> None:
        raise NotImplementedError

    def _on_fail(self, exc: BaseException) -> None:
        raise NotImplementedError

    def _resume(self, event: Event) -> None:
        gen = self._generator
        if gen is None:
            return  # stale wakeup: the leg already finished
        env = self.env
        prev = env._active_proc
        env._active_proc = self
        send = gen.send
        throw = gen.throw
        while True:
            try:
                if event._ok:
                    next_ev = send(event._value)
                else:
                    event._defused = True
                    next_ev = throw(event._value)
            except StopIteration as stop:
                self._generator = None
                self._on_done(stop.value)
                break
            except BaseException as exc:
                self._generator = None
                self._on_fail(exc)
                break

            try:
                state = next_ev._state
                foreign = next_ev.env is not env
            except AttributeError:
                exc = SimulationError(
                    f"leg {self.name!r} yielded non-event {next_ev!r}"
                )
                event = Event(env)
                event._ok = False
                event._value = exc
                continue
            if foreign:
                exc = SimulationError("yielded event belongs to another environment")
                event = Event(env)
                event._ok = False
                event._value = exc
                continue
            if state == _PROCESSED:
                event = next_ev
                continue

            next_ev.callbacks.append(self._resume)
            break
        env._active_proc = prev


class _GenDriver(_DriverBase):
    """Drives one fan-out leg, reporting into a :class:`CountdownLatch`
    (the leg's return value is discarded, as ``AllOf`` callers discard the
    condition dict)."""

    __slots__ = ()

    def _on_done(self, value: Any) -> None:
        self._sink.leg_done()

    def _on_fail(self, exc: BaseException) -> None:
        self._sink.leg_failed(exc)


#: shared kick-off value for a leg's first resume (ok, value None)
def _make_bootstrap(env: Environment) -> Event:
    ev = Event(env)
    ev._state = _PROCESSED
    return ev


class _ChainDriver(_DriverBase):
    """Runs a legacy generator to completion, reporting into a
    :class:`Chain` — the fallback that lets chain entry points keep exact
    legacy behavior on rare paths (link faults, partitions, stuck disks)
    without duplicating that logic as callbacks."""

    __slots__ = ()

    def _on_done(self, value: Any) -> None:
        self._sink.finish(value)

    def _on_fail(self, exc: BaseException) -> None:
        self._sink.finish_fail(exc)


def drive_chain(env: Environment, generator) -> Chain:
    """Run ``generator`` as a :class:`Chain`, starting its first segment
    inline — timing-equivalent to ``yield from generator`` at this point in
    the caller (first segment at the current tick, completion resuming the
    waiter inline, return value as the chain's value)."""
    chain = Chain(env)
    active = env._active_proc
    lane = active.lane if active is not None else None
    driver = _ChainDriver(env, generator, chain, lane)
    driver._resume(_make_bootstrap(env))
    return chain


def spawn_fanout(
    env: Environment,
    legs: list,
    lane: Optional[Lane] = ...,
) -> CountdownLatch:
    """Run ``legs`` concurrently; returns a latch that fires when all are
    done — the batched replacement for ``all_of([env.process(leg), ...])``.

    Each leg is a generator, an :class:`Event`/:class:`Chain` already in
    flight, or a zero-argument callable returning one of those (evaluated
    by the starter event, in list order — exactly where the per-leg
    ``Initialize`` events would have begun each leg).

    ``lane`` defaults to the spawning process's lane cell, matching process
    lane inheritance.
    """
    latch = CountdownLatch(env, len(legs))
    if not legs:
        # all_of([]) succeeds at construction and reaches the waiter one
        # hop later; mirror that
        latch.succeed()
        return latch
    if lane is ...:
        active = env._active_proc
        lane = active.lane if active is not None else None

    def _start(_starter: Event) -> None:
        bootstrap = _make_bootstrap(env)
        lane_ctx = _LaneCtx(lane)
        for leg in legs:
            if callable(leg) and not hasattr(leg, "send"):
                # evaluated under a lane stand-in so chain builders (which
                # read env.active_process.lane for priority floors) see the
                # spawning process's lane, as a leg process would have
                prev = env._active_proc
                env._active_proc = lane_ctx
                try:
                    leg = leg()
                except BaseException as exc:
                    # a first-segment raise fails the leg, as it would a
                    # per-leg process
                    latch.leg_failed(exc)
                    continue
                finally:
                    env._active_proc = prev
            if hasattr(leg, "send"):
                _GenDriver(env, leg, latch, lane)._resume(bootstrap)
            else:  # an Event/Chain already representing the leg's completion
                state = leg._state
                if state >= _PROCESSED:
                    if leg._ok:
                        latch.leg_done()
                    else:
                        leg._defused = True
                        latch.leg_failed(leg._value)
                else:
                    latch.count_event(leg)

    starter = Event(env)
    starter.callbacks.append(_start)
    starter._state = 1  # _TRIGGERED
    env._schedule(starter, priority=PHASE_URGENT)
    return latch
