"""Table-driven steady-state write schedules.

PR 8's profile left the request path's cost spread across generator
resumes at ~2µs each, 4–6 frames deep per write: client → dispatch →
``handle_update`` → persist legs.  When nothing contends — no armed
fault, no partition, no frozen stripe, no slow/stuck device — every one
of those frames makes exactly one decision per event, and the decision is
always the same.  This module compiles that common case once per
(method, k, m) shape into a flat **slot table** covering the whole
request — admission → payload ship → method body → ack — and executes it
with a single slotted driver (:class:`ScheduleRun`) that walks the table
with inline event completion, reusing PR 8's :class:`~repro.sim.batch.Chain`
and :class:`~repro.sim.batch.CountdownLatch` machinery.  No per-request
``Process``, no ``Initialize``/finish bookkeeping for the dispatch tower,
no tower re-traversal per event.

Equivalence contract (the determinism digests pin it down):

* **Admission is optimistic but checked.**  :meth:`ScheduleEngine.try_update`
  only accepts a request when the cluster is *steady*: no failed OSD, the
  network fabric quiescent (no partitions, no armed link faults), the
  primary's device quiescent (no slow/stuck fault), the stripe not frozen.
  Anything else declines, and the request runs the legacy generator path
  untouched.
* **Compile-out points re-validate.**  The slot right after the payload
  ship re-checks what the legacy remap-chase loop would have checked
  (stripe frozen?  primary re-homed?) and **bails out mid-request** to
  the factored legacy tail (:func:`repro.frontend.ops.finish_update`) on
  any mismatch — driven to completion by the same send/throw loop, so
  topology churn landing mid-flight keeps byte-identical behavior.
* **Every scheduled event matches the legacy path.**  The table's hops
  mimic the two bookkeeping events the dispatch ``Process`` contributed
  (``Initialize`` in the URGENT lane; the process-finish event in the
  NORMAL lane) at the same ticks with the same phases, method bodies run
  the *identical* leg generators through the identical
  :func:`~repro.sim.batch.spawn_fanout` calls, and chains fall back to
  generator drivers under mid-request faults exactly as PR 8's batched
  primitives do.  A schedules-on run and a schedules-off run produce the
  same heap, in the same order, with the same sequence numbers.

The generator path survives as the equivalence oracle
(``ClusterConfig.request_schedules``, default on, mirrors how
``macro_batching`` kept the per-leg path), and the engine is inert unless
macro-op batching is also on: the slot tables fan out through
``spawn_fanout``, which is the batched event structure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.batch import Chain, _make_bootstrap, spawn_fanout
from repro.sim.core import (
    _PROCESSED,
    PHASE_URGENT,
    Event,
    Lane,
    SimulationError,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.client import UpdateOp
    from repro.cluster.ecfs import ECFS
    from repro.update.base import UpdateMethod

__all__ = [
    "ScheduleEngine",
    "ScheduleRun",
    "chain_slot",
    "effect_slot",
    "fanout_slot",
    "gen_slot",
]

# --------------------------------------------------------------- slot table
#
# A compiled schedule is a tuple of (opcode, fn) slots.  ``fn`` takes the
# running ScheduleRun; what it returns depends on the opcode:
#
#   _EFFECT   synchronous side effect, returns nothing; zero events
#   _CHAIN    returns a Chain already in flight (batched transfer/IO);
#             the run continues inline at its finish
#   _GEN      returns a generator, driven to completion by the run's own
#             send/throw loop (Process._resume minus the process); its
#             return value lands in run.val for the next slot
#   _FANOUT   returns the leg list for spawn_fanout (the identical leg
#             generators the legacy batched path spawns); an empty list
#             skips inline, matching the legacy ``if legs:`` guard
#   _CHECK    compile-out validation: returns None to keep going, or the
#             legacy-tail generator to bail out to
#   _UHOP     one URGENT-lane queue hop — the slot the dispatch Process's
#             Initialize event occupied
#   _HOP      one NORMAL-lane queue hop — the slot its finish event occupied
#   _DONE     terminal bookkeeping; finishes run.done

_EFFECT = 0
_CHAIN = 1
_GEN = 2
_FANOUT = 3
_CHECK = 4
_UHOP = 5
_HOP = 6
_DONE = 7

#: run.pc sentinel: the run has bailed out and is driving the legacy tail
_BAILED = -1


def effect_slot(fn: Callable) -> tuple:
    """Slot: synchronous side effect ``fn(run)`` (no events)."""
    return (_EFFECT, fn)


def chain_slot(fn: Callable) -> tuple:
    """Slot: ``fn(run)`` returns an in-flight :class:`Chain` to wait on."""
    return (_CHAIN, fn)


def gen_slot(fn: Callable) -> tuple:
    """Slot: ``fn(run)`` returns a generator, driven inline to completion
    (its return value becomes ``run.val``)."""
    return (_GEN, fn)


def fanout_slot(fn: Callable) -> tuple:
    """Slot: ``fn(run)`` returns the fan-out leg list for
    :func:`~repro.sim.batch.spawn_fanout` (empty list: skipped inline)."""
    return (_FANOUT, fn)


# ------------------------------------------------------------ spine slots
#
# The method-independent part of every compiled schedule: what
# frontend.ops.execute_update does around handle_update, slot for slot.


def _slot_send(run: "ScheduleRun") -> Chain:
    ecfs = run.ecfs
    op = run.op
    return ecfs.net.transfer_chain(
        run.client, run.primary.name, op.size + ecfs.config.header_bytes
    )


def _slot_recheck(run: "ScheduleRun"):
    # the compile-out point: what the legacy remap-chase loop checks right
    # after the payload lands on the primary.  Any mismatch bails to the
    # factored legacy tail, which re-runs this loop with full generality.
    ecfs = run.ecfs
    block = run.op.block
    if (
        ecfs.stripe_frozen(block.file_id, block.stripe)
        or ecfs.osd_hosting(block) is not run.primary
    ):
        return run.engine._tail(ecfs, run.client, run.op, run.primary)
    return None


def _slot_begin(run: "ScheduleRun") -> None:
    run.ecfs.note_update_begin(run.op.block)
    run.began = True


def _slot_end(run: "ScheduleRun") -> None:
    run.began = False
    run.ecfs.note_update_end(run.op.block)


def _slot_ack(run: "ScheduleRun") -> Chain:
    ecfs = run.ecfs
    return ecfs.net.transfer_chain(
        run.primary.name, run.client, ecfs.config.ack_bytes
    )


def _slot_done(run: "ScheduleRun") -> None:
    ecfs = run.ecfs
    latency = ecfs.env.now - run.op.issued_at
    ecfs.metrics.record_update(latency, run.op.size)
    run.engine.completed += 1
    run.done.finish(latency)


#: payload ship, then validate, then the two bookkeeping events the update
#: Process contributed: Initialize (URGENT) before the method body ...
_SPINE_HEAD = (
    (_CHAIN, _slot_send),
    (_CHECK, _slot_recheck),
    (_EFFECT, _slot_begin),
    (_UHOP, None),
)

#: ... and the process-finish event (NORMAL) after it, then ack + record.
_SPINE_TAIL = (
    (_HOP, None),
    (_EFFECT, _slot_end),
    (_CHAIN, _slot_ack),
    (_DONE, _slot_done),
)


# ---------------------------------------------------------------- executor
class ScheduleRun:
    """One request walking a compiled slot table.

    Usable directly as an event callback (like ``Process``); masquerades
    as the active process while advancing so lane-floor priority and child
    lane inheritance keep working inside slot code, exactly as the batch
    drivers do.
    """

    __slots__ = (
        "engine",
        "ecfs",
        "env",
        "client",
        "op",
        "primary",
        "lane",
        "done",
        "plan",
        "pc",
        "val",
        "ctx",
        "began",
        "_gen",
    )

    def __init__(
        self,
        engine: "ScheduleEngine",
        client: str,
        op: "UpdateOp",
        primary,
        plan: tuple,
        lane: Optional[Lane],
    ) -> None:
        self.engine = engine
        self.ecfs = engine.ecfs
        self.env = engine.env
        self.client = client
        self.op = op
        self.primary = primary
        self.lane = lane
        self.done = Chain(engine.env)
        self.plan = plan
        self.pc = 0
        self.val: Any = None
        self.ctx: dict = {}
        self.began = False
        self._gen = None

    # event-callback protocol: the run itself is appended to callbacks
    def __call__(self, event: Event) -> None:
        self._step(event)

    def _step(self, event: Optional[Event]) -> None:
        env = self.env
        prev = env._active_proc
        env._active_proc = self
        try:
            self._advance(event)
        finally:
            env._active_proc = prev

    def _advance(self, event: Optional[Event]) -> None:
        env = self.env
        plan = self.plan
        while True:
            gen = self._gen
            if gen is not None:
                # drive the active generator slot — Process._resume's
                # send/throw loop, reporting completion inline
                if event is None:
                    event = _make_bootstrap(env)
                send = gen.send
                throw = gen.throw
                while True:
                    try:
                        if event._ok:
                            nxt = send(event._value)
                        else:
                            event._defused = True
                            nxt = throw(event._value)
                    except StopIteration as stop:
                        self._gen = None
                        self.val = stop.value
                        break
                    except BaseException as exc:
                        self._gen = None
                        self._fail(exc)
                        return
                    try:
                        state = nxt._state
                        foreign = nxt.env is not env
                    except AttributeError:
                        event = Event(env)
                        event._ok = False
                        event._value = SimulationError(
                            f"schedule slot for op {self.op.op_id} "
                            f"yielded non-event {nxt!r}"
                        )
                        continue
                    if foreign:
                        event = Event(env)
                        event._ok = False
                        event._value = SimulationError(
                            "yielded event belongs to another environment"
                        )
                        continue
                    if state == _PROCESSED:
                        event = nxt
                        continue
                    nxt.callbacks.append(self)
                    return
                if self.pc == _BAILED:
                    # the legacy tail ran to completion: its return value
                    # is the request latency, already recorded by the tail
                    self.done.finish(self.val)
                    return
            elif event is not None:
                if not event._ok:
                    event._defused = True
                    self._fail(event._value)
                    return
                self.val = event._value

            event = None
            opcode, fn = plan[self.pc]
            self.pc += 1
            try:
                if opcode == _EFFECT:
                    fn(self)
                elif opcode == _CHAIN:
                    ch = fn(self)
                    state = ch._state
                    if state >= _PROCESSED:
                        if ch._ok:
                            self.val = ch._value
                            continue
                        ch._defused = True
                        self._fail(ch._value)
                        return
                    ch.callbacks.append(self)
                    return
                elif opcode == _GEN:
                    self._gen = fn(self)
                elif opcode == _FANOUT:
                    legs = fn(self)
                    if not legs:
                        continue
                    latch = spawn_fanout(env, legs, lane=self.lane)
                    latch.callbacks.append(self)
                    return
                elif opcode == _CHECK:
                    remainder = fn(self)
                    if remainder is None:
                        continue
                    self.engine.bails += 1
                    self._gen = remainder
                    self.pc = _BAILED
                elif opcode == _UHOP:
                    hop = Event(env)
                    hop.callbacks.append(self)
                    hop._state = 1  # _TRIGGERED
                    env._schedule(hop, priority=PHASE_URGENT)
                    return
                elif opcode == _HOP:
                    hop = Event(env)
                    hop.callbacks.append(self)
                    hop._state = 1  # _TRIGGERED
                    env._schedule(hop)
                    return
                else:  # _DONE
                    fn(self)
                    return
            except BaseException as exc:
                self._fail(exc)
                return

    def _fail(self, exc: BaseException) -> None:
        # before note_update_begin (or after the bail-out handed the
        # request's bookkeeping to the legacy tail): deliver inline, like
        # an exception propagating out of the dispatch generator
        if not self.began:
            self.done.finish_fail(exc)
            return
        # mid-method failure: the legacy path delivers it through the
        # update Process's finish event — one NORMAL-lane hop — and runs
        # note_update_end at that pop (the dispatch frame's ``finally``)
        relay = Event(self.env)
        relay._value = exc
        relay.callbacks.append(self._fail_hop)
        relay._state = 1  # _TRIGGERED
        self.env._schedule(relay)

    def _fail_hop(self, relay: Event) -> None:
        self.began = False
        self.ecfs.note_update_end(self.op.block)
        self.done.finish_fail(relay._value)


# ------------------------------------------------------------------ engine
_UNSET = object()


class ScheduleEngine:
    """Per-cluster schedule compiler + admission control + counters.

    Attached as ``ecfs.schedules`` when both ``request_schedules`` and
    ``macro_batching`` are on; ``None`` otherwise (the slot tables fan out
    through the batched event structure, so without batching the legacy
    generator path *is* the steady-state path).
    """

    __slots__ = (
        "ecfs",
        "env",
        "attempts",
        "hits",
        "bails",
        "completed",
        "_plans",
        "_fault_known",
        "_fault_free",
        "_tail",
    )

    def __init__(self, ecfs: "ECFS") -> None:
        # lazy import: frontend.ops is a consumer of this module's fast
        # path, so the tail is resolved at engine construction instead of
        # module import
        from repro.frontend.ops import finish_update

        self.ecfs = ecfs
        self.env = ecfs.env
        self._tail = finish_update
        self._plans: dict = {}
        self.attempts = 0
        self.hits = 0
        self.bails = 0
        self.completed = 0
        # any-failed-OSD probe, cached until topology churn invalidates it;
        # staleness is only ever conservative (an OSD restart leaves the
        # fast path off until note_churn re-arms the probe)
        self._fault_known = False
        self._fault_free = False

    # ------------------------------------------------------------ admission
    def try_update(self, client: str, op: "UpdateOp") -> Optional[Chain]:
        """Admit one update onto the compiled fast path.

        Returns the request's completion :class:`Chain` (value: latency
        seconds), or ``None`` to decline — the caller then runs the legacy
        generator path, untouched.
        """
        self.attempts += 1
        ecfs = self.ecfs
        block = op.block
        if ecfs.stripe_frozen(block.file_id, block.stripe):
            return None
        if not self._fault_known:
            self._fault_free = not any(osd.failed for osd in ecfs.osds)
            self._fault_known = True
        if not (self._fault_free and ecfs.net.quiescent):
            return None
        primary = ecfs.osd_hosting(block)
        if not primary.device.quiescent:
            return None
        plan = self._plan_for(ecfs.method)
        if plan is None:
            return None
        self.hits += 1
        active = self.env._active_proc
        lane = active.lane if active is not None else None
        run = ScheduleRun(self, client, op, primary, plan, lane)
        run._step(None)
        return run.done

    def note_churn(self) -> None:
        """Topology changed (OSD failed/restarted/joined/left): re-probe
        cluster steadiness on the next admission."""
        self._fault_known = False

    # ---------------------------------------------------------- compilation
    def _plan_for(self, method: "UpdateMethod") -> Optional[tuple]:
        key = (method.name, self.ecfs.rs.k, self.ecfs.rs.m)
        plan = self._plans.get(key, _UNSET)
        if plan is _UNSET:
            slots = method.schedule_plan()
            plan = None if slots is None else _SPINE_HEAD + tuple(slots) + _SPINE_TAIL
            self._plans[key] = plan
        return plan

    # -------------------------------------------------------------- counters
    @property
    def hit_rate(self) -> float:
        """Fraction of update dispatches admitted onto the fast path."""
        return self.hits / self.attempts if self.attempts else 0.0

    def stats(self) -> dict:
        return {
            "attempts": self.attempts,
            "hits": self.hits,
            "bails": self.bails,
            "completed": self.completed,
            "hit_rate": self.hit_rate,
        }
