"""Shared keyed reference counter.

The cluster model counts overlapping holds on a key in three places —
reconstruction freezes (:class:`~repro.cluster.ecfs.ECFS`), in-flight
client updates, and mid-application log content
(:class:`~repro.update.base.UpdateMethod`).  Each used to hand-roll the
same get/incr/pop dict dance; :class:`RefCounter` is the one shared
implementation, with an ``on_zero`` hook so the last release of a key can
wake event-based waiters (no busy-polling for "is it free yet?").
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterator, Optional

__all__ = ["RefCounter"]


class RefCounter:
    """Count overlapping holds per key; fire ``on_zero(key)`` on last release.

    Keys with a zero count are absent: ``key in rc`` means "held",
    ``iter(rc)`` yields held keys, ``bool(rc)`` is "anything held".
    """

    __slots__ = ("_counts", "_on_zero")

    def __init__(
        self, on_zero: Optional[Callable[[Hashable], None]] = None
    ) -> None:
        self._counts: dict[Hashable, int] = {}
        self._on_zero = on_zero

    def incr(self, key: Hashable, n: int = 1) -> int:
        """Add ``n`` holds on ``key``; returns the new count."""
        count = self._counts.get(key, 0) + n
        self._counts[key] = count
        return count

    def decr(self, key: Hashable, n: int = 1) -> int:
        """Release ``n`` holds; at zero the key is dropped and ``on_zero``
        fires.  Over-release clamps to zero (matching the seed's hand-rolled
        pattern, where a stray decrement must not underflow)."""
        left = self._counts.get(key, 0) - n
        if left > 0:
            self._counts[key] = left
            return left
        self._counts.pop(key, None)
        if self._on_zero is not None:
            self._on_zero(key)
        return 0

    def count(self, key: Hashable) -> int:
        return self._counts.get(key, 0)

    def clear(self) -> None:
        self._counts.clear()

    def keys(self):
        return self._counts.keys()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._counts

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def __bool__(self) -> bool:
        return bool(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RefCounter({self._counts!r})"
