"""Shared constants, unit helpers, and error types."""

from repro.common.errors import (
    ConfigError,
    DecodeError,
    IntegrityError,
    ReproError,
)
from repro.common.refcount import RefCounter
from repro.common.units import (
    GB,
    GiB,
    KB,
    KiB,
    MB,
    MiB,
    Gbps,
    fmt_bytes,
    fmt_time,
)

__all__ = [
    "ConfigError",
    "DecodeError",
    "IntegrityError",
    "RefCounter",
    "ReproError",
    "KB",
    "MB",
    "GB",
    "KiB",
    "MiB",
    "GiB",
    "Gbps",
    "fmt_bytes",
    "fmt_time",
]
