"""Exception hierarchy for the repro package."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "DecodeError",
    "IntegrityError",
    "UnavailableError",
    "is_retryable",
]


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError, ValueError):
    """Invalid configuration (bad RS parameters, negative sizes, ...)."""


class DecodeError(ReproError):
    """Erasure decoding impossible (too many erasures / singular matrix).

    Retryable from a client's point of view: erasures heal (recovery
    rebuilds, partitions mend), after which the same decode succeeds.
    """


class IntegrityError(ReproError):
    """A consistency check failed (stripe does not verify, stale data...)."""


class UnavailableError(IntegrityError):
    """A node/service the request needs is currently down.

    Subclasses :class:`IntegrityError` so every existing ``except
    IntegrityError`` fault-tolerance path still catches it, while letting
    the front-end retry layer distinguish *transient* unavailability
    (retry after backoff — recovery or a restart heals it) from a true
    consistency violation (fatal)."""


def is_retryable(exc: BaseException) -> bool:
    """Whether the front-end may retry the request after this failure."""
    return isinstance(exc, (UnavailableError, DecodeError))
