"""Exception hierarchy for the repro package."""

from __future__ import annotations

__all__ = ["ReproError", "ConfigError", "DecodeError", "IntegrityError"]


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError, ValueError):
    """Invalid configuration (bad RS parameters, negative sizes, ...)."""


class DecodeError(ReproError):
    """Erasure decoding impossible (too many erasures / singular matrix)."""


class IntegrityError(ReproError):
    """A consistency check failed (stripe does not verify, stale data...)."""
