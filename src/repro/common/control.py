"""Shared control-loop arithmetic.

One implementation of the AIMD step used by both pressure controllers —
the background scheduler's SLO governor (token scale) and the adaptive
admission controller (tenant rate scale) — so a semantics fix reaches
both.  What *differs* between them stays at the call sites: how a breach
is gated (the governor ignores breaches while the maintenance plane is
quiet) and what the scale multiplies.
"""

from __future__ import annotations

__all__ = ["aimd_step", "validate_aimd"]


def aimd_step(
    scale: float,
    breached: bool,
    *,
    backoff: float,
    recover: float,
    floor: float,
    ceiling: float = 1.0,
) -> float:
    """Additive-increase / multiplicative-decrease on a throttle scale."""
    if breached:
        return max(floor, scale * backoff)
    return min(ceiling, scale + recover)


def validate_aimd(
    *,
    backoff: float,
    recover: float,
    floor: float,
    target: float,
    window: float,
    interval: float,
) -> None:
    """Common sanity bounds for an AIMD pressure loop's knobs."""
    if not 0 < backoff < 1:
        raise ValueError("AIMD backoff must be in (0, 1)")
    if recover <= 0 or not 0 < floor <= 1:
        raise ValueError("invalid AIMD recover/floor")
    if target <= 0 or window <= 0 or interval <= 0:
        raise ValueError("AIMD target/window/interval must be positive")
