"""Host-side performance helpers (no simulated-time semantics).

The simulators allocate enough short-lived objects that ambient CPython
gen-2 GC passes — whose cost scales with everything *earlier* work left
alive in the process — can multiply a ~1 s run's wall clock several-fold.
Nothing in a simulation run creates reference cycles it needs collected
mid-flight, so the timed sections park the collector: collect once up
front (so the heap handed to the run is clean), disable, and re-enable
afterwards.  Nested uses are safe; the collector is only re-enabled by
the outermost frame that actually disabled it.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from typing import Iterator

__all__ = ["parked_gc"]


@contextmanager
def parked_gc(collect_first: bool = True) -> Iterator[None]:
    """Run the body with the cyclic GC disabled (see module docstring)."""
    if not gc.isenabled():
        # already parked by an outer frame (or the host runs GC-free):
        # don't collect, don't re-enable early
        yield
        return
    if collect_first:
        gc.collect()
    gc.disable()
    try:
        yield
    finally:
        gc.enable()
