"""Byte/bandwidth unit constants and formatting helpers.

Decimal units (KB/MB/GB) follow the paper's usage for capacities and traffic;
binary units (KiB/MiB/GiB) are used for device geometry (pages, log units).
"""

from __future__ import annotations

__all__ = [
    "KB",
    "MB",
    "GB",
    "KiB",
    "MiB",
    "GiB",
    "Gbps",
    "fmt_bytes",
    "fmt_time",
]

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30


def Gbps(n: float) -> float:
    """Convert gigabits/second to bytes/second."""
    return n * 1e9 / 8.0


def fmt_bytes(n: float) -> str:
    """Human-readable byte count (binary units)."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            return f"{n:.2f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    raise AssertionError("unreachable")


def fmt_time(seconds: float) -> str:
    """Human-readable duration: picks ns/us/ms/s."""
    if seconds < 0:
        return "-" + fmt_time(-seconds)
    if seconds == 0:
        return "0 s"
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"
