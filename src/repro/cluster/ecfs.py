"""ECFS facade: builds and wires a whole cluster on one DES environment."""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.cluster.client import Client
from repro.cluster.config import ClusterConfig
from repro.cluster.ids import BlockId
from repro.cluster.layout import Placement
from repro.cluster.mds import MDS
from repro.cluster.osd import OSD
from repro.cluster.verify import GroundTruth
from repro.common.errors import ConfigError
from repro.ec.rs import RSCode
from repro.metrics.collector import MetricsCollector
from repro.net.fabric import NetParams, NetworkFabric
from repro.sim import Environment
from repro.storage.hdd import HDDevice, HDDParams
from repro.storage.ssd import SSDevice, SSDParams

__all__ = ["ECFS"]


class ECFS:
    """One simulated deployment: environment + fabric + MDS + OSDs + clients.

    Typical use::

        ecfs = ECFS(ClusterConfig(k=6, m=4), method="tsue")
        ecfs.populate(n_files=4, stripes_per_file=8)
        ecfs.add_clients(16)
        ... replay a trace (repro.traces.replayer) ...
        ecfs.drain()          # flush logs
        ecfs.verify()         # every stripe decodes and matches the oracle
    """

    def __init__(
        self,
        config: ClusterConfig | None = None,
        method: str = "tsue",
        env: Environment | None = None,
        net_params: NetParams | None = None,
        ssd_params: SSDParams | None = None,
        hdd_params: HDDParams | None = None,
        method_options: Optional[dict] = None,
    ) -> None:
        self.config = config or ClusterConfig()
        self.config.validate()
        self.env = env or Environment()
        self.net = NetworkFabric(self.env, net_params)
        self.rs = RSCode(self.config.k, self.config.m, self.config.matrix_kind)
        self.placement = Placement(
            self.config.n_osds, self.config.k, self.config.m, self.config.log_pools
        )
        self.mds = MDS(self.placement, self.config.block_size)
        self.oracle = GroundTruth(self.config.block_size)
        self.metrics = MetricsCollector(self.env)
        self._placement_override: dict[BlockId, int] = {}

        self.osds: list[OSD] = []
        for i in range(self.config.n_osds):
            device = self._make_device(i, ssd_params, hdd_params)
            osd = OSD(self.env, i, device, self.config.block_size)
            self.osds.append(osd)
            self.net.add_node(osd.name)

        # update method: import here to avoid a package cycle
        from repro.update import make_method

        self.method = make_method(method, self, **(method_options or {}))
        for osd in self.osds:
            osd.method = self.method
            self.method.attach(osd)
        self.method.start_background()

        self.clients: list[Client] = []
        self._rng = np.random.default_rng(self.config.seed)
        self.known_blocks: set[BlockId] = set()

    # --------------------------------------------------------------- build
    def _make_device(self, i: int, ssd_params, hdd_params):
        if self.config.device == "ssd":
            return SSDevice(self.env, f"ssd{i}", ssd_params)
        return HDDevice(self.env, f"hdd{i}", hdd_params)

    def add_clients(self, n: int) -> list[Client]:
        for _ in range(n):
            client = Client(self, len(self.clients))
            self.clients.append(client)
            self.net.add_node(client.name)
        return self.clients

    # ------------------------------------------------------------ placement
    def osd_hosting(self, block: BlockId) -> OSD:
        override = self._placement_override.get(block)
        idx = override if override is not None else self.placement.osd_of(block)
        return self.osds[idx]

    def rehome_block(self, block: BlockId, osd_idx: int) -> None:
        """Recovery: record that a rebuilt block now lives on ``osd_idx``."""
        self._placement_override[block] = osd_idx

    # ------------------------------------------------------------- populate
    def populate(
        self, n_files: int, stripes_per_file: int, fill: str = "random"
    ) -> list[int]:
        """Instantly create and place files (no simulated time) so trace
        replay starts from a fully-written state.  ``fill`` is "random"
        (parity computed, stronger verification) or "zeros" (fast)."""
        if fill not in ("random", "zeros"):
            raise ConfigError(f"unknown fill {fill!r}")
        bs = self.config.block_size
        k, m = self.rs.k, self.rs.m
        file_ids = []
        for _ in range(n_files):
            meta = self.mds.create_file(stripes_per_file * k * bs)
            file_ids.append(meta.file_id)
            for s in range(stripes_per_file):
                if fill == "random":
                    data = [
                        self._rng.integers(0, 256, bs, dtype=np.uint8)
                        for _ in range(k)
                    ]
                    parity = self.rs.encode(data)
                else:
                    data = [np.zeros(bs, dtype=np.uint8) for _ in range(k)]
                    parity = [np.zeros(bs, dtype=np.uint8) for _ in range(m)]
                for i, content in enumerate(data + parity):
                    bid = BlockId(meta.file_id, s, i)
                    osd = self.osd_hosting(bid)
                    osd.store.create(bid, content)
                    self.known_blocks.add(bid)
                    if i < k:
                        self.oracle.apply(bid, 0, content)
                        self.oracle.applied_updates -= 1
            self.mds.mark_written(meta.file_id, 0, meta.size)
        return file_ids

    # ----------------------------------------------------------- execution
    def run(self, until=None):
        return self.env.run(until)

    def drain(self) -> None:
        """Flush every outstanding log (runs simulated time)."""
        proc = self.env.process(self.method.flush(), name="drain")
        self.env.run(proc)

    def verify(self) -> int:
        """Check every touched stripe against the oracle; returns count."""
        return self.oracle.verify_cluster(self, self.rs)

    # ------------------------------------------------------------- metrics
    def total_log_debt(self) -> int:
        return sum(self.method.log_debt_bytes(osd) for osd in self.osds)

    def method_memory(self) -> int:
        return sum(self.method.memory_bytes(osd) for osd in self.osds)
