"""ECFS facade: builds and wires a whole cluster on one DES environment."""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.cluster.client import Client
from repro.cluster.config import ClusterConfig
from repro.cluster.ids import BlockId
from repro.cluster.mds import MDS
from repro.cluster.osd import OSD
from repro.cluster.verify import GroundTruth
from repro.common.errors import ConfigError
from repro.common.refcount import RefCounter
from repro.ec.rs import RSCode
from repro.metrics.collector import MetricsCollector
from repro.net.fabric import NetParams, NetworkFabric
from repro.placement import MigrationPlan, PlacementMap, Topology, make_policy
from repro.sim import PHASE_LATE, Environment, Event
from repro.storage.hdd import HDDevice, HDDParams
from repro.storage.ssd import SSDevice, SSDParams

__all__ = ["ECFS"]


def _never_blocked() -> bool:
    return False


class ECFS:
    """One simulated deployment: environment + fabric + MDS + OSDs + clients.

    Typical use::

        ecfs = ECFS(ClusterConfig(k=6, m=4), method="tsue")
        ecfs.populate(n_files=4, stripes_per_file=8)
        ecfs.add_clients(16)
        ... replay a trace (repro.traces.replayer) ...
        ecfs.drain()          # flush logs
        ecfs.verify()         # every stripe decodes and matches the oracle
    """

    def __init__(
        self,
        config: ClusterConfig | None = None,
        method: str = "tsue",
        env: Environment | None = None,
        net_params: NetParams | None = None,
        ssd_params: SSDParams | None = None,
        hdd_params: HDDParams | None = None,
        method_options: Optional[dict] = None,
    ) -> None:
        self.config = config or ClusterConfig()
        self.config.validate()
        self.env = env or Environment()
        self.net = NetworkFabric(self.env, net_params)
        self.rs = RSCode(self.config.k, self.config.m, self.config.matrix_kind)
        self.topology = Topology.flat(
            self.config.n_osds,
            osds_per_host=self.config.osds_per_host,
            hosts_per_rack=self.config.hosts_per_rack,
            failure_domain=self.config.failure_domain,
        )
        self.placement = PlacementMap(self._build_policy())
        self.mds = MDS(self.placement, self.config.block_size)
        self.oracle = GroundTruth(self.config.block_size)
        self.metrics = MetricsCollector(self.env)
        # unified background-work scheduler: every maintenance stream
        # (recycle/scrub/repair/rebalance) submits typed work items here.
        # A no-op unless config.background.enabled — imported lazily to
        # keep the package dependency graph acyclic.
        from repro.background.scheduler import BackgroundScheduler

        self.background = BackgroundScheduler(self)
        self._ssd_params = ssd_params
        self._hdd_params = hdd_params

        self.osds: list[OSD] = []
        for i in range(self.config.n_osds):
            device = self._make_device(i, ssd_params, hdd_params)
            osd = OSD(self.env, i, device, self.config.block_size)
            self.osds.append(osd)
            self.net.add_node(osd.name)

        # update method: import here to avoid a package cycle
        from repro.update import make_method

        self.method = make_method(method, self, **(method_options or {}))
        for osd in self.osds:
            osd.method = self.method
            self.method.attach(osd)
        self.method.start_background()

        # table-driven steady-state write schedules (repro.sim.schedule):
        # None when disabled, and inert without macro-op batching — the
        # compiled slot tables fan out through the batched event structure,
        # so the legacy generator path is the oracle for both flags at once
        self.schedules = None
        if getattr(self.config, "request_schedules", True) and getattr(
            self.config, "macro_batching", True
        ):
            from repro.sim.schedule import ScheduleEngine

            self.schedules = ScheduleEngine(self)

        # bulk recycle/drain plane (repro.sim.bulk): None when disabled.
        # Pure host-side precompute of the drain math — consumed at the
        # same yield points, so the per-unit recycler stays the
        # byte-exact oracle (tests/test_bulk_drain.py).
        self.bulk = None
        if getattr(self.config, "bulk_drain", True):
            from repro.sim.bulk import BulkDrainEngine

            self.bulk = BulkDrainEngine(self)

        self.clients: list[Client] = []
        self._rng = np.random.default_rng(self.config.seed)
        self.known_blocks: set[BlockId] = set()
        #: observers of elastic growth, called with the new OSD after
        #: :meth:`join_osd` wires it up (the heartbeat service registers a
        #: sender here so a joined node is monitored, not declared dead)
        self.on_osd_joined: list = []
        # event-based settlement waiters: per-stripe lists woken when a hold
        # on that stripe releases, plus cluster-wide waiters woken on any
        # settlement progress (unit recycled, node failed/restarted...).
        # Waiters re-check their condition on wake, so spurious wakeups are
        # safe; what matters is that every releasing transition notifies.
        self._stripe_waiters: dict[tuple[int, int], list] = {}
        self._settlement_waiters: list = []
        # in-flight update ops per stripe: reconstruction waits these out so
        # it never captures a half-applied data+parity state
        self._inflight_stripe = RefCounter(on_zero=self.notify_stripe)
        # stripes frozen by reconstruction (capture -> re-home window): new
        # updates and background delta application wait until the thaw, so
        # no delta can race the rebuilt block's placement switch
        self._frozen_stripes = RefCounter(on_zero=self.notify_stripe)

    # ------------------------------------------------------- stripe activity
    def freeze_stripe(self, file_id: int, stripe: int) -> None:
        self._frozen_stripes.incr((file_id, stripe))
        # reconstruction/migration/resync windows rewrite real blocks out
        # of band: void any precomputed bulk-drain deltas
        if self.bulk is not None:
            self.bulk.note_churn()

    def thaw_stripe(self, file_id: int, stripe: int) -> None:
        self._frozen_stripes.decr((file_id, stripe))

    def stripe_frozen(self, file_id: int, stripe: int) -> bool:
        return (file_id, stripe) in self._frozen_stripes

    def inflight_updates(self, file_id: int, stripe: int) -> int:
        """Client updates currently executing against the stripe."""
        return self._inflight_stripe.count((file_id, stripe))

    def wait_stripe_thaw(self, file_id: int, stripe: int):
        """Process fragment: yield until the stripe is not frozen.

        Event-based: the waiter sleeps until the thaw that drops the freeze
        count to zero wakes it (FIFO among waiters) — it is never polled
        awake early and never sleeps past the release.
        """
        while (file_id, stripe) in self._frozen_stripes:
            yield self.stripe_released(file_id, stripe)

    def stripe_released(self, file_id: int, stripe: int):
        """One-shot event fired at the next settlement-relevant release
        touching the stripe (thaw, last in-flight update, busy-mark drop,
        or any cluster-wide settlement progress).  Callers loop: wake,
        re-check their predicate, re-arm if still blocked."""
        waiter = Event(self.env)
        self._stripe_waiters.setdefault((file_id, stripe), []).append(waiter)
        return waiter

    def settlement_event(self):
        """One-shot event fired at the next cluster-wide settlement progress
        (any stripe release, a log unit finishing its recycle, a node
        failing or restarting).  Used by drain/quiesce loops."""
        waiter = Event(self.env)
        self._settlement_waiters.append(waiter)
        return waiter

    def notify_stripe(self, key: tuple[int, int]) -> None:
        """Wake waiters parked on ``key`` (and cluster-wide waiters)."""
        waiters = self._stripe_waiters.pop(key, None)
        if waiters:
            for waiter in waiters:
                if not waiter.triggered:
                    waiter.succeed()
        if self._settlement_waiters:
            self._notify_settlement_waiters()

    def notify_settlement(self) -> None:
        """Cluster-wide settlement progress: wake every parked waiter (they
        re-check and re-arm).  Cheap when nobody waits — one truthiness
        check per call."""
        if self._settlement_waiters:
            self._notify_settlement_waiters()
        if self._stripe_waiters:
            waiters_by_key, self._stripe_waiters = self._stripe_waiters, {}
            for waiters in waiters_by_key.values():
                for waiter in waiters:
                    if not waiter.triggered:
                        waiter.succeed()

    def _notify_settlement_waiters(self) -> None:
        waiters, self._settlement_waiters = self._settlement_waiters, []
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed()

    def note_update_begin(self, block: BlockId) -> None:
        self._inflight_stripe.incr((block.file_id, block.stripe))

    def note_update_end(self, block: BlockId) -> None:
        self._inflight_stripe.decr((block.file_id, block.stripe))

    def settle_stripe(self, file_id, stripe, extra_blocked=None):
        """Process fragment: wait until the stripe can be captured — no
        in-flight update, no applied-but-unsettled delta, not frozen, and
        (optionally) no ``extra_blocked()`` condition.

        This is THE settle discipline shared by reconstruction and the
        rebalancer: activity that signals its own completion (in-flight
        updates, freezes, mid-application log content) is waited out
        event-based via :meth:`stripe_released`; debt that only settles on
        an explicit flush (PL-style deferred recycling, or the caller's
        extra condition such as TSUE DataLog content pending on a source
        node) is forced through ``flush`` + ``resync_parity``, with a
        bounded-poll fallback for the stripe an in-flight settlement
        elsewhere is still draining.  On return the caller may freeze the
        stripe immediately — the DES never preempts between the last check
        and the freeze.
        """
        key = (file_id, stripe)
        extra = extra_blocked if extra_blocked is not None else _never_blocked
        while (
            not self.stripe_quiescent(file_id, stripe)
            or self.stripe_frozen(file_id, stripe)
            or extra()
        ):
            if (
                (key in self.method.unsettled_stripes() or extra())
                and not self.inflight_updates(file_id, stripe)
                and not self.stripe_frozen(file_id, stripe)
            ):
                # deferred-recycle methods settle only on an explicit
                # flush; force one — then repair any parity rows that lost
                # deltas — so the capture isn't stuck behind debt that
                # would otherwise sit until a threshold
                yield self.env.process(
                    self.method.flush(), name=f"settle-f{file_id}.s{stripe}"
                )
                yield self.env.process(
                    self.method.resync_parity(),
                    name=f"resync-f{file_id}.s{stripe}",
                )
                if (
                    (key in self.method.unsettled_stripes() or extra())
                    and not self.inflight_updates(file_id, stripe)
                    and not self.stripe_frozen(file_id, stripe)
                ):
                    # the forced pass could not settle this stripe (e.g. a
                    # resync skipped it behind still-draining deltas): fall
                    # back to a bounded poll so the in-flight settlement
                    # can advance
                    yield self.env.timeout(1e-4)
                continue
            # blocked on activity that signals its own completion: sleep
            # until the releasing transition wakes us
            yield self.stripe_released(file_id, stripe)

    def stripe_quiescent(self, file_id: int, stripe: int) -> bool:
        """True when the stripe has no in-flight update and no
        applied-to-data-but-pending-on-parity delta anywhere — i.e. its
        blocks form a consistent codeword right now."""
        if (file_id, stripe) in self._inflight_stripe:
            return False
        return (file_id, stripe) not in self.method.unsettled_stripes()

    # --------------------------------------------------------------- build
    def _make_device(self, i: int, ssd_params, hdd_params):
        if self.config.device == "ssd":
            return SSDevice(self.env, f"ssd{i}", ssd_params)
        return HDDevice(self.env, f"hdd{i}", hdd_params)

    def add_clients(self, n: int) -> list[Client]:
        for _ in range(n):
            client = Client(self, len(self.clients))
            self.clients.append(client)
            self.net.add_node(client.name)
        return self.clients

    # -------------------------------------------------------------- faults
    def crash_osd(self, idx: int) -> OSD:
        """Abrupt node loss: fail the node and tell the update method
        immediately (no quiesce — in-flight work is cut off).  The MDS
        learns of the death through heartbeat silence (or when a
        :class:`~repro.cluster.recovery.RecoveryManager` rebuild starts,
        which must follow for the cluster to verify again)."""
        osd = self.osds[idx]
        if not osd.failed:
            osd.fail()
            self.method.on_node_failed(osd)
            # a death changes what can settle (its logs dropped/stashed):
            # re-check parked settlement waiters
            self.notify_settlement()
        return osd

    def restart_osd(self, idx: int) -> OSD:
        """Bring a transiently-down node back (contents intact, no rebuild):
        clears the failure flags and lets the update method resume/replay
        its background work for the node."""
        osd = self.osds[idx]
        if osd.failed:
            osd.restart()
            self.mds.declare_recovered(idx)
            self.mds.heartbeat(idx, self.env.now)
            self.method.on_node_restarted(osd)
            self.notify_settlement()
        return osd

    # ------------------------------------------------------------ placement
    def _build_policy(self):
        """Fresh policy instance from the topology's current state (one per
        epoch; instances are immutable, see :mod:`repro.placement.base`)."""
        return make_policy(
            self.config.placement_policy,
            self.topology,
            self.config.k,
            self.config.m,
            self.config.log_pools,
        )

    def osd_hosting(self, block: BlockId) -> OSD:
        """The OSD actually serving ``block`` — epoch ideal unless a remap
        (recovery re-home, pending migration) says otherwise."""
        return self.osds[self.placement.home_of(block)]

    def advance_epoch(self) -> MigrationPlan:
        """Re-derive placement from the current topology as a new epoch.

        Data does not move here: blocks off their new ideal home become
        remaps, and the returned plan lists the moves a
        :class:`~repro.placement.rebalancer.Rebalancer` should execute.
        """
        plan = self.placement.advance(self._build_policy(), self.known_blocks)
        # an epoch changes where parity deltas and replicas land: re-check
        # parked settlement waiters against the new mapping
        self.notify_settlement()
        return plan

    def _wire_new_osd(
        self, weight: float, host: int | None, rack: int | None
    ) -> OSD:
        """Create, register, and topology-place one new OSD — everything a
        join does *except* the epoch advance (so batched joins share one)."""
        idx = len(self.osds)
        device = self._make_device(idx, self._ssd_params, self._hdd_params)
        osd = OSD(self.env, idx, device, self.config.block_size)
        self.osds.append(osd)
        self.net.add_node(osd.name)
        osd.method = self.method
        self.method.on_node_joined(osd)
        self.mds.heartbeat(idx, self.env.now)
        self.topology.add_osd(idx, weight=weight, host=host, rack=rack)
        return osd

    def join_osd(
        self,
        weight: float = 1.0,
        host: int | None = None,
        rack: int | None = None,
    ) -> tuple[OSD, MigrationPlan]:
        """Elastically grow the cluster by one OSD (new failure domain by
        default) and advance the placement epoch."""
        osd = self._wire_new_osd(weight, host, rack)
        plan = self.advance_epoch()
        for callback in list(self.on_osd_joined):
            callback(osd)
        return osd, plan

    def apply_topology_batch(
        self, ops: list[tuple[str, dict]]
    ) -> tuple[list[OSD], MigrationPlan]:
        """Fold several membership changes into ONE epoch advance.

        ``ops`` is a list of ``(kind, kwargs)`` pairs — ``("join",
        {"weight", "host", "rack"})``, ``("decommission", {"osd"})``,
        ``("weight", {"osd", "weight"})`` — applied to the topology in
        order, then resolved by a single :meth:`advance_epoch`.  A
        whole-rack join therefore costs one epoch and one
        :class:`MigrationPlan` instead of one per device, and the planner
        diffs against the *final* topology — no block ever migrates to an
        intermediate home that the next event of the batch would move again.
        Returns (newly joined OSDs, the batch's plan).
        """
        joined: list[OSD] = []
        for kind, kwargs in ops:
            if kind == "join":
                joined.append(
                    self._wire_new_osd(
                        kwargs.get("weight", 1.0),
                        kwargs.get("host"),
                        kwargs.get("rack"),
                    )
                )
            elif kind == "decommission":
                self.topology.remove_osd(kwargs["osd"])
            elif kind == "weight":
                self.topology.set_weight(kwargs["osd"], kwargs["weight"])
            else:
                raise ConfigError(f"unknown topology batch op {kind!r}")
        plan = self.advance_epoch()
        for osd in joined:
            for callback in list(self.on_osd_joined):
                callback(osd)
        return joined, plan

    def decommission_osd(self, idx: int) -> MigrationPlan:
        """Gracefully remove ``idx`` from placement: the node keeps serving
        its blocks (as remaps) until a rebalance drains them, after which
        :meth:`retire_osd` takes it out of service."""
        self.topology.remove_osd(idx)
        return self.advance_epoch()

    def set_osd_weight(self, idx: int, weight: float) -> MigrationPlan:
        """Reweight one device and advance the epoch (CRUSH policies shift
        a proportional share of blocks; rotation ignores weights)."""
        self.topology.set_weight(idx, weight)
        return self.advance_epoch()

    def retire_osd(self, idx: int) -> bool:
        """Take a drained, decommissioned node out of service.  Refuses (and
        returns False) while any block still actually lives there."""
        if any(self.placement.home_of(b) == idx for b in self.known_blocks):
            return False
        osd = self.osds[idx]
        if not osd.failed:
            osd.fail()
            self.method.on_node_failed(osd)
            self.mds.declare_failed(idx)
            self.notify_settlement()
        return True

    def placement_loads(self) -> dict[int, int]:
        """Blocks actually homed per OSD (actual homes, remaps included)."""
        loads = {osd.idx: 0 for osd in self.osds}
        for block in self.known_blocks:
            loads[self.placement.home_of(block)] += 1
        return loads

    def tail_imbalance(self) -> float:
        """Max weight-normalized load over mean — 1.0 is perfectly balanced
        (the collector's time-to-balanced metric tracks this back to ~1).

        Nodes that left the topology but still home blocks (a decommission
        mid-drain) count at unit weight, so the pre-drain imbalance shows
        the load that is about to move; drained/retired nodes drop out.
        """
        weights = self.topology.weights()
        normalized = []
        for osd, load in self.placement_loads().items():
            weight = weights.get(osd)
            if weight is None:
                if load == 0:
                    continue  # retired or never-populated: not a target
                weight = 1.0
            normalized.append(load / weight)
        return MetricsCollector.tail_imbalance(normalized)

    # ------------------------------------------------------------- populate
    def populate(
        self, n_files: int, stripes_per_file: int, fill: str = "random"
    ) -> list[int]:
        """Instantly create and place files (no simulated time) so trace
        replay starts from a fully-written state.  ``fill`` is "random"
        (parity computed, stronger verification) or "zeros" (fast)."""
        if fill not in ("random", "zeros"):
            raise ConfigError(f"unknown fill {fill!r}")
        bs = self.config.block_size
        k, m = self.rs.k, self.rs.m
        spf = stripes_per_file
        file_ids = []
        for _ in range(n_files):
            meta = self.mds.create_file(spf * k * bs)
            file_ids.append(meta.file_id)
            if fill == "random":
                # One batched draw per file — bit-identical to the former
                # per-block draws (same generator stream, same order) — then
                # one vectorized encode over all stripes laid side by side.
                draw = self._rng.integers(0, 256, (spf, k, bs), dtype=np.uint8)
                coded = np.empty((k + m, spf * bs), dtype=np.uint8)
                # coded[i, s*bs:(s+1)*bs] is block i of stripe s
                coded[:k] = draw.transpose(1, 0, 2).reshape(k, spf * bs)
                coded[k:] = self.rs.encode_matrix(coded[:k])
                # Blocks are read-only views into this one matrix; the
                # stores/oracle promote to private copies on first write.
                coded.flags.writeable = False
                for s in range(spf):
                    lo = s * bs
                    hi = lo + bs
                    for i in range(k + m):
                        bid = BlockId(meta.file_id, s, i)
                        content = coded[i, lo:hi]
                        self.osd_hosting(bid).store.create_shared(bid, content)
                        self.known_blocks.add(bid)
                        if i < k:
                            self.oracle.adopt(bid, content)
            else:
                # zero fill: copy-on-write — no per-block allocation in
                # the store or the oracle until something writes
                bids = [
                    BlockId(meta.file_id, s, i)
                    for s in range(spf)
                    for i in range(k + m)
                ]
                by_osd: dict = {}
                for bid in bids:
                    by_osd.setdefault(self.osd_hosting(bid), []).append(bid)
                for osd, osd_bids in by_osd.items():
                    osd.store.create_zero_many(osd_bids)
                self.known_blocks.update(bids)
                self.oracle.touch_many(b for b in bids if b.idx < k)
            self.mds.mark_written(meta.file_id, 0, meta.size)
        return file_ids

    # ----------------------------------------------------------- execution
    def run(self, until=None):
        return self.env.run(until)

    def drain(self) -> None:
        """Flush every outstanding log and repair parity rows that lost
        deltas to down nodes (runs simulated time)."""
        proc = self.env.process(self._settle(), name="drain")
        self.env.run(proc)

    def _settle(self):
        from repro.common.errors import IntegrityError

        def flush_tolerant():
            # a node crashing mid-drain must degrade, not abort the run:
            # the method's failure hooks (stash/marks) and the ensuing
            # recovery pick up what the interrupted flush left behind
            try:
                yield from self.method.flush()
            except IntegrityError:
                pass

        yield from flush_tolerant()
        # repair resync-marked stripes: flushes interleave (the resync
        # skips stripes with deltas still draining) and time advances so a
        # resync already in flight elsewhere can finish.  Stripes that
        # cannot settle (a data host is down pending rebuild) stay marked.
        for _ in range(50):
            if not self.method.resync_pending():
                break
            yield from self.method.resync_parity()
            yield from flush_tolerant()
            # settle retries ride the LATE lane: a re-check at tick T runs
            # after all normal work scheduled for T
            yield self.env.timeout_us(1000, phase=PHASE_LATE)

    def verify(self) -> int:
        """Check every touched stripe against the oracle; returns count."""
        return self.oracle.verify_cluster(self, self.rs)

    # ------------------------------------------------------------- metrics
    def total_log_debt(self) -> int:
        return sum(self.method.log_debt_bytes(osd) for osd in self.osds)

    def method_memory(self) -> int:
        return sum(self.method.memory_bytes(osd) for osd in self.osds)
