"""Node failure + data recovery (§4.2, Fig. 8b).

Recovery of a failed OSD proceeds as the paper requires:

1. **log settlement** — every surviving node's outstanding logs touching the
   affected stripes must be recycled before reconstruction (methods with a
   ``recovery_prepare`` hook pay that cost here; FO pays nothing, TSUE pays
   almost nothing thanks to real-time recycling, PL/PARIX pay a lot);
2. **reconstruction** — for every lost block, k surviving blocks of its
   stripe are read and shipped to a rebuild target, the block is decoded
   (real RS decode over the real bytes) and written out; the rebuilt block
   is re-homed so subsequent I/O finds it.

Recovery bandwidth = rebuilt bytes / elapsed simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.background.work import RepairOp
from repro.cluster.ecfs import ECFS
from repro.cluster.ids import BlockId
from repro.storage.base import IOKind, IOPriority

__all__ = ["RecoveryReport", "RecoveryManager"]


@dataclass
class RecoveryReport:
    failed_osd: int
    blocks_rebuilt: int
    bytes_rebuilt: int
    prepare_seconds: float
    rebuild_seconds: float

    @property
    def bandwidth(self) -> float:
        """Rebuild throughput in bytes/second (the paper's MB/s metric
        includes log settlement in the elapsed time)."""
        total = self.prepare_seconds + self.rebuild_seconds
        return self.bytes_rebuilt / total if total > 0 else 0.0


class RecoveryManager:
    """Drives fail-and-rebuild for one cluster.

    When the unified background scheduler is enabled, every block rebuild
    first obtains a ``repair``-stream grant (the heaviest-weighted stream)
    and its source/target I/O runs in the BACKGROUND device lane, so a
    rebuild storm shares the maintenance budget instead of competing with
    client traffic at FOREGROUND priority.  With the scheduler disabled the
    historical behavior (ungoverned FOREGROUND fetches) is byte-identical.
    """

    def __init__(self, ecfs: ECFS, parallel_stripes: int = 4) -> None:
        self.ecfs = ecfs
        self.parallel_stripes = max(1, parallel_stripes)

    @property
    def _io_priority(self) -> int:
        return (
            IOPriority.BACKGROUND
            if self.ecfs.background.enabled
            else IOPriority.FOREGROUND
        )

    # ------------------------------------------------------------------ API
    def lost_blocks(self, osd_idx: int) -> list[BlockId]:
        """Blocks whose *current* home (including recovery re-homes from an
        earlier failure) is ``osd_idx``."""
        ecfs = self.ecfs
        return sorted(
            b for b in ecfs.known_blocks
            if ecfs.placement.home_of(b) == osd_idx
        )

    def fail_and_recover(self, osd_idx: int) -> Generator:
        """Process: kill ``osd_idx``, settle logs, rebuild; returns report.

        If the victim is already down (an abrupt crash injected by
        :mod:`repro.fault`, which calls :meth:`ECFS.crash_osd` first), the
        quiesce/teardown phase is skipped — the crash did not wait for
        in-flight recycles, and the method's stash already captured the
        victim's unrecycled logs.
        """
        ecfs = self.ecfs
        env = ecfs.env
        victim = ecfs.osds[osd_idx]
        if not victim.failed:
            yield env.process(ecfs.method.quiesce_node(victim), name="rec-quiesce")
            victim.fail()
            ecfs.method.on_node_failed(victim)
        ecfs.mds.declare_failed(osd_idx)
        lost = self.lost_blocks(osd_idx)

        # --- phase 1: settle outstanding logs on survivors ---------------
        t0 = env.now
        prepare = getattr(ecfs.method, "recovery_prepare", None)
        if prepare is not None:
            jobs = [
                env.process(prepare(osd), name=f"rec-prep-{osd.name}")
                for osd in ecfs.osds
                if not osd.failed
            ]
            if jobs:
                yield env.all_of(jobs)
        # replay the victim's replicated logs (TSUE) before decoding
        yield env.process(ecfs.method.pre_rebuild(), name="rec-prelude")
        t1 = env.now

        # --- phase 2: reconstruct lost blocks, bounded parallelism -------
        queue = list(lost)
        workers = [
            env.process(self._rebuild_worker(queue, osd_idx), name=f"rec-w{i}")
            for i in range(self.parallel_stripes)
        ]
        if workers:
            yield env.all_of(workers)
        yield env.process(ecfs.method.finalize_recovery(), name="rec-final")
        t2 = env.now

        return RecoveryReport(
            failed_osd=osd_idx,
            blocks_rebuilt=len(lost),
            bytes_rebuilt=len(lost) * ecfs.config.block_size,
            prepare_seconds=t1 - t0,
            rebuild_seconds=t2 - t1,
        )

    # ------------------------------------------------------------ internals
    def _rebuild_worker(self, queue: list[BlockId], failed_idx: int) -> Generator:
        from repro.common.errors import IntegrityError

        env = self.ecfs.env
        while queue:
            block = queue.pop()
            try:
                yield from self._rebuild_block(block, failed_idx)
            except IntegrityError:
                # a source or target died mid-rebuild (overlapping second
                # failure): retry with freshly selected survivors.  The
                # retry terminates — each attempt excludes every node
                # currently down, and decode raises DecodeError (fatal)
                # once fewer than k survive.
                queue.append(block)
                yield env.timeout(0)

    def _rebuild_block(self, block: BlockId, failed_idx: int) -> Generator:
        from repro.common.errors import IntegrityError

        ecfs = self.ecfs
        env = ecfs.env
        target = self._rebuild_target(block, failed_idx)
        sources = self._survivor_sources(block)
        # unified maintenance plane: one repair-stream grant per rebuilt
        # block (k source reads + one target write), charged to the rebuild
        # target's budget (no-op when disabled)
        yield from ecfs.background.request(
            RepairOp(
                osd=ecfs.osds[target].name,
                nbytes=(len(sources) + 1) * ecfs.config.block_size,
                tag="rebuild",
            )
        )
        reads = [
            env.process(self._fetch(src_bid, target), name=f"rec-r{src_bid}")
            for src_bid in sources
        ]
        yield env.all_of(reads)
        # Wait for stripe quiescence: while an update is in flight, or a
        # delta sits applied-in-data but pending-on-parity (log debt of an
        # ongoing workload, an overlapping recovery's settlement), the
        # stripe's blocks are not one consistent codeword and decoding
        # would produce garbage.  Real systems hold a stripe lock here; the
        # freeze then keeps new deltas from racing the placement switch —
        # a delta aimed at the dead home after the capture would be lost.
        # The freeze is exclusive: two overlapping recoveries rebuilding two
        # blocks of ONE stripe must serialize, or the second capture races
        # the first rebuild's stash replay.  Check-and-freeze is atomic —
        # the DES never preempts between the last poll and the freeze.
        yield from ecfs.settle_stripe(block.file_id, block.stripe)
        ecfs.freeze_stripe(block.file_id, block.stripe)
        try:
            # Capture every source at ONE simulated instant (the fetches
            # above only charge I/O + network time) so nothing mutates
            # between the individual source reads.
            available: dict[int, np.ndarray] = {}
            for src_bid in sources:
                src = ecfs.osd_hosting(src_bid)
                if src.failed:
                    raise IntegrityError(f"{src.name} died mid-fetch")  # retry
                if src_bid in src.store.corrupted:
                    # latent sector error surfaced by the read checksum
                    # between selection and capture: retry with another
                    raise IntegrityError(f"{src_bid} failed its checksum")
                available[src_bid.idx] = (
                    src.store.read(src_bid)
                    if src_bid in src.store
                    else np.zeros(ecfs.config.block_size, dtype=np.uint8)
                )
            # decode: k GF-scaled XOR accumulations over a full block
            yield env.timeout(
                ecfs.config.costs.gf_mul(ecfs.config.block_size, terms=ecfs.rs.k)
            )
            rebuilt = ecfs.rs.decode(available, [block.idx])[block.idx]
            # replay any stashed (replicated-log) updates onto the rebuild
            yield env.process(
                ecfs.method.post_rebuild(block, ecfs.osds[target], rebuilt),
                name=f"rec-replay-{block}",
            )
            tosd = ecfs.osds[target]
            yield from tosd.io_block(
                IOKind.WRITE, block, 0, ecfs.config.block_size, self._io_priority
            )
            if block in tosd.store:
                tosd.store.write(block, 0, rebuilt)
            else:
                tosd.store.create(block, rebuilt)
            # epoch remap: the rebuilt block's actual home is now `target`
            # (cleared automatically if a later epoch makes it ideal again)
            ecfs.placement.pin(block, target)
        finally:
            ecfs.thaw_stripe(block.file_id, block.stripe)

    def _survivor_sources(self, block: BlockId) -> list[BlockId]:
        ecfs = self.ecfs
        out = []
        for i in range(ecfs.rs.k + ecfs.rs.m):
            if i == block.idx:
                continue
            bid = BlockId(block.file_id, block.stripe, i)
            osd = ecfs.osd_hosting(bid)
            # a block with a latent sector error fails its read checksum:
            # as unusable for decoding as a dead node (scrub repairs it)
            if not osd.failed and bid not in osd.store.corrupted:
                out.append(bid)
            if len(out) == ecfs.rs.k:
                break
        return out

    def _fetch(self, src_bid: BlockId, target: int) -> Generator:
        """Charge the read + transfer cost of shipping one source block; the
        bytes themselves are captured atomically by the caller."""
        ecfs = self.ecfs
        src = ecfs.osd_hosting(src_bid)
        yield from src.io_block(
            IOKind.READ, src_bid, 0, ecfs.config.block_size, self._io_priority
        )
        yield from ecfs.net.transfer(
            src.name, ecfs.osds[target].name, ecfs.config.block_size
        )

    def _rebuild_target(self, block: BlockId, failed_idx: int) -> int:
        """Spread rebuilt blocks over survivors not already in the stripe."""
        ecfs = self.ecfs
        in_stripe = {
            ecfs.placement.home_of(BlockId(block.file_id, block.stripe, i))
            for i in range(ecfs.rs.k + ecfs.rs.m)
        }
        n = len(ecfs.osds)
        start = (failed_idx + 1 + (block.stripe % n)) % n
        for off in range(n):
            cand = (start + off) % n
            if cand != failed_idx and not ecfs.osds[cand].failed and cand not in in_stripe:
                return cand
        # degenerate case (n == k+m): reuse any live node
        for off in range(n):
            cand = (start + off) % n
            if cand != failed_idx and not ecfs.osds[cand].failed:
                return cand
        raise RuntimeError("no live node available for rebuild")
