"""Heartbeat-driven failure detection (§4: OSDs send periodic heartbeats;
the MDS initiates recovery when one goes silent).

:class:`HeartbeatService` runs one sender process per OSD and one monitor
process at the MDS.  A failed OSD stops heartbeating (its sender idles while
the node's failure flag is up); after ``timeout`` silent seconds the MDS
declares it failed and fires the recovery callback.  The sender survives a
transient bounce: once the node restarts it resumes beating, and the monitor
readmits it (``declare_recovered`` + the ``on_recovery`` callback) — the
same path a healed network partition takes, since heartbeats crossing a
partition block until it heals.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.ecfs import ECFS

__all__ = ["HeartbeatService"]

_HEARTBEAT_BYTES = 64


class HeartbeatService:
    """Periodic OSD heartbeats + MDS liveness monitor on the DES."""

    def __init__(
        self,
        ecfs: "ECFS",
        interval: float = 1.0,
        timeout: float = 3.5,
        on_failure: Optional[Callable[[int], None]] = None,
        on_recovery: Optional[Callable[[int], None]] = None,
    ) -> None:
        if interval <= 0 or timeout <= interval:
            raise ValueError("need 0 < interval < timeout")
        self.ecfs = ecfs
        self.interval = interval
        self.timeout = timeout
        self.detected: list[tuple[int, float]] = []  # (osd idx, detect time)
        self.recovered: list[tuple[int, float]] = []  # (osd idx, readmit time)
        self._user_callback = on_failure
        self._user_on_recovery = on_recovery
        self._procs: list = []
        ecfs.mds.heartbeat_timeout = timeout
        ecfs.mds.on_failure = self._on_failure
        if "mds" not in ecfs.net.nics:
            ecfs.net.add_node("mds")

    # ------------------------------------------------------------------ API
    def start(self) -> None:
        env = self.ecfs.env
        for osd in self.ecfs.osds:
            self._watch(osd)
        self._procs.append(env.process(self._monitor(), name="hb-monitor"))
        # elastic growth: a joined OSD needs its own sender, or the monitor
        # would declare the healthy newcomer dead after one silent timeout
        self.ecfs.on_osd_joined.append(self._watch)

    def stop(self) -> None:
        for proc in self._procs:
            proc.interrupt("heartbeat-service-stopped")
        self._procs.clear()
        if self._watch in self.ecfs.on_osd_joined:
            self.ecfs.on_osd_joined.remove(self._watch)

    def _watch(self, osd) -> None:
        """Record an initial beat and spawn the node's sender process."""
        env = self.ecfs.env
        self.ecfs.mds.heartbeat(osd.idx, env.now)
        self._procs.append(env.process(self._sender(osd), name=f"hb-{osd.name}"))

    # ------------------------------------------------------------ processes
    def _sender(self, osd) -> Generator:
        env = self.ecfs.env
        from repro.sim import Interrupt

        try:
            while True:
                yield env.timeout(self.interval)
                if osd.failed:
                    continue  # down: silent until a restart brings it back
                yield from self.ecfs.net.transfer(osd.name, "mds", _HEARTBEAT_BYTES)
                # a beat that was in flight when the node died doesn't count
                if not osd.failed:
                    self.ecfs.mds.heartbeat(osd.idx, env.now)
        except Interrupt:
            return

    def _monitor(self) -> Generator:
        env = self.ecfs.env
        mds = self.ecfs.mds

        from repro.sim import Interrupt

        try:
            while True:
                yield env.timeout(self.interval)
                mds.check_liveness(env.now)
                # readmit declared-failed nodes that are beating again and
                # actually alive (a rebuilt node stays failed: its blocks
                # were re-homed)
                for idx in sorted(mds.failed):
                    osd = self.ecfs.osds[idx]
                    fresh = env.now - mds.heartbeats.get(idx, float("-inf"))
                    if not osd.failed and fresh <= self.timeout:
                        mds.declare_recovered(idx)
                        self.recovered.append((idx, env.now))
                        if self._user_on_recovery is not None:
                            self._user_on_recovery(idx)
        except Interrupt:
            return

    def _on_failure(self, osd_idx: int) -> None:
        self.detected.append((osd_idx, self.ecfs.env.now))
        if self._user_callback is not None:
            self._user_callback(osd_idx)
