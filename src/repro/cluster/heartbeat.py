"""Heartbeat-driven failure detection (§4: OSDs send periodic heartbeats;
the MDS initiates recovery when one goes silent).

:class:`HeartbeatService` runs one sender process per OSD and one monitor
process at the MDS.  A failed OSD stops heartbeating (its sender exits on
the node's failure flag); after ``timeout`` silent seconds the MDS declares
it failed and fires the recovery callback.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.ecfs import ECFS

__all__ = ["HeartbeatService"]

_HEARTBEAT_BYTES = 64


class HeartbeatService:
    """Periodic OSD heartbeats + MDS liveness monitor on the DES."""

    def __init__(
        self,
        ecfs: "ECFS",
        interval: float = 1.0,
        timeout: float = 3.5,
        on_failure: Optional[Callable[[int], None]] = None,
    ) -> None:
        if interval <= 0 or timeout <= interval:
            raise ValueError("need 0 < interval < timeout")
        self.ecfs = ecfs
        self.interval = interval
        self.timeout = timeout
        self.detected: list[tuple[int, float]] = []  # (osd idx, detect time)
        self._user_callback = on_failure
        self._procs: list = []
        ecfs.mds.heartbeat_timeout = timeout
        ecfs.mds.on_failure = self._on_failure
        if "mds" not in ecfs.net.nics:
            ecfs.net.add_node("mds")

    # ------------------------------------------------------------------ API
    def start(self) -> None:
        env = self.ecfs.env
        for osd in self.ecfs.osds:
            self.ecfs.mds.heartbeat(osd.idx, env.now)
            self._procs.append(
                env.process(self._sender(osd), name=f"hb-{osd.name}")
            )
        self._procs.append(env.process(self._monitor(), name="hb-monitor"))

    def stop(self) -> None:
        for proc in self._procs:
            proc.interrupt("heartbeat-service-stopped")
        self._procs.clear()

    # ------------------------------------------------------------ processes
    def _sender(self, osd) -> Generator:
        env = self.ecfs.env
        from repro.sim import Interrupt

        try:
            while not osd.failed:
                yield env.timeout(self.interval)
                if osd.failed:
                    return
                yield from self.ecfs.net.transfer(osd.name, "mds", _HEARTBEAT_BYTES)
                self.ecfs.mds.heartbeat(osd.idx, env.now)
        except Interrupt:
            return

    def _monitor(self) -> Generator:
        env = self.ecfs.env
        from repro.sim import Interrupt

        try:
            while True:
                yield env.timeout(self.interval)
                self.ecfs.mds.check_liveness(env.now)
        except Interrupt:
            return

    def _on_failure(self, osd_idx: int) -> None:
        self.detected.append((osd_idx, self.ecfs.env.now))
        if self._user_callback is not None:
            self._user_callback(osd_idx)
