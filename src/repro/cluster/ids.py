"""Block identity within the striped namespace.

A file is a sequence of stripes; stripe ``s`` holds ``k`` data blocks
(indices 0..k-1) and ``m`` parity blocks (indices k..k+m-1).  A
:class:`BlockId` is the triple the paper hashes to choose log pools:
(inode number, stripe number, block number).
"""

from __future__ import annotations

import enum
from typing import NamedTuple

__all__ = ["BlockId", "BlockKind", "block_kind"]


class BlockKind(enum.Enum):
    DATA = "data"
    PARITY = "parity"


class BlockId(NamedTuple):
    file_id: int
    stripe: int
    idx: int  # 0..k-1 data, k..k+m-1 parity

    def __str__(self) -> str:
        return f"f{self.file_id}.s{self.stripe}.b{self.idx}"


def block_kind(block: BlockId, k: int) -> BlockKind:
    """DATA for idx < k, PARITY otherwise."""
    return BlockKind.DATA if block.idx < k else BlockKind.PARITY
