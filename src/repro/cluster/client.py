"""Client: POSIX-ish front end — encoding writes, routed updates, reads.

This is the seed-compatible *thin shim* over the front-end request path:
op construction (ids, payload RNG streams) lives here, while the actual
dispatch generators — primary routing, remap chasing, freeze waits,
degraded fallback — live in :mod:`repro.frontend.ops` and are shared with
the QoS-aware :class:`~repro.frontend.dispatcher.FrontEnd` pipeline.  The
shim adds no simulation events of its own, so figure/table runs driven
through ``Client`` are byte-identical to the pre-refactor tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from repro.cluster.ids import BlockId
from repro.common.errors import IntegrityError
from repro.frontend import ops as _ops
from repro.sim.batch import spawn_fanout
from repro.storage.base import IOKind, IOPriority

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.ecfs import ECFS

__all__ = ["UpdateOp", "Client"]


@dataclass
class UpdateOp:
    """One update landing on a data block."""

    op_id: int
    block: BlockId
    offset: int  # within the block
    payload: np.ndarray
    issued_at: float = 0.0
    client: str = ""

    @property
    def size(self) -> int:
        return int(self.payload.shape[0])


class Client:
    """A client node: encodes normal writes, forwards updates (§4.3)."""

    def __init__(self, ecfs: "ECFS", idx: int) -> None:
        self.ecfs = ecfs
        self.idx = idx
        self.name = f"client{idx}"
        self.env = ecfs.env
        self._op_counter = 0
        self._payload_rng = np.random.default_rng(
            np.random.SeedSequence([ecfs.config.seed, 0xC11E57, idx])
        )

    # --------------------------------------------------------------- update
    def update(self, file_id: int, offset: int, size: int) -> Generator:
        """Process: one update request, returns (latency seconds)."""
        op = self.make_update_op(file_id, offset, size)
        return (yield from _ops.execute_update(self.ecfs, self.name, op))

    def make_update_op(self, file_id: int, offset: int, size: int) -> UpdateOp:
        """Construct the op one dispatch attempt executes (each attempt gets
        its own op id and payload draw from this client's RNG stream)."""
        ecfs = self.ecfs
        block, in_off, size = _ops.locate_clamped(ecfs, file_id, offset, size)
        payload = self._payload_rng.integers(0, 256, size, dtype=np.uint8)
        return UpdateOp(
            op_id=self._next_op(),
            block=block,
            offset=in_off,
            payload=payload,
            issued_at=self.env.now,
            client=self.name,
        )

    # ----------------------------------------------------------------- read
    def read(self, file_id: int, offset: int, size: int) -> Generator:
        """Process: read ``size`` bytes (clamped to one block), returns bytes.

        If the block's home OSD is down, falls back to a degraded read
        (on-the-fly decode from k survivors).
        """
        return (
            yield from _ops.execute_read(self.ecfs, self.name, file_id, offset, size)
        )

    # --------------------------------------------------------- normal write
    def write_stripe(
        self, file_id: int, stripe: int, data: Optional[np.ndarray] = None
    ) -> Generator:
        """Process: full-stripe write — client-side encode, fan out k+m blocks."""
        ecfs = self.ecfs
        bs = ecfs.config.block_size
        k, m = ecfs.rs.k, ecfs.rs.m
        if data is None:
            data = self._payload_rng.integers(0, 256, k * bs, dtype=np.uint8)
        data = np.asarray(data, dtype=np.uint8)
        if data.shape[0] != k * bs:
            raise IntegrityError(f"stripe write needs {k * bs} bytes")
        blocks = [data[i * bs : (i + 1) * bs] for i in range(k)]
        # client-side encode: charge GF work for m parity blocks over k inputs
        yield self.env.timeout(ecfs.config.costs.gf_mul(k * bs, terms=m))
        parities = ecfs.rs.encode(blocks)

        if ecfs.config.macro_batching:
            yield spawn_fanout(
                self.env,
                [
                    self._send_block(BlockId(file_id, stripe, i), content)
                    for i, content in enumerate(blocks + parities)
                ],
            )
        else:
            sends = []
            for i, content in enumerate(blocks + parities):
                bid = BlockId(file_id, stripe, i)
                sends.append(
                    self.env.process(self._send_block(bid, content), name=f"w{bid}")
                )
            yield self.env.all_of(sends)
        ecfs.mds.mark_written(file_id, stripe * k * bs, k * bs)

    def _send_block(self, bid: BlockId, content: np.ndarray) -> Generator:
        ecfs = self.ecfs
        osd = ecfs.osd_hosting(bid)
        yield from ecfs.net.transfer(
            self.name, osd.name, content.shape[0] + ecfs.config.header_bytes
        )
        yield from osd.io_block(
            IOKind.WRITE, bid, 0, content.shape[0], IOPriority.FOREGROUND
        )
        if bid in osd.store:
            osd.store.write(bid, 0, content)
        else:
            osd.store.create(bid, content)
        if bid.idx < ecfs.rs.k:
            ecfs.oracle.apply(bid, 0, content)
            ecfs.oracle.applied_updates -= 1  # normal writes aren't updates
        yield from ecfs.net.transfer(osd.name, self.name, ecfs.config.ack_bytes)

    def _next_op(self) -> int:
        self._op_counter += 1
        return self.idx * 1_000_000_000 + self._op_counter
