"""Ground-truth oracle: end-to-end correctness of every update path.

Update methods call :meth:`GroundTruth.apply` at their commit point (the
moment an update is durably ordered).  After a run is drained/flushed, the
harness calls :meth:`verify_cluster` which checks, stripe by stripe, that

1. every data block in the OSD block stores equals the oracle's bytes, and
2. the parity blocks equal a fresh RS encode of the data blocks.

Any divergence raises :class:`IntegrityError` — the reproduction's tests
run every method through this oracle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.cluster.ids import BlockId
from repro.common.errors import IntegrityError
from repro.ec.rs import RSCode

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.ecfs import ECFS

__all__ = ["GroundTruth"]


class GroundTruth:
    """Mirror of committed data-block contents."""

    def __init__(self, block_size: int) -> None:
        self.block_size = block_size
        self._blocks: dict[BlockId, np.ndarray] = {}
        self.applied_updates = 0
        # copy-on-write zero template (bulk zero-fill populate registers
        # hundreds of blocks; most never see an update)
        self._zero = np.zeros(block_size, dtype=np.uint8)
        self._zero.flags.writeable = False

    def touch(self, block: BlockId) -> None:
        """Register a known-zero block without allocating (CoW template)."""
        self._blocks.setdefault(block, self._zero)

    def touch_many(self, blocks: Iterable[BlockId]) -> None:
        """Bulk :meth:`touch` for the zero-fill populate path."""
        zero = self._zero
        setdefault = self._blocks.setdefault
        for block in blocks:
            setdefault(block, zero)

    def adopt(self, block: BlockId, data: np.ndarray) -> None:
        """Register initial content zero-copy, outside update accounting.

        Stores a read-only view sharing the caller's buffer (the vectorized
        populate path carves blocks out of one backing matrix); the
        copy-on-write promotion in :meth:`apply` gives the block a private
        array on its first real update.  Does not count toward
        :attr:`applied_updates` — this is initial state, not an update.
        """
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != (self.block_size,):
            raise IntegrityError(
                f"oracle adopt: size {data.shape} != {self.block_size}"
            )
        if data.flags.writeable:
            data = data.view()
            data.flags.writeable = False
        self._blocks[block] = data

    def ensure(self, block: BlockId) -> np.ndarray:
        arr = self._blocks.get(block)
        if arr is None:
            arr = self._blocks[block] = self._zero
        return arr

    def apply(self, block: BlockId, offset: int, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.uint8)
        if offset < 0 or offset + data.shape[0] > self.block_size:
            raise IntegrityError("oracle write outside block")
        target = self._blocks.get(block)
        if target is None or target is self._zero:
            # CoW promotion on the first real write: calloc, not memcpy —
            # the zero template's contents are free to rematerialize
            target = self._blocks[block] = np.zeros(
                self.block_size, dtype=np.uint8
            )
        elif not target.flags.writeable:
            target = self._blocks[block] = target.copy()
        target[offset : offset + data.shape[0]] = data
        self.applied_updates += 1

    def expected(self, block: BlockId) -> np.ndarray:
        return self.ensure(block)

    def stripes(self) -> set[tuple[int, int]]:
        return {(b.file_id, b.stripe) for b in self._blocks}

    # ------------------------------------------------------------ checking
    def verify_stripe(
        self, ecfs: "ECFS", file_id: int, stripe: int, rs: RSCode
    ) -> None:
        data_blocks: list[np.ndarray] = []
        for i in range(rs.k):
            bid = BlockId(file_id, stripe, i)
            osd = ecfs.osd_hosting(bid)
            got = osd.store.view(bid) if bid in osd.store else np.zeros(
                self.block_size, dtype=np.uint8
            )
            want = self.expected(bid)
            if not np.array_equal(got, want):
                diff = int(np.count_nonzero(got != want))
                raise IntegrityError(
                    f"stripe f{file_id}.s{stripe}: data block {i} diverges from "
                    f"oracle in {diff} bytes"
                )
            data_blocks.append(np.asarray(got))
        expected_parity = rs.encode(data_blocks)
        for j in range(rs.m):
            bid = BlockId(file_id, stripe, rs.k + j)
            osd = ecfs.osd_hosting(bid)
            got = osd.store.view(bid) if bid in osd.store else np.zeros(
                self.block_size, dtype=np.uint8
            )
            if not np.array_equal(np.asarray(got), expected_parity[j]):
                diff = int(np.count_nonzero(np.asarray(got) != expected_parity[j]))
                raise IntegrityError(
                    f"stripe f{file_id}.s{stripe}: parity block {j} stale "
                    f"({diff} bytes differ)"
                )

    def verify_cluster(
        self, ecfs: "ECFS", rs: RSCode, stripes: Iterable[tuple[int, int]] | None = None
    ) -> int:
        """Verify all (or the given) stripes; returns stripes checked."""
        todo = sorted(stripes if stripes is not None else self.stripes())
        for file_id, stripe in todo:
            self.verify_stripe(ecfs, file_id, stripe, rs)
        return len(todo)
