"""Background stripe scrubbing: proactive parity-consistency checking.

Production EC systems continuously re-read stripes and verify that parity
matches data, catching silent corruption (bit rot, lost writes) before a
second failure makes it unrecoverable.  The scrubber walks every known
stripe at a bounded rate, reads all k+m blocks (charged to the devices at
background priority), re-encodes, and reports mismatches.

With ``repair=True`` the scrubber also *fixes* what it finds: blocks whose
read hits a latent sector error (the drive's per-sector checksum fails —
modelled by :attr:`BlockStore.corrupted`) are reconstructed by RS decode
from the stripe's healthy blocks, rewritten in place, and marked clean.
Up to m bad blocks per stripe are repairable; beyond that the stripe is
reported unrecoverable.

Stripes with outstanding log debt are *skipped* (their parity legitimately
lags until recycling catches up) — under TSUE's real-time recycling this
window is small, which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.background.work import ScrubOp
from repro.cluster.ids import BlockId
from repro.storage.base import IOKind, IOPriority

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.ecfs import ECFS

__all__ = ["ScrubReport", "Scrubber"]


@dataclass
class ScrubReport:
    stripes_checked: int = 0
    stripes_skipped: int = 0  # log debt or failed node
    mismatches: list[tuple[int, int, int]] = field(default_factory=list)
    # (file_id, stripe, parity row)
    latent_errors: list[BlockId] = field(default_factory=list)
    repaired: list[BlockId] = field(default_factory=list)
    unrecoverable: list[tuple[int, int]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.mismatches and not self.latent_errors


class Scrubber:
    """Walks stripes verifying parity consistency on the live cluster.

    ``freeze=True`` is the under-load mode: instead of skipping stripes with
    in-flight activity, the scrubber waits for settlement and holds the
    recovery-style stripe freeze across its reads, so a concurrent update
    can never tear the capture into a spurious mismatch.  Combined with the
    unified background scheduler's ``scrub`` stream pacing, this is what
    makes continuous scrubbing under foreground traffic safe.
    """

    def __init__(
        self,
        ecfs: "ECFS",
        stripes_per_pass: int | None = None,
        repair: bool = False,
        freeze: bool = False,
    ) -> None:
        self.ecfs = ecfs
        self.stripes_per_pass = stripes_per_pass
        self.repair = repair
        self.freeze = freeze

    def scrub(self) -> Generator:
        """Process: one full pass; returns a :class:`ScrubReport`."""
        ecfs = self.ecfs
        report = ScrubReport()
        stripes = sorted({(b.file_id, b.stripe) for b in ecfs.known_blocks})
        if self.stripes_per_pass is not None:
            stripes = stripes[: self.stripes_per_pass]
        for file_id, stripe in stripes:
            if self._should_skip(file_id, stripe):
                report.stripes_skipped += 1
                continue
            yield from self._scrub_stripe(file_id, stripe, report)
        return report

    # ------------------------------------------------------------ internals
    def _should_skip(self, file_id: int, stripe: int) -> bool:
        ecfs = self.ecfs
        width = ecfs.rs.k + ecfs.rs.m
        if self.freeze:
            # under-load mode waits activity out instead of skipping it;
            # only a down host makes the stripe unscannable
            return any(
                ecfs.osd_hosting(BlockId(file_id, stripe, i)).failed
                for i in range(width)
            )
        # parity legitimately lags while deltas are in flight, buffered for
        # a bounced node, or awaiting a degraded-stripe resync (cheap check
        # first; the per-host loop only runs for quiescent stripes)
        if not ecfs.stripe_quiescent(file_id, stripe):
            return True
        for i in range(width):
            osd = ecfs.osd_hosting(BlockId(file_id, stripe, i))
            # a down host, or outstanding log debt (parity may lag)
            if osd.failed or ecfs.method.log_debt_bytes(osd) > 0:
                return True
        return False

    def _scrub_stripe(self, file_id: int, stripe: int, report: ScrubReport) -> Generator:
        ecfs = self.ecfs
        # unified maintenance plane: one scrub-stream grant per stripe scan
        # (k+m block reads), charged to the primary data host and obtained
        # BEFORE any freeze — a throttled scrub spaces its stripe scans out
        # but never holds a stripe frozen while waiting for tokens
        width = ecfs.rs.k + ecfs.rs.m
        yield from ecfs.background.request(
            ScrubOp(
                osd=ecfs.osd_hosting(BlockId(file_id, stripe, 0)).name,
                nbytes=width * ecfs.config.block_size,
                tag="scrub",
            )
        )
        if self.freeze:
            yield from ecfs.settle_stripe(file_id, stripe)
            ecfs.freeze_stripe(file_id, stripe)
            try:
                if any(
                    ecfs.osd_hosting(BlockId(file_id, stripe, i)).failed
                    for i in range(width)
                ):
                    report.stripes_skipped += 1  # a host died while we waited
                    return
                yield from self._scrub_stripe_body(file_id, stripe, report)
            finally:
                ecfs.thaw_stripe(file_id, stripe)
            return
        # the paced grant may have waited out arbitrary sim time: re-check
        # the skip conditions so a stripe that went busy during the wait is
        # skipped (not read torn and reported as a spurious mismatch).  A
        # disabled scheduler grants instantly — nothing can have changed
        # since scrub() checked one statement earlier.
        if ecfs.background.enabled and self._should_skip(file_id, stripe):
            report.stripes_skipped += 1
            return
        yield from self._scrub_stripe_body(file_id, stripe, report)

    def _scrub_stripe_body(
        self, file_id: int, stripe: int, report: ScrubReport
    ) -> Generator:
        ecfs = self.ecfs
        env = ecfs.env
        bs = ecfs.config.block_size
        width = ecfs.rs.k + ecfs.rs.m
        blocks: list[np.ndarray] = []
        bad: list[int] = []  # stripe indices whose read hit a sector error
        for i in range(width):
            bid = BlockId(file_id, stripe, i)
            osd = ecfs.osd_hosting(bid)
            yield from osd.io_block(
                IOKind.READ, bid, 0, bs, IOPriority.BACKGROUND, tag="scrub"
            )
            if bid in osd.store.corrupted:
                bad.append(i)
                report.latent_errors.append(bid)
            blocks.append(
                osd.store.read(bid) if bid in osd.store
                else np.zeros(bs, dtype=np.uint8)
            )
        if bad and self.repair:
            if len(bad) > ecfs.rs.m:
                report.unrecoverable.append((file_id, stripe))
            else:
                yield from self._repair(file_id, stripe, bad, blocks)
                for i in bad:
                    report.repaired.append(BlockId(file_id, stripe, i))
        yield env.timeout(ecfs.config.costs.gf_mul(bs * ecfs.rs.k, terms=ecfs.rs.m))
        expected = ecfs.rs.encode(blocks[: ecfs.rs.k])
        for j in range(ecfs.rs.m):
            if not np.array_equal(expected[j], blocks[ecfs.rs.k + j]):
                report.mismatches.append((file_id, stripe, j))
        report.stripes_checked += 1

    def _repair(
        self, file_id: int, stripe: int, bad: list[int], blocks: list[np.ndarray]
    ) -> Generator:
        """Reconstruct the bad blocks from the healthy ones, rewrite them."""
        ecfs = self.ecfs
        env = ecfs.env
        bs = ecfs.config.block_size
        width = ecfs.rs.k + ecfs.rs.m
        good = [i for i in range(width) if i not in bad][: ecfs.rs.k]
        available = {i: blocks[i] for i in good}
        yield env.timeout(
            ecfs.config.costs.gf_mul(bs, terms=ecfs.rs.k) * len(bad)
        )
        fixed = ecfs.rs.decode(available, bad)
        for i in bad:
            bid = BlockId(file_id, stripe, i)
            osd = ecfs.osd_hosting(bid)
            yield from osd.io_block(
                IOKind.WRITE, bid, 0, bs, IOPriority.BACKGROUND,
                overwrite=True, tag="scrub-repair",
            )
            osd.store.write(bid, 0, fixed[i])
            osd.store.mark_clean(bid)
            blocks[i] = fixed[i]
        # repair rewrites real blocks without freezing the stripe: void
        # any precomputed bulk-drain deltas that read the old bytes
        if ecfs.bulk is not None:
            ecfs.bulk.note_churn()
