"""Background stripe scrubbing: proactive parity-consistency checking.

Production EC systems continuously re-read stripes and verify that parity
matches data, catching silent corruption (bit rot, lost writes) before a
second failure makes it unrecoverable.  The scrubber walks every known
stripe at a bounded rate, reads all k+m blocks (charged to the devices at
background priority), re-encodes, and reports mismatches.

Stripes with outstanding log debt are *skipped* (their parity legitimately
lags until recycling catches up) — under TSUE's real-time recycling this
window is small, which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.cluster.ids import BlockId
from repro.storage.base import IOKind, IOPriority

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.ecfs import ECFS

__all__ = ["ScrubReport", "Scrubber"]


@dataclass
class ScrubReport:
    stripes_checked: int = 0
    stripes_skipped: int = 0  # log debt or failed node
    mismatches: list[tuple[int, int, int]] = field(default_factory=list)
    # (file_id, stripe, parity row)

    @property
    def clean(self) -> bool:
        return not self.mismatches


class Scrubber:
    """Walks stripes verifying parity consistency on the live cluster."""

    def __init__(self, ecfs: "ECFS", stripes_per_pass: int | None = None) -> None:
        self.ecfs = ecfs
        self.stripes_per_pass = stripes_per_pass

    def scrub(self) -> Generator:
        """Process: one full pass; returns a :class:`ScrubReport`."""
        ecfs = self.ecfs
        report = ScrubReport()
        stripes = sorted({(b.file_id, b.stripe) for b in ecfs.known_blocks})
        if self.stripes_per_pass is not None:
            stripes = stripes[: self.stripes_per_pass]
        for file_id, stripe in stripes:
            if self._should_skip(file_id, stripe):
                report.stripes_skipped += 1
                continue
            yield from self._scrub_stripe(file_id, stripe, report)
        return report

    # ------------------------------------------------------------ internals
    def _should_skip(self, file_id: int, stripe: int) -> bool:
        ecfs = self.ecfs
        for i in range(ecfs.rs.k + ecfs.rs.m):
            bid = BlockId(file_id, stripe, i)
            osd = ecfs.osd_hosting(bid)
            if osd.failed:
                return True
            # outstanding log debt on a hosting node: parity may lag
            if ecfs.method.log_debt_bytes(osd) > 0:
                return True
        return False

    def _scrub_stripe(self, file_id: int, stripe: int, report: ScrubReport) -> Generator:
        ecfs = self.ecfs
        env = ecfs.env
        bs = ecfs.config.block_size
        blocks: list[np.ndarray] = []
        for i in range(ecfs.rs.k + ecfs.rs.m):
            bid = BlockId(file_id, stripe, i)
            osd = ecfs.osd_hosting(bid)
            yield from osd.io_block(
                IOKind.READ, bid, 0, bs, IOPriority.BACKGROUND, tag="scrub"
            )
            blocks.append(
                osd.store.read(bid) if bid in osd.store
                else np.zeros(bs, dtype=np.uint8)
            )
        yield env.timeout(ecfs.config.costs.gf_mul(bs * ecfs.rs.k, terms=ecfs.rs.m))
        expected = ecfs.rs.encode(blocks[: ecfs.rs.k])
        for j in range(ecfs.rs.m):
            if not np.array_equal(expected[j], blocks[ecfs.rs.k + j]):
                report.mismatches.append((file_id, stripe, j))
        report.stripes_checked += 1
