"""ECFS — the erasure-coded cluster file system substrate (§4).

Actors (MDS, OSDs, clients) live on one DES :class:`~repro.sim.Environment`
and exchange bytes through a :class:`~repro.net.NetworkFabric`.  Update
semantics are pluggable per :mod:`repro.update` method.
"""

from repro.cluster.ids import BlockId, BlockKind, block_kind
from repro.cluster.config import CPUCosts, ClusterConfig
from repro.cluster.layout import Placement  # rotation policy (compat alias)
from repro.cluster.mds import MDS
from repro.cluster.osd import OSD
from repro.cluster.client import Client, UpdateOp
from repro.cluster.ecfs import ECFS
from repro.cluster.verify import GroundTruth
from repro.cluster.recovery import RecoveryManager, RecoveryReport
from repro.cluster.degraded import degraded_read
from repro.cluster.heartbeat import HeartbeatService

__all__ = [
    "BlockId",
    "BlockKind",
    "block_kind",
    "CPUCosts",
    "ClusterConfig",
    "Placement",
    "MDS",
    "OSD",
    "Client",
    "UpdateOp",
    "ECFS",
    "GroundTruth",
    "RecoveryManager",
    "RecoveryReport",
    "degraded_read",
    "HeartbeatService",
]
