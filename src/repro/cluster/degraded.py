"""Degraded reads: serve data whose home OSD is down by on-the-fly decode.

Until recovery re-homes a failed node's blocks, reads targeting them must
reconstruct the requested range from any k surviving blocks of the stripe —
the "degraded read" path every production EC system implements.  Only the
requested byte range of each surviving block is read (range decode), since
RS decoding is positional.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.cluster.ids import BlockId
from repro.common.errors import DecodeError
from repro.storage.base import IOKind, IOPriority

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.ecfs import ECFS

__all__ = ["degraded_read"]


def degraded_read(
    ecfs: "ECFS", block: BlockId, offset: int, size: int, requester: str
) -> Generator:
    """Process: reconstruct ``block[offset:offset+size]`` from survivors.

    ``requester`` is the network node performing the decode (typically the
    client); surviving fragments are shipped to it before decoding.
    Returns the reconstructed bytes.
    """
    rs = ecfs.rs
    sources: list[BlockId] = []
    for i in range(rs.k + rs.m):
        if i == block.idx:
            continue
        sid = BlockId(block.file_id, block.stripe, i)
        host = ecfs.osd_hosting(sid)
        # a survivor must be alive AND reachable from the requester: a
        # partitioned (not failed) host would park the fetch until the
        # heal, which defeats the point of reconstructing around it —
        # this is what lets a hedged read dodge a network cut
        if not host.failed and ecfs.net.reachable(requester, host.name):
            sources.append(sid)
        if len(sources) == rs.k:
            break
    if len(sources) < rs.k:
        raise DecodeError(
            f"degraded read of {block}: only {len(sources)} survivors"
        )

    env = ecfs.env
    fetches = [
        env.process(_fetch_range(ecfs, sid, offset, size, requester), name=f"dr-{sid}")
        for sid in sources
    ]
    results = yield env.all_of(fetches)
    available = {sid.idx: results[f] for sid, f in zip(sources, fetches)}
    # positional decode over just the requested range
    yield env.timeout(ecfs.config.costs.gf_mul(size, terms=rs.k))
    rebuilt = rs.decode(available, [block.idx])[block.idx]
    # acked-but-unrecycled updates live on in the (replicated) logs: overlay
    # them so the degraded read is never stale (§4.2)
    rebuilt = yield env.process(
        ecfs.method.degraded_overlay(block, offset, size, rebuilt)
    )
    return rebuilt


def _fetch_range(
    ecfs: "ECFS", sid: BlockId, offset: int, size: int, requester: str
) -> Generator:
    osd = ecfs.osd_hosting(sid)
    yield from ecfs.net.transfer(requester, osd.name, ecfs.config.header_bytes)
    # consult the update method's read path so logs/caches are honoured
    data = yield ecfs.env.process(
        ecfs.method.handle_read(osd, sid, offset, size)
    )
    yield from ecfs.net.transfer(osd.name, requester, size)
    return np.asarray(data, dtype=np.uint8)
