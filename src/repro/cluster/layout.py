"""Deterministic block placement across OSDs.

Each stripe's ``k+m`` blocks land on ``k+m`` distinct OSDs, rotated by a
per-stripe hash so data and parity load spread evenly (parity blocks of
different stripes live on different nodes).  The DataLog replica for a data
block goes to the *next* OSD in the stripe's rotation that hosts none of the
stripe's blocks — or, when n_osds == k+m, to the neighbour node, matching the
paper's REP-DataLog-S(X±1) layout in Fig. 4.
"""

from __future__ import annotations

from repro.cluster.ids import BlockId

__all__ = ["Placement"]

_HASH_MIX = 0x9E3779B97F4A7C15


def _mix(*values: int) -> int:
    h = 0
    for v in values:
        h ^= (v + _HASH_MIX + (h << 6) + (h >> 2)) & 0xFFFFFFFFFFFFFFFF
    return h


class Placement:
    """Pure function (config) -> node index for every block/replica/pool."""

    def __init__(self, n_osds: int, k: int, m: int, log_pools: int = 4) -> None:
        if n_osds < k + m:
            raise ValueError("need n_osds >= k+m")
        self.n_osds = n_osds
        self.k = k
        self.m = m
        self.log_pools = log_pools
        # placement is a pure function of the block id, and the hot paths
        # resolve the same few thousand blocks millions of times: memoize
        self._osd_cache: dict[BlockId, int] = {}
        self._pool_cache: dict[BlockId, int] = {}

    # ------------------------------------------------------------------ API
    def stripe_base(self, file_id: int, stripe: int) -> int:
        """First OSD of the stripe's rotation."""
        return _mix(file_id, stripe) % self.n_osds

    def osd_of(self, block: BlockId) -> int:
        """Node index hosting ``block``."""
        idx = self._osd_cache.get(block)
        if idx is None:
            if not 0 <= block.idx < self.k + self.m:
                raise ValueError(f"block idx {block.idx} outside stripe width")
            idx = (
                self.stripe_base(block.file_id, block.stripe) + block.idx
            ) % self.n_osds
            self._osd_cache[block] = idx
        return idx

    def stripe_osds(self, file_id: int, stripe: int) -> list[int]:
        base = self.stripe_base(file_id, stripe)
        return [(base + i) % self.n_osds for i in range(self.k + self.m)]

    def parity_osds(self, file_id: int, stripe: int) -> list[int]:
        base = self.stripe_base(file_id, stripe)
        return [(base + self.k + j) % self.n_osds for j in range(self.m)]

    def replica_osd(self, block: BlockId) -> int:
        """Node hosting the DataLog replica for a data block: the next node
        after the stripe's span (wraps to base+idx+1 when the stripe covers
        every node)."""
        used = set(self.stripe_osds(block.file_id, block.stripe))
        home = self.osd_of(block)
        if len(used) < self.n_osds:
            cand = (self.stripe_base(block.file_id, block.stripe) + self.k + self.m) % self.n_osds
            while cand in used:
                cand = (cand + 1) % self.n_osds
            return cand
        return (home + 1) % self.n_osds

    def pool_of(self, block: BlockId) -> int:
        """Log pool index for a block — hash of (inode, stripe, block) §3.2.1."""
        pool = self._pool_cache.get(block)
        if pool is None:
            pool = _mix(block.file_id, block.stripe, block.idx) % self.log_pools
            self._pool_cache[block] = pool
        return pool
