"""Back-compat shim: placement moved to :mod:`repro.placement`.

The seed's ``Placement`` rotation layout lives on, byte-identical, as
:class:`repro.placement.rotation.RotationPolicy`; the cluster now consults
an epoch-aware :class:`repro.placement.epoch.PlacementMap` instead of a
bare policy.  Importing ``Placement`` from here keeps old call sites and
notebooks working.
"""

from __future__ import annotations

from repro.placement.rotation import RotationPolicy as Placement

__all__ = ["Placement"]
