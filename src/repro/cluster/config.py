"""Cluster-wide configuration and the CPU cost model."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.background.config import BackgroundConfig
from repro.common.errors import ConfigError
from repro.common.units import MiB

__all__ = ["CPUCosts", "ClusterConfig"]


@dataclass(frozen=True)
class CPUCosts:
    """Per-byte compute charges for the DES (vectorized-GF-on-CPU class).

    These make computation *visible* but small relative to I/O, as on the
    paper's testbed (SIMD GF multiply runs at several GB/s per core).
    """

    xor_per_byte: float = 0.1e-9
    gf_mul_per_byte: float = 0.4e-9
    op_fixed: float = 1.0e-6  # request handling / context switching

    def xor(self, nbytes: int) -> float:
        return self.op_fixed + nbytes * self.xor_per_byte

    def gf_mul(self, nbytes: int, terms: int = 1) -> float:
        return self.op_fixed + nbytes * self.gf_mul_per_byte * max(1, terms)


@dataclass
class ClusterConfig:
    """Geometry + sizing for one ECFS deployment."""

    n_osds: int = 16
    k: int = 6
    m: int = 4
    block_size: int = 1 * MiB
    matrix_kind: str = "cauchy"
    device: str = "ssd"  # "ssd" | "hdd"
    # placement: policy + failure-domain topology (repro.placement)
    placement_policy: str = "rotation"  # "rotation" | "crush"
    osds_per_host: int = 1
    hosts_per_rack: int = 4
    failure_domain: str = "host"  # "host" | "rack"
    # TSUE log sizing (per pool); §5.3.2: unit 16 MiB, 2..20 units, 4 pools
    log_unit_size: int = 4 * MiB
    log_min_units: int = 2
    log_max_units: int = 4
    log_pools: int = 4
    recycle_lanes: int = 4
    # deferred-recycle watermarks (PL-style node-wide logs): recycling is
    # triggered when a node's log passes the high watermark and drains it
    # back below the low one.  Formerly a module constant in repro.update.pl
    # (the config-drift fix); the defaults are large enough that bounded
    # experiment runs never trigger, matching the historical behavior.
    recycle_high_watermark: int = 1 << 30
    recycle_low_watermark: int = 1 << 29
    # unified background-work scheduler (repro.background): disabled by
    # default — the four maintenance streams then pace themselves exactly
    # as they historically did
    background: BackgroundConfig = field(default_factory=BackgroundConfig)
    # control-plane message sizes
    header_bytes: int = 200
    ack_bytes: int = 64
    costs: CPUCosts = field(default_factory=CPUCosts)
    # macro-op fan-out batching (repro.sim.batch): steady-state k+m fan-outs
    # run as one latch + flat event chains instead of one process per shard.
    # The per-leg path is kept as the equivalence oracle — digests must be
    # byte-identical either way (tests/test_macro_batching_equivalence.py).
    macro_batching: bool = True
    # table-driven steady-state write schedules (repro.sim.schedule): an
    # uncontended write runs as one precompiled slot table instead of a
    # 4-6 frame generator tower, bailing back to the generator path on any
    # contention/fault/churn check.  Kept as a flag so the generator path
    # remains the equivalence oracle (tests/test_request_schedules.py);
    # inert unless macro_batching is also on (the slot tables fan out
    # through the batched event structure).
    request_schedules: bool = True
    # bulk recycle/drain plane (repro.sim.bulk): when a drain or watermark
    # recycle has several settleable log units queued, live extents are
    # gathered in one pass, merged deltas applied with one GF gather per
    # stripe column, and parity regenerated side by side
    # (RSCode.encode_partial) — pure host-side precompute consumed at the
    # same yield points, so the simulated event structure is untouched.
    # The per-unit/per-extent recycler stays in the tree as the byte-exact
    # equivalence oracle (tests/test_bulk_drain.py).
    bulk_drain: bool = True
    seed: int = 2025

    def validate(self) -> None:
        if self.n_osds < self.k + self.m:
            raise ConfigError(
                f"{self.n_osds} OSDs cannot host RS({self.k},{self.m}) stripes "
                f"({self.k + self.m} distinct nodes required)"
            )
        if self.block_size <= 0:
            raise ConfigError("block_size must be positive")
        if self.device not in ("ssd", "hdd"):
            raise ConfigError(f"unknown device kind {self.device!r}")
        if self.log_unit_size <= 0 or self.log_pools < 1:
            raise ConfigError("invalid log sizing")
        if self.placement_policy not in ("rotation", "crush"):
            raise ConfigError(
                f"unknown placement policy {self.placement_policy!r}"
            )
        if self.failure_domain not in ("host", "rack"):
            raise ConfigError(f"unknown failure domain {self.failure_domain!r}")
        if self.osds_per_host < 1 or self.hosts_per_rack < 1:
            raise ConfigError("invalid topology sizing")
        if not 0 < self.recycle_low_watermark <= self.recycle_high_watermark:
            raise ConfigError(
                "recycle watermarks must satisfy 0 < low <= high "
                f"(got low={self.recycle_low_watermark}, "
                f"high={self.recycle_high_watermark})"
            )
        try:
            self.background.validate()
        except ValueError as exc:
            raise ConfigError(str(exc)) from None

    @property
    def stripe_width(self) -> int:
        return self.k + self.m

    @property
    def stripe_data_bytes(self) -> int:
        return self.k * self.block_size
