"""Object storage device server (OSD): one node's disk, block store, logs.

The OSD provides the primitives update methods compose:

* :meth:`io_block` — charge device time for an in-place block read/write at
  the block's real disk address (random unless the caller streams),
* :meth:`io_log_append` — charge a sequential append on a named log stream,
* :meth:`io_at` — raw addressed I/O (PLR's reserved-space appends use this
  so appends to many parity blocks' reserved areas look random, as §2.2
  describes).

Actual block bytes live in :attr:`store`; update methods move real data so
stripes remain verifiable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Hashable

from repro.common.errors import IntegrityError, UnavailableError
from repro.sim import Environment, Resource
from repro.storage.base import IOKind, IOPriority, IORequest, StorageDevice
from repro.storage.blockstore import BlockStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.update.base import UpdateMethod

__all__ = ["OSD"]


class OSD:
    """One storage node."""

    #: disk region where log streams live, far from block storage
    _LOG_REGION = 1 << 42

    def __init__(
        self,
        env: Environment,
        idx: int,
        device: StorageDevice,
        block_size: int,
    ) -> None:
        self.env = env
        self.idx = idx
        self.name = f"osd{idx}"
        self.device = device
        self.block_size = block_size
        self.store = BlockStore(block_size)
        self.failed = False
        self.method: "UpdateMethod | None" = None

        self._block_addr: dict[Hashable, int] = {}
        self._next_block_slot = 0
        self._log_cursor: dict[str, int] = {}
        self._block_locks: dict[Hashable, Resource] = {}
        # hoisted per-stream strings/addresses: the recycler and log-append
        # inner loops hit these helpers once per I/O, and the f-string +
        # hash were measurable there
        self._stream_names: dict[str, str] = {}
        self._log_bases: dict[str, int] = {}

    def _qualified_stream(self, stream: str) -> str:
        name = self._stream_names.get(stream)
        if name is None:
            name = self._stream_names[stream] = f"{self.name}:{stream}"
        return name

    def _log_base(self, stream: str) -> int:
        base = self._log_bases.get(stream)
        if base is None:
            base = self._log_bases[stream] = self._LOG_REGION + (
                hash(stream) & 0xFFFF
            ) * (1 << 34)
        return base

    def _lane_priority(self, priority: int) -> int:
        """Apply the active process's scheduling lane (if any) as a priority
        floor — a deadline-demoted front-end request tree issues all further
        device I/O at its lane's (weaker) priority, end-to-end, without the
        call sites threading priority through every layer."""
        proc = self.env.active_process
        if proc is not None and proc.lane is not None:
            return proc.lane.floor(priority)
        return priority

    def block_lock(self, block_id: Hashable) -> Resource:
        """Per-block mutex (§4: block-level locking for concurrent updates).

        Read-modify-write update paths must hold this across their read and
        write so concurrent updates to one block cannot lose deltas.
        """
        lock = self._block_locks.get(block_id)
        if lock is None:
            lock = self._block_locks[block_id] = Resource(self.env, capacity=1)
        return lock

    # ----------------------------------------------------------- addresses
    def block_addr(self, block_id: Hashable) -> int:
        """Disk base address of a block (allocated on first touch)."""
        addr = self._block_addr.get(block_id)
        if addr is None:
            addr = self._next_block_slot * self.block_size
            self._block_addr[block_id] = addr
            self._next_block_slot += 1
        return addr

    # ------------------------------------------------------------ device IO
    def io_block(
        self,
        kind: IOKind,
        block_id: Hashable,
        offset: int,
        size: int,
        priority: int = IOPriority.FOREGROUND,
        overwrite: bool = False,
        tag: str = "",
    ) -> Generator:
        """In-place block I/O at the block's disk address."""
        self._check_alive()
        if offset < 0 or size <= 0 or offset + size > self.block_size:
            raise IntegrityError(
                f"{self.name}: I/O [{offset},{offset+size}) outside block"
            )
        req = IORequest(
            kind=kind,
            offset=self.block_addr(block_id) + offset,
            size=size,
            stream="blocks",
            priority=self._lane_priority(priority),
            overwrite=overwrite and kind is IOKind.WRITE,
            tag=tag,
        )
        yield from self.device.submit(req)

    def io_log_append(
        self,
        stream: str,
        size: int,
        priority: int = IOPriority.FOREGROUND,
        tag: str = "",
    ) -> Generator:
        """Sequential append of ``size`` bytes on log stream ``stream``."""
        self._check_alive()
        cursor = self._log_cursor.get(stream, 0)
        req = IORequest(
            kind=IOKind.WRITE,
            offset=self._log_base(stream) + cursor,
            size=size,
            stream=self._qualified_stream(stream),
            priority=self._lane_priority(priority),
            overwrite=False,
            tag=tag,
        )
        self._log_cursor[stream] = cursor + size
        yield from self.device.submit(req)

    def io_at(
        self,
        kind: IOKind,
        addr: int,
        size: int,
        stream: str,
        priority: int = IOPriority.FOREGROUND,
        overwrite: bool = False,
        tag: str = "",
    ) -> Generator:
        """Raw addressed I/O (reserved-space log schemes)."""
        self._check_alive()
        req = IORequest(
            kind=kind,
            offset=addr,
            size=size,
            stream=self._qualified_stream(stream),
            priority=self._lane_priority(priority),
            overwrite=overwrite and kind is IOKind.WRITE,
            tag=tag,
        )
        yield from self.device.submit(req)

    # ----------------------------------------- batched (chain) device IO
    # Chain twins of the generators above: same validation, addressing,
    # lane-floor priority, and cursor mutation at the call tick — but the
    # device I/O runs as a flat event chain instead of a generator frame.
    # Liveness/range errors raise synchronously, which matches the legacy
    # helpers (their bodies run at the call tick under ``yield from``);
    # fan-out starters catch and fail the leg, as a leg process would.

    def io_block_c(
        self,
        kind: IOKind,
        block_id: Hashable,
        offset: int,
        size: int,
        priority: int = IOPriority.FOREGROUND,
        overwrite: bool = False,
        tag: str = "",
    ):
        self._check_alive()
        if offset < 0 or size <= 0 or offset + size > self.block_size:
            raise IntegrityError(
                f"{self.name}: I/O [{offset},{offset+size}) outside block"
            )
        req = IORequest(
            kind=kind,
            offset=self.block_addr(block_id) + offset,
            size=size,
            stream="blocks",
            priority=self._lane_priority(priority),
            overwrite=overwrite and kind is IOKind.WRITE,
            tag=tag,
        )
        return self.device.submit_chain(req)

    def io_log_append_c(
        self,
        stream: str,
        size: int,
        priority: int = IOPriority.FOREGROUND,
        tag: str = "",
    ):
        self._check_alive()
        cursor = self._log_cursor.get(stream, 0)
        req = IORequest(
            kind=IOKind.WRITE,
            offset=self._log_base(stream) + cursor,
            size=size,
            stream=self._qualified_stream(stream),
            priority=self._lane_priority(priority),
            overwrite=False,
            tag=tag,
        )
        self._log_cursor[stream] = cursor + size
        return self.device.submit_chain(req)

    def io_at_c(
        self,
        kind: IOKind,
        addr: int,
        size: int,
        stream: str,
        priority: int = IOPriority.FOREGROUND,
        overwrite: bool = False,
        tag: str = "",
    ):
        self._check_alive()
        req = IORequest(
            kind=kind,
            offset=addr,
            size=size,
            stream=self._qualified_stream(stream),
            priority=self._lane_priority(priority),
            overwrite=overwrite and kind is IOKind.WRITE,
            tag=tag,
        )
        return self.device.submit_chain(req)

    # ------------------------------------------------------------- failure
    def fail(self) -> None:
        """Take the node down; blocks remain lost until recovery rebuilds."""
        self.failed = True
        self._note_churn()

    def restart(self) -> None:
        """Bring a transiently-down node back with its contents intact.

        Used by the fault injector's bounce/rolling-restart path (no rebuild
        happened); use :meth:`repro.cluster.ecfs.ECFS.restart_osd` so the
        MDS and the update method hear about it too.
        """
        self.failed = False
        self._note_churn()

    def _note_churn(self) -> None:
        """Invalidate the schedule fast path's cached steadiness probe and
        any precomputed bulk-drain deltas — every fail/restart site in the
        tree funnels through :meth:`fail` / :meth:`restart`, so the caches
        can only ever be stale in the conservative direction."""
        method = self.method
        if method is not None:
            engine = method.ecfs.schedules
            if engine is not None:
                engine.note_churn()
            bulk = method.ecfs.bulk
            if bulk is not None:
                bulk.note_churn()

    def recover_to(self, replacement: "OSD") -> None:  # pragma: no cover - doc
        raise NotImplementedError("use repro.cluster.recovery.RecoveryManager")

    def _check_alive(self) -> None:
        if self.failed:
            raise UnavailableError(f"{self.name} has failed")

    def __repr__(self) -> str:
        return f"<OSD {self.name} blocks={len(self.store)}>"
