"""Metadata server: namespace, block locations, write/update classification.

Per §4.3 the MDS keeps a page-level bitmap per file; an incoming write whose
pages are all already-written is classified as an *update* (routed to the
data OSD's update path), otherwise as a *normal write* (client-side encode +
full-stripe placement).  The MDS also watches OSD heartbeats and triggers
recovery when one goes silent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.cluster.ids import BlockId
from repro.common.errors import IntegrityError
from repro.placement.epoch import PlacementMap

__all__ = ["FileMeta", "MDS"]

_PAGE = 4096


@dataclass
class FileMeta:
    file_id: int
    size: int
    written: np.ndarray  # page bitmap

    def pages(self, offset: int, size: int) -> slice:
        return slice(offset // _PAGE, -(-(offset + size) // _PAGE))


class MDS:
    """Namespace + placement oracle + heartbeat monitor."""

    def __init__(self, placement: PlacementMap, block_size: int) -> None:
        self.placement = placement
        self.block_size = block_size
        self.files: dict[int, FileMeta] = {}
        self._next_file_id = 1
        self.heartbeats: dict[int, float] = {}
        self.failed: set[int] = set()
        self.on_failure: Optional[Callable[[int], None]] = None
        self.heartbeat_timeout = 5.0

    # ----------------------------------------------------------- namespace
    def create_file(self, size: int) -> FileMeta:
        if size <= 0:
            raise IntegrityError("file size must be positive")
        fid = self._next_file_id
        self._next_file_id += 1
        npages = -(-size // _PAGE)
        meta = FileMeta(fid, size, np.zeros(npages, dtype=bool))
        self.files[fid] = meta
        return meta

    def lookup(self, file_id: int) -> FileMeta:
        try:
            return self.files[file_id]
        except KeyError:
            raise IntegrityError(f"no such file {file_id}") from None

    def classify(self, file_id: int, offset: int, size: int) -> str:
        """"update" if every touched page was written before, else "write"."""
        meta = self.lookup(file_id)
        if offset + size > meta.size:
            raise IntegrityError(
                f"write [{offset}, {offset + size}) beyond file size {meta.size}"
            )
        pages = meta.pages(offset, size)
        return "update" if bool(meta.written[pages].all()) else "write"

    def mark_written(self, file_id: int, offset: int, size: int) -> None:
        meta = self.lookup(file_id)
        meta.written[meta.pages(offset, size)] = True

    # ------------------------------------------------------------ location
    def locate(self, file_id: int, offset: int, k: int) -> tuple[BlockId, int]:
        """Map a file byte offset to (data BlockId, in-block offset)."""
        meta = self.lookup(file_id)
        if offset >= meta.size:
            raise IntegrityError(f"offset {offset} beyond EOF {meta.size}")
        stripe_bytes = k * self.block_size
        stripe = offset // stripe_bytes
        within = offset % stripe_bytes
        idx = within // self.block_size
        return BlockId(file_id, stripe, idx), within % self.block_size

    def n_stripes(self, file_id: int, k: int) -> int:
        meta = self.lookup(file_id)
        return -(-meta.size // (k * self.block_size))

    # ----------------------------------------------------------- liveness
    def heartbeat(self, osd_idx: int, now: float) -> None:
        self.heartbeats[osd_idx] = now

    def check_liveness(self, now: float) -> list[int]:
        """Return OSDs newly declared failed; fires ``on_failure`` for each."""
        newly = [
            idx
            for idx, last in self.heartbeats.items()
            if idx not in self.failed and now - last > self.heartbeat_timeout
        ]
        for idx in newly:
            self.failed.add(idx)
            if self.on_failure is not None:
                self.on_failure(idx)
        return newly

    def declare_failed(self, osd_idx: int) -> None:
        self.failed.add(osd_idx)

    def declare_recovered(self, osd_idx: int) -> None:
        """Readmit a node that proved liveness again (restart / healed
        partition); recovery-rebuilt nodes stay failed forever."""
        self.failed.discard(osd_idx)
