"""Measurement: request metrics, I/O workload aggregation, lifespan, tables."""

from repro.metrics.collector import MetricsCollector
from repro.metrics.workload import WorkloadReport, aggregate_workload
from repro.metrics.lifespan import lifespan_ratios
from repro.metrics.tables import format_series, format_table

__all__ = [
    "MetricsCollector",
    "WorkloadReport",
    "aggregate_workload",
    "lifespan_ratios",
    "format_series",
    "format_table",
]
