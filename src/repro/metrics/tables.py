"""Plain-text table/series formatting for the benchmark harness output."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_markdown", "format_series"]


def format_table(
    rows: Mapping[str, Mapping[str, float]],
    title: str = "",
    floatfmt: str = "{:,.2f}",
) -> str:
    """Render {row label: {column: value}} as an aligned text table."""
    if not rows:
        return title
    columns: list[str] = []
    for cols in rows.values():
        for c in cols:
            if c not in columns:
                columns.append(c)
    widths = {c: len(c) for c in columns}
    label_w = max(len(r) for r in rows)
    cells: dict[str, dict[str, str]] = {}
    for r, cols in rows.items():
        cells[r] = {}
        for c in columns:
            v = cols.get(c)
            if v is None:
                s = "-"
            elif isinstance(v, float):
                s = floatfmt.format(v)
            else:
                s = f"{v:,}"
            cells[r][c] = s
            widths[c] = max(widths[c], len(s))
    lines = []
    if title:
        lines.append(title)
    header = " " * label_w + " | " + " | ".join(c.rjust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        lines.append(
            r.ljust(label_w)
            + " | "
            + " | ".join(cells[r][c].rjust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


def format_markdown(
    rows: Mapping[str, Mapping[str, object]],
    corner: str = "",
    floatfmt: str = "{:,.2f}",
) -> str:
    """Render {row: {column: value}} as a GitHub-flavoured markdown table.

    The benchmark-table twin of :func:`format_table`: cells may be floats
    (formatted with ``floatfmt``), ints, or pre-rendered strings; missing
    cells render as ``-``.  ``corner`` labels the row-header column.
    """
    if not rows:
        return ""
    columns: list[str] = []
    for cols in rows.values():
        for c in cols:
            if c not in columns:
                columns.append(c)

    def cell(v: object) -> str:
        if v is None:
            return "-"
        if isinstance(v, float):
            return floatfmt.format(v)
        if isinstance(v, int):
            return f"{v:,}"
        return str(v)

    lines = [
        "| " + " | ".join([corner] + columns) + " |",
        "| " + " | ".join(["---"] + ["---:"] * len(columns)) + " |",
    ]
    for r, cols in rows.items():
        lines.append(
            "| " + " | ".join([r] + [cell(cols.get(c)) for c in columns]) + " |"
        )
    return "\n".join(lines)


def format_series(
    xs: Sequence[float], ys: Sequence[float], xlabel: str, ylabel: str, title: str = ""
) -> str:
    """Two-column series dump (one line per sample)."""
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{xlabel:>16} {ylabel:>16}")
    for x, y in zip(xs, ys):
        lines.append(f"{x:16.3f} {y:16.3f}")
    return "\n".join(lines)
