"""Plain-text table/series formatting for the benchmark harness output."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    rows: Mapping[str, Mapping[str, float]],
    title: str = "",
    floatfmt: str = "{:,.2f}",
) -> str:
    """Render {row label: {column: value}} as an aligned text table."""
    if not rows:
        return title
    columns: list[str] = []
    for cols in rows.values():
        for c in cols:
            if c not in columns:
                columns.append(c)
    widths = {c: len(c) for c in columns}
    label_w = max(len(r) for r in rows)
    cells: dict[str, dict[str, str]] = {}
    for r, cols in rows.items():
        cells[r] = {}
        for c in columns:
            v = cols.get(c)
            if v is None:
                s = "-"
            elif isinstance(v, float):
                s = floatfmt.format(v)
            else:
                s = f"{v:,}"
            cells[r][c] = s
            widths[c] = max(widths[c], len(s))
    lines = []
    if title:
        lines.append(title)
    header = " " * label_w + " | " + " | ".join(c.rjust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        lines.append(
            r.ljust(label_w)
            + " | "
            + " | ".join(cells[r][c].rjust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


def format_series(
    xs: Sequence[float], ys: Sequence[float], xlabel: str, ylabel: str, title: str = ""
) -> str:
    """Two-column series dump (one line per sample)."""
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{xlabel:>16} {ylabel:>16}")
    for x, y in zip(xs, ys):
        lines.append(f"{x:16.3f} {y:16.3f}")
    return "\n".join(lines)
