"""SSD lifespan comparison across update methods.

The paper's claim: SSDs under TSUE endure 2.5x-13x longer than under other
methods, because lifespan is inversely proportional to the erase rate the
workload induces for a fixed amount of user work.
"""

from __future__ import annotations

from typing import Mapping

__all__ = ["lifespan_ratios"]


def lifespan_ratios(erases_by_method: Mapping[str, float], reference: str = "tsue") -> dict[str, float]:
    """Per-method lifespan factor relative to ``reference``.

    ``factor[m] = erases[m] / erases[reference]`` — how many times sooner
    method ``m`` wears the device out (equivalently, TSUE lasts that many
    times longer).
    """
    if reference not in erases_by_method:
        raise KeyError(f"reference method {reference!r} missing")
    ref = erases_by_method[reference]
    if ref <= 0:
        return {m: float("inf") if e > 0 else 1.0 for m, e in erases_by_method.items()}
    return {m: e / ref for m, e in erases_by_method.items()}
