"""Cluster-wide I/O workload aggregation — the rows of Table 1."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.osd import OSD
    from repro.net.fabric import NetworkFabric

__all__ = ["WorkloadReport", "aggregate_workload"]


@dataclass
class WorkloadReport:
    """READ/WRITE + OVERWRITE + NETWORK columns, as the paper reports them."""

    rw_ops: int
    rw_bytes: int
    overwrite_ops: int
    overwrite_bytes: int
    network_bytes: int
    seq_ops: int
    rand_ops: int
    page_programs: float
    total_erases: float

    def row(self) -> dict[str, float]:
        return {
            "READ/WRITE Num.": self.rw_ops,
            "READ/WRITE Volume (GB)": self.rw_bytes / 1e9,
            "OVERWRITE Num.": self.overwrite_ops,
            "OVERWRITE Volume (GB)": self.overwrite_bytes / 1e9,
            "NETWORK TRAFFIC (GB)": self.network_bytes / 1e9,
        }


def aggregate_workload(osds: Iterable["OSD"], net: "NetworkFabric") -> WorkloadReport:
    """Sum device counters across the cluster into one report."""
    rw_ops = rw_bytes = ow_ops = ow_bytes = seq = rand = 0
    programs = erases = 0.0
    for osd in osds:
        c = osd.device.counters
        rw_ops += c.reads + c.writes
        rw_bytes += c.read_bytes + c.write_bytes
        ow_ops += c.overwrites
        ow_bytes += c.overwrite_bytes
        seq += c.seq_ops
        rand += c.rand_ops
        wear = getattr(osd.device, "wear", None)
        if wear is not None:
            wear.flush()
            programs += wear.page_programs
            erases += wear.total_erases
    return WorkloadReport(
        rw_ops=rw_ops,
        rw_bytes=rw_bytes,
        overwrite_ops=ow_ops,
        overwrite_bytes=ow_bytes,
        network_bytes=net.total_bytes,
        seq_ops=seq,
        rand_ops=rand,
        page_programs=programs,
        total_erases=erases,
    )
