"""Per-run request metrics: latency distributions and IOPS time series."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["MetricsCollector"]


@dataclass
class _OpSeries:
    latencies: list[float] = field(default_factory=list)
    times: list[float] = field(default_factory=list)
    bytes: int = 0

    def record(self, now: float, latency: float, size: int) -> None:
        self.latencies.append(latency)
        self.times.append(now)
        self.bytes += size

    @property
    def count(self) -> int:
        return len(self.latencies)


class MetricsCollector:
    """Collects completion events; derives IOPS/latency statistics."""

    def __init__(self, env) -> None:
        self.env = env
        self.updates = _OpSeries()
        self.reads = _OpSeries()

    # ------------------------------------------------------------- recording
    def record_update(self, latency: float, size: int) -> None:
        self.updates.record(self.env.now, latency, size)

    def record_read(self, latency: float, size: int) -> None:
        self.reads.record(self.env.now, latency, size)

    # -------------------------------------------------------------- analysis
    def aggregate_iops(self, kind: str = "updates") -> float:
        """Completed ops per second over the active span."""
        series = getattr(self, kind)
        if series.count < 2:
            return float(series.count)
        span = series.times[-1] - series.times[0]
        return series.count / span if span > 0 else float(series.count)

    def iops_series(self, window: float = 1.0, kind: str = "updates") -> tuple[np.ndarray, np.ndarray]:
        """(window centers, IOPS per window) — Fig. 6a's time series."""
        series = getattr(self, kind)
        if not series.times:
            return np.array([]), np.array([])
        t = np.asarray(series.times)
        t0, t1 = t.min(), t.max()
        nbins = max(1, int(np.ceil((t1 - t0) / window)))
        edges = t0 + np.arange(nbins + 1) * window
        counts, _ = np.histogram(t, bins=edges)
        centers = (edges[:-1] + edges[1:]) / 2.0
        return centers, counts / window

    def latency_stats(self, kind: str = "updates") -> dict[str, float]:
        series = getattr(self, kind)
        if not series.latencies:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0}
        lat = np.asarray(series.latencies)
        return {
            "count": float(lat.shape[0]),
            "mean": float(lat.mean()),
            "p50": float(np.percentile(lat, 50)),
            "p99": float(np.percentile(lat, 99)),
            "max": float(lat.max()),
        }

    def throughput_bytes(self, kind: str = "updates") -> float:
        series = getattr(self, kind)
        if series.count < 2:
            return 0.0
        span = series.times[-1] - series.times[0]
        return series.bytes / span if span > 0 else 0.0
