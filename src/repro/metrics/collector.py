"""Per-run request metrics: latency distributions and IOPS time series."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["MetricsCollector"]


@dataclass
class _OpSeries:
    latencies: list[float] = field(default_factory=list)
    times: list[float] = field(default_factory=list)
    bytes: int = 0

    def record(self, now: float, latency: float, size: int) -> None:
        self.latencies.append(latency)
        self.times.append(now)
        self.bytes += size

    @property
    def count(self) -> int:
        return len(self.latencies)


class MetricsCollector:
    """Collects completion events; derives IOPS/latency statistics."""

    def __init__(self, env) -> None:
        self.env = env
        self.updates = _OpSeries()
        self.reads = _OpSeries()
        #: background migration moves (epoch rebalances); "latency" slots
        #: hold 0 — the interesting dimensions are bytes and completion times
        self.rebalance = _OpSeries()

    # ------------------------------------------------------------- recording
    def record_update(self, latency: float, size: int) -> None:
        self.updates.record(self.env.now, latency, size)

    def record_read(self, latency: float, size: int) -> None:
        self.reads.record(self.env.now, latency, size)

    def record_rebalance(self, size: int) -> None:
        """One completed migration move of ``size`` bytes."""
        self.rebalance.record(self.env.now, 0.0, size)

    # -------------------------------------------------------------- analysis
    def aggregate_iops(self, kind: str = "updates") -> float:
        """Completed ops per second over the active span."""
        series = getattr(self, kind)
        if series.count < 2:
            return float(series.count)
        span = series.times[-1] - series.times[0]
        return series.count / span if span > 0 else float(series.count)

    def iops_series(self, window: float = 1.0, kind: str = "updates") -> tuple[np.ndarray, np.ndarray]:
        """(window centers, IOPS per window) — Fig. 6a's time series."""
        series = getattr(self, kind)
        if not series.times:
            return np.array([]), np.array([])
        t = np.asarray(series.times)
        t0, t1 = t.min(), t.max()
        nbins = max(1, int(np.ceil((t1 - t0) / window)))
        edges = t0 + np.arange(nbins + 1) * window
        counts, _ = np.histogram(t, bins=edges)
        centers = (edges[:-1] + edges[1:]) / 2.0
        return centers, counts / window

    def latency_stats(self, kind: str = "updates") -> dict[str, float]:
        series = getattr(self, kind)
        if not series.latencies:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0}
        lat = np.asarray(series.latencies)
        return {
            "count": float(lat.shape[0]),
            "mean": float(lat.mean()),
            "p50": float(np.percentile(lat, 50)),
            "p99": float(np.percentile(lat, 99)),
            "max": float(lat.max()),
        }

    @staticmethod
    def percentile_stats(
        values, qs: tuple[float, ...] = (50.0, 99.0, 99.9)
    ) -> dict[str, float]:
        """{"p50": ..., "p99": ..., "p999": ...} over ``values`` (0s if empty).

        Percentile labels drop the decimal point (99.9 -> ``p999``), the
        SRE-conventional spelling the SLO layer reports.
        """
        labels = ["p" + f"{q:g}".replace(".", "") for q in qs]
        if len(values) == 0:
            return {label: 0.0 for label in labels}
        arr = np.asarray(values, dtype=float)
        pct = np.percentile(arr, qs)
        return {label: float(v) for label, v in zip(labels, pct)}

    @staticmethod
    def windowed(
        times, values, window: float, t0: float | None = None
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Bucket ``values`` by their ``times`` into fixed windows.

        Returns (window centers, per-window value arrays) — the shared
        binning behind IOPS series and the SLO layer's latency-during-
        migration time series.  Pass ``t0`` to pin the bin origin so two
        series over different samples (e.g. all arrivals vs. served-only
        completions) land on identical window centers.
        """
        if len(times) == 0:
            return np.array([]), []
        t = np.asarray(times, dtype=float)
        v = np.asarray(values, dtype=float)
        if t0 is None:
            t0 = float(t.min())
        nbins = max(1, int(np.ceil((t.max() - t0) / window)) or 1)
        idx = np.clip(((t - t0) / window).astype(int), 0, nbins - 1)
        centers = t0 + (np.arange(nbins) + 0.5) * window
        return centers, [v[idx == b] for b in range(nbins)]

    @staticmethod
    def tail_window(times, values, cutoff: float) -> list:
        """Values whose times fall at/after ``cutoff``, scanned from the
        tail of time-ordered parallel sequences (only the trailing window
        is touched) — the shared scan behind every windowed pressure
        signal (the governor's and adaptive admission's p99 read-outs)."""
        out = []
        for i in range(len(times) - 1, -1, -1):
            if times[i] < cutoff:
                break
            out.append(values[i])
        return out

    def recent_foreground_p99(self, window: float, now: float | None = None) -> float:
        """p99 of foreground (update + read) latencies completed within the
        trailing ``window`` seconds — the raw pressure signal the background
        governor consumes when no front-end SLO tracker is attached."""
        if now is None:
            now = self.env.now
        cutoff = now - window
        recent: list[float] = []
        for series in (self.updates, self.reads):
            recent.extend(self.tail_window(series.times, series.latencies, cutoff))
        return self.percentile_stats(recent, (99.0,))["p99"]

    def rebalance_stats(self) -> dict[str, float]:
        """Moved bytes/blocks and time-to-balanced of epoch rebalances —
        the span from the first to the last committed move this run."""
        series = self.rebalance
        span = series.times[-1] - series.times[0] if series.count > 1 else 0.0
        return {
            "moved_blocks": float(series.count),
            "moved_bytes": float(series.bytes),
            "time_to_balanced": span,
            "bandwidth": series.bytes / span if span > 0 else 0.0,
        }

    @staticmethod
    def tail_imbalance(loads) -> float:
        """Max-over-mean of a per-target load distribution (1.0 = flat).
        Cluster-level callers normalize by device weight first (see
        :meth:`ECFS.tail_imbalance`)."""
        loads = list(loads)
        if not loads:
            return 0.0
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean > 0 else 0.0

    def throughput_bytes(self, kind: str = "updates") -> float:
        series = getattr(self, kind)
        if series.count < 2:
            return 0.0
        span = series.times[-1] - series.times[0]
        return series.bytes / span if span > 0 else 0.0
