"""Background rebalancer: executes a migration plan while traffic flows.

One DES process per worker drains the plan's move queue.  Each move charges
the real I/O and network cost of shipping the block, then waits for the
stripe to settle (no in-flight update, no unsettled parity delta, not
frozen), freezes the stripe for the capture -> commit window — exactly the
recovery discipline — copies the bytes to the destination, and commits the
new home through :meth:`PlacementMap.commit_move`.  Clients that resolved
the old home mid-flight chase the remap (see ``Client.update``).

Pacing comes from one of two places.  With the unified background
scheduler enabled (``ClusterConfig.background``), every move submits a
:class:`~repro.background.work.MoveOp` to the per-OSD arbiter's
``rebalance`` stream — weighted-fair against recycle/scrub/repair,
subordinated to foreground backlog, throttled by the SLO governor.
Otherwise the legacy global bandwidth cap applies: moves reserve their
slot on a shared token timeline, so a cap of B bytes/sec is honoured
regardless of worker parallelism.  The source copy is left in place until
the node is retired — an in-flight read that resolved the old home sees
the (at worst slightly stale) old bytes rather than a hole, matching how
production migrations double-serve during a transfer window.

Log content migrates with the block — the **settle-or-ship** protocol.
Before the capture the move asks the update method how many live log bytes
on the source address the block (:meth:`UpdateMethod.block_log_bytes`).  A
small debt settles in place first (recycle-before-move: the method's own
arbitered recycle machinery drains it — :meth:`UpdateMethod.settle_block`);
a large debt ships instead: the live DataLog/ParityLog extents are
captured under the freeze (:meth:`UpdateMethod.collect_block_logs`) and
replayed at the destination (:meth:`UpdateMethod.apply_shipped_logs`) with
the method's replay-dedup tokens guaranteeing exactly-once against the
source's own recycle or a crash replay.  Both pacing paths — the arbiter's
``rebalance`` stream and the legacy bandwidth cap — run the identical
protocol, so a crash *during* a rebalance is byte-safe either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from repro.background.work import MoveOp
from repro.placement.planner import MigrationPlan
from repro.storage.base import IOKind, IOPriority

if TYPE_CHECKING:  # pragma: no cover - type-only (avoids a package cycle)
    from repro.cluster.ecfs import ECFS
    from repro.cluster.ids import BlockId

__all__ = ["RebalanceReport", "Rebalancer"]


@dataclass
class RebalanceReport:
    """Outcome of executing one migration plan."""

    epoch: int
    planned: int
    moved_blocks: int
    moved_bytes: int
    skipped: int
    seconds: float
    imbalance_before: float
    imbalance_after: float
    #: live log bytes that travelled with their blocks (the ship path)
    shipped_log_bytes: int = 0

    @property
    def bandwidth(self) -> float:
        """Achieved migration throughput in bytes/second."""
        return self.moved_bytes / self.seconds if self.seconds > 0 else 0.0

    def summary(self) -> str:
        return (
            f"rebalance epoch {self.epoch}: {self.moved_blocks}/{self.planned} "
            f"blocks ({self.moved_bytes / 1e6:.1f} MB) in {self.seconds:.3f}s, "
            f"tail imbalance {self.imbalance_before:.2f} -> "
            f"{self.imbalance_after:.2f}"
        )


class Rebalancer:
    """Migrates blocks to their new epoch homes at a bandwidth cap."""

    def __init__(
        self,
        ecfs: "ECFS",
        bandwidth_cap: Optional[float] = None,
        parallel: int = 2,
        ship_threshold: Optional[int] = None,
    ) -> None:
        if bandwidth_cap is not None and bandwidth_cap <= 0:
            raise ValueError("bandwidth_cap must be positive (or None)")
        self.ecfs = ecfs
        self.bandwidth_cap = bandwidth_cap
        self.parallel = max(1, parallel)
        # settle-or-ship pivot: a block with at most this much pending log
        # content settles in place before its move (recycle-before-move);
        # more ships with the block instead of stalling the migration on a
        # long drain.  Default: one log unit's worth.
        self.ship_threshold = (
            ship_threshold
            if ship_threshold is not None
            else ecfs.config.log_unit_size
        )
        self.moved_blocks = 0
        self.moved_bytes = 0
        self.skipped = 0
        self.shipped_log_bytes = 0
        # shared token timeline: the instant the capped bandwidth frees up
        self._bw_free_at = 0.0

    # ------------------------------------------------------------------ API
    def run(self, plan: MigrationPlan) -> Generator:
        """Process: execute ``plan``; returns a :class:`RebalanceReport`."""
        ecfs = self.ecfs
        env = ecfs.env
        t0 = env.now
        before = ecfs.tail_imbalance()
        self._bw_free_at = t0
        queue = list(reversed(plan.moves))  # pop() drains in sorted order
        workers = [
            env.process(self._worker(queue), name=f"rebal-w{i}")
            for i in range(self.parallel)
        ]
        if workers:
            yield env.all_of(workers)
        report = RebalanceReport(
            epoch=plan.epoch,
            planned=len(plan.moves),
            moved_blocks=self.moved_blocks,
            moved_bytes=self.moved_bytes,
            skipped=self.skipped,
            seconds=env.now - t0,
            imbalance_before=before,
            imbalance_after=ecfs.tail_imbalance(),
            shipped_log_bytes=self.shipped_log_bytes,
        )
        return report

    # ------------------------------------------------------------ internals
    def _worker(self, queue: list) -> Generator:
        from repro.common.errors import IntegrityError

        ecfs = self.ecfs
        env = ecfs.env
        while queue:
            op = queue.pop()
            try:
                yield from self._move(op.block, op.dst)
            except IntegrityError:
                # a node died mid-move: leave the block to recovery (the
                # remap entry keeps pointing at wherever it actually is)
                self.skipped += 1
                yield env.timeout(0)

    def _throttle(self, nbytes: int, src_name: str) -> Generator:
        """Pace one move: a ``rebalance``-stream grant from the unified
        background scheduler when it is enabled, else the legacy shared
        bandwidth-cap timeline."""
        ecfs = self.ecfs
        if ecfs.background.enabled:
            yield from ecfs.background.request(
                MoveOp(osd=src_name, nbytes=nbytes, tag="rebalance")
            )
            return
        env = ecfs.env
        if self.bandwidth_cap is None:
            return
        start = max(env.now, self._bw_free_at)
        self._bw_free_at = start + nbytes / self.bandwidth_cap
        if start > env.now:
            yield env.timeout_at(start)

    def _move(self, block: BlockId, dst: int) -> Generator:
        ecfs = self.ecfs
        env = ecfs.env
        bs = ecfs.config.block_size
        src_idx = ecfs.placement.home_of(block)
        if src_idx == dst or ecfs.osds[dst].failed:
            self.skipped += 1
            return
        src = ecfs.osds[src_idx]
        if src.failed:
            # the source died before we got to it: this block is recovery's
            # problem (rebuild re-homes it), not a migration
            self.skipped += 1
            return

        yield from self._throttle(bs, src.name)
        # charge the shipping cost up front (background priority); the bytes
        # themselves are captured atomically under the freeze below
        yield from src.io_block(
            IOKind.READ, block, 0, bs, IOPriority.BACKGROUND, tag="rebalance"
        )
        yield from ecfs.net.transfer(
            src.name, ecfs.osds[dst].name, bs + ecfs.config.header_bytes
        )

        # settle-or-ship: a little pending log content on the source drains
        # through the method's own (arbitered) recycle machinery before the
        # capture; a lot ships with the block below — after reserving its
        # bandwidth on the same pacing path the base bytes used, so the
        # legacy cap and the arbiter see the extra volume identically
        method = ecfs.method
        pending = method.block_log_bytes(src, block)
        if 0 < pending <= self.ship_threshold:
            yield from method.settle_block(src, block)
        elif pending:
            yield from self._throttle(pending, src.name)

        # settle: the shared reconstruction discipline (no in-flight update,
        # no unsettled parity delta, not frozen).  Log content addressed to
        # the block itself no longer blocks here — whatever remains at
        # freeze time is captured and shipped.
        key = (block.file_id, block.stripe)
        yield from ecfs.settle_stripe(block.file_id, block.stripe)
        ecfs.freeze_stripe(*key)
        try:
            if ecfs.placement.home_of(block) != src_idx:
                # re-homed while we waited (an overlapping recovery): the
                # remap already reflects reality — drop this move
                self.skipped += 1
                return
            if src.failed:
                self.skipped += 1
                return
            data = (
                src.store.read(block)
                if block in src.store
                else np.zeros(bs, dtype=np.uint8)
            )
            dosd = ecfs.osds[dst]
            yield from dosd.io_block(
                IOKind.WRITE, block, 0, bs, IOPriority.BACKGROUND, tag="rebalance"
            )
            if block in dosd.store:
                dosd.store.write(block, 0, data)
            else:
                dosd.store.create(block, data, own=True)
            # ship whatever live log content still addresses the block (the
            # fast path usually settled it to zero; races and the ship path
            # land here) — applied at the destination under the freeze, with
            # the method's dedup tokens preventing double-apply
            shipped = method.collect_block_logs(src, block)
            if shipped:
                nbytes = yield from method.apply_shipped_logs(
                    src, dosd, block, shipped
                )
                self.shipped_log_bytes += int(nbytes or 0)
            ecfs.placement.commit_move(block, dst)
            self.moved_blocks += 1
            self.moved_bytes += bs
            ecfs.metrics.record_rebalance(bs)
        finally:
            ecfs.thaw_stripe(*key)
