"""Rotation placement — the seed layout, now as a pluggable policy.

Each stripe's ``k+m`` blocks land on ``k+m`` distinct OSDs, rotated by a
per-stripe hash so data and parity load spread evenly (parity blocks of
different stripes live on different nodes).  The DataLog replica for a data
block goes to the *next* OSD in the stripe's rotation that hosts none of the
stripe's blocks — or, when n_osds == k+m, to the neighbour node, matching the
paper's REP-DataLog-S(X±1) layout in Fig. 4.

With the default contiguous ``active`` list this is **byte-compatible** with
the original ``repro.cluster.layout.Placement``: same mixing hash, same
rotation arithmetic, same replica fallback — asserted by the placement
property tests, so seed figures stay identical.

``active`` makes the rotation elastic: it rotates over an explicit ordered
list of node indices, so a joined node appends to the list and a
decommissioned node drops out.  Rotation has no notion of locality or
weight, so any membership change re-rotates nearly every stripe — that is
the policy's documented weakness and the contrast CRUSH exists to fix (see
``python -m repro topology``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from typing import Optional, Sequence

from repro.placement.base import PlacementPolicy, mix

if TYPE_CHECKING:  # pragma: no cover - type-only (avoids a package cycle)
    from repro.cluster.ids import BlockId

__all__ = ["RotationPolicy"]


class RotationPolicy(PlacementPolicy):
    """Hash-rotated striping over an ordered list of nodes."""

    name = "rotation"

    def __init__(
        self,
        n_osds: int,
        k: int,
        m: int,
        log_pools: int = 4,
        active: Optional[Sequence[int]] = None,
    ) -> None:
        if active is None:
            active = range(n_osds)
        self._active = [int(i) for i in active]
        if len(set(self._active)) != len(self._active):
            raise ValueError("active node list contains duplicates")
        if len(self._active) < k + m:
            raise ValueError("need n_osds >= k+m")
        super().__init__(k, m, log_pools)

    @property
    def n_osds(self) -> int:
        return len(self._active)

    # ------------------------------------------------------------------ API
    def stripe_base(self, file_id: int, stripe: int) -> int:
        """First rotation slot of the stripe (slot space, not node ids)."""
        return mix(file_id, stripe) % len(self._active)

    def stripe_osds(self, file_id: int, stripe: int) -> list[int]:
        base = self.stripe_base(file_id, stripe)
        n = len(self._active)
        return [self._active[(base + i) % n] for i in range(self.k + self.m)]

    def replica_osd(self, block: BlockId) -> int:
        """Node hosting the DataLog replica for a data block: the next node
        after the stripe's span (wraps to base+idx+1 when the stripe covers
        every node)."""
        n = len(self._active)
        base = self.stripe_base(block.file_id, block.stripe)
        used = {(base + i) % n for i in range(self.k + self.m)}
        home_slot = (base + block.idx) % n
        if len(used) < n:
            cand = (base + self.k + self.m) % n
            while cand in used:
                cand = (cand + 1) % n
            return self._active[cand]
        return self._active[(home_slot + 1) % n]
