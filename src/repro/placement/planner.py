"""Migration planning: the diff between two placement epochs.

A :class:`MigrationPlan` is the exact set of per-block move ops that takes
the cluster from where blocks *are* (the outgoing epoch's actual homes,
remaps included) to where the incoming policy says they *should be*.  The
planner is pure bookkeeping — no simulated time, no I/O — so it doubles as
the analysis tool behind ``python -m repro topology``: plan a hypothetical
event and read off the movement fraction without running a cluster.

``assert_minimal`` encodes the CRUSH promise: a topology event should move
about the changed capacity fraction of the data, nothing more.  Policies
without that property (rotation) fail the assertion loudly rather than
silently reshuffling the world.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.placement.base import PlacementPolicy

if TYPE_CHECKING:  # pragma: no cover - type-only (avoids a package cycle)
    from repro.cluster.ids import BlockId

__all__ = ["MoveOp", "MigrationPlan", "MigrationPlanner"]


@dataclass(frozen=True)
class MoveOp:
    """One block that must travel from ``src`` to ``dst``."""

    block: BlockId
    src: int
    dst: int


@dataclass
class MigrationPlan:
    """Ordered move ops plus movement accounting for one epoch diff."""

    moves: list[MoveOp] = field(default_factory=list)
    total_blocks: int = 0
    epoch: int = 0  # the epoch this plan leads *into* (set by PlacementMap)

    @property
    def fraction_moved(self) -> float:
        return len(self.moves) / self.total_blocks if self.total_blocks else 0.0

    def moved_bytes(self, block_size: int) -> int:
        return len(self.moves) * block_size

    def sources(self) -> set[int]:
        return {op.src for op in self.moves}

    def destinations(self) -> set[int]:
        return {op.dst for op in self.moves}

    def assert_minimal(self, max_fraction: float) -> None:
        """Raise unless the plan moves at most ``max_fraction`` of blocks —
        e.g. ``1.5 / n`` for a single-device join on an n-device cluster."""
        if self.fraction_moved > max_fraction:
            raise AssertionError(
                f"migration moves {self.fraction_moved:.1%} of blocks "
                f"({len(self.moves)}/{self.total_blocks}), above the "
                f"{max_fraction:.1%} minimal-movement bound"
            )


class MigrationPlanner:
    """Diffs current block homes against a new policy's ideal homes."""

    @staticmethod
    def plan(
        current_home: Callable[[BlockId], int],
        new_policy: PlacementPolicy,
        blocks: Iterable[BlockId],
    ) -> MigrationPlan:
        """``current_home`` is the outgoing view (policy + remaps); the plan
        lists every block whose ideal home changes, in sorted block order so
        execution is deterministic."""
        plan = MigrationPlan()
        for block in sorted(blocks):
            plan.total_blocks += 1
            src = current_home(block)
            dst = new_policy.osd_of(block)
            if src != dst:
                plan.moves.append(MoveOp(block=block, src=src, dst=dst))
        return plan
