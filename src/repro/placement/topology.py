"""Cluster topology: racks > hosts > OSDs, with per-device weights.

The :class:`Topology` is the *mutable* description of what hardware exists;
placement policies take an immutable snapshot of it at construction.  Every
membership or weight change bumps ``version`` — the cluster uses that to
know an epoch advance is due.  Hosts and racks are plain integers so every
hash involved in placement is over stable ints (no string hashing, no
``PYTHONHASHSEED`` sensitivity).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Optional

__all__ = ["Device", "Topology"]


@dataclass(frozen=True)
class Device:
    """One OSD's position in the failure-domain tree."""

    osd: int
    weight: float
    host: int
    rack: int


class Topology:
    """Rack/host/OSD tree; placement-relevant state for CRUSH-style policies."""

    def __init__(self, failure_domain: str = "host") -> None:
        if failure_domain not in ("host", "rack"):
            raise ValueError(f"unknown failure domain {failure_domain!r}")
        self.failure_domain = failure_domain
        self._devices: dict[int, Device] = {}
        #: bumped on every add/remove/reweight — the epoch-advance signal
        self.version = 0

    # --------------------------------------------------------- construction
    @classmethod
    def flat(
        cls,
        n_osds: int,
        osds_per_host: int = 1,
        hosts_per_rack: int = 4,
        failure_domain: str = "host",
    ) -> "Topology":
        """Regular topology: OSD ``i`` on host ``i // osds_per_host``, hosts
        packed ``hosts_per_rack`` to a rack."""
        if osds_per_host < 1 or hosts_per_rack < 1:
            raise ValueError("need osds_per_host >= 1 and hosts_per_rack >= 1")
        topo = cls(failure_domain)
        for i in range(n_osds):
            host = i // osds_per_host
            topo.add_osd(i, weight=1.0, host=host, rack=host // hosts_per_rack)
        return topo

    # ------------------------------------------------------------ mutation
    def add_osd(
        self,
        osd: int,
        weight: float = 1.0,
        host: Optional[int] = None,
        rack: Optional[int] = None,
    ) -> Device:
        """Register a device.  Without an explicit ``host`` the OSD gets a
        fresh host of its own (a new failure domain), placed in the least
        populated rack (lowest id on ties) — the deterministic default for
        an elastic join."""
        if osd in self._devices:
            raise ValueError(f"osd {osd} already in topology")
        if weight <= 0:
            raise ValueError("device weight must be positive")
        if host is None:
            host = max((d.host for d in self._devices.values()), default=-1) + 1
        if rack is None:
            existing = list(self._devices.values())
            same_host = [d for d in existing if d.host == host]
            if same_host:
                rack = same_host[0].rack
            elif existing:
                hosts_per_rack = Counter(
                    r for r, _h in {(d.rack, d.host) for d in existing}
                )
                rack = min(hosts_per_rack, key=lambda r: (hosts_per_rack[r], r))
            else:
                rack = 0
        device = Device(osd=int(osd), weight=float(weight), host=int(host), rack=int(rack))
        self._devices[osd] = device
        self.version += 1
        return device

    def remove_osd(self, osd: int) -> Device:
        try:
            device = self._devices.pop(osd)
        except KeyError:
            raise ValueError(f"osd {osd} not in topology") from None
        self.version += 1
        return device

    def set_weight(self, osd: int, weight: float) -> Device:
        if weight <= 0:
            raise ValueError("device weight must be positive")
        old = self._devices.get(osd)
        if old is None:
            raise ValueError(f"osd {osd} not in topology")
        self._devices[osd] = Device(old.osd, float(weight), old.host, old.rack)
        self.version += 1
        return self._devices[osd]

    # ------------------------------------------------------------- queries
    def __contains__(self, osd: int) -> bool:
        return osd in self._devices

    def __len__(self) -> int:
        return len(self._devices)

    def devices(self) -> list[Device]:
        """All devices, sorted by OSD id (the canonical iteration order)."""
        return [self._devices[i] for i in sorted(self._devices)]

    def weight_of(self, osd: int) -> float:
        return self._devices[osd].weight

    def weights(self) -> dict[int, float]:
        return {i: d.weight for i, d in sorted(self._devices.items())}

    def domain_of(self, osd: int) -> int:
        d = self._devices[osd]
        return d.host if self.failure_domain == "host" else d.rack

    def total_weight(self) -> float:
        return sum(d.weight for d in self._devices.values())

    def describe(self) -> str:
        """Human-readable tree (``python -m repro topology``)."""
        racks: dict[int, dict[int, list[Device]]] = {}
        for d in self.devices():
            racks.setdefault(d.rack, {}).setdefault(d.host, []).append(d)
        lines = [
            f"topology: {len(self._devices)} OSDs, failure domain = "
            f"{self.failure_domain}, total weight {self.total_weight():g}"
        ]
        for rack in sorted(racks):
            lines.append(f"  rack{rack}")
            for host in sorted(racks[rack]):
                devs = ", ".join(
                    f"osd{d.osd}(w={d.weight:g})" for d in racks[rack][host]
                )
                lines.append(f"    host{host}: {devs}")
        return "\n".join(lines)
