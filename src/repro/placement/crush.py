"""CRUSH-style placement: hierarchical straw2 weighted selection.

Each stripe position is mapped independently: every candidate draws a
straw ``ln(u) / weight`` (``u`` a stable per-(stripe, position, candidate)
hash in ``(0, 1]``) and the longest straw wins — Ceph's straw2 bucket.
Because each candidate's draw depends only on its own identity and weight,
adding, removing, or reweighting a device perturbs only the positions that
device wins or loses: the expected data movement of a change is its weight
fraction of the cluster, not a full reshuffle (the property the
:class:`~repro.placement.planner.MigrationPlanner` asserts).

Selection is hierarchical when the topology has at least ``k+m`` failure
domains: straw2 first picks ``k+m`` distinct domains (weight = sum of the
domain's device weights), then one device inside each domain (salted by the
domain id, not the position, so a domain keeps its device choice even when
its position in the stripe shifts).  With fewer domains than the stripe is
wide, selection falls back to distinct devices — stripes then share
domains, which is exactly what a too-small cluster forces.

Distinctness makes movement slightly super-minimal: a collision retry
chain can re-resolve differently when membership changes, so a join moves
``~1/n`` plus a cascade term that grows with the stripe-width-to-cluster
ratio (real CRUSH has the same overshoot).  Keep ``(k+m)/n`` at or below
~0.5 — as production EC clusters do — and a single join stays within the
``1.5/n`` minimal-movement bound the planner asserts.

A policy instance snapshots the topology at construction and never sees
later mutations: topology events build a *new* policy and advance the
placement epoch (see :mod:`repro.placement.epoch`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import math

from repro.placement.base import PlacementPolicy, mix
from repro.placement.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - type-only (avoids a package cycle)
    from repro.cluster.ids import BlockId

__all__ = ["CrushPolicy"]

# hash salts so domain picks, device picks, and replica picks never collide
_SALT_DOMAIN = 0xD0A1
_SALT_DEVICE = 0xDE71
_SALT_FLAT = 0xF1A7
_SALT_REPLICA = 0x5EB1
#: straw2 retry budget per position before a deterministic fallback
_MAX_ATTEMPTS = 64

_TWO64 = float(1 << 64)
_M64 = 0xFFFFFFFFFFFFFFFF


def _finalize(x: int) -> int:
    """splitmix64 finalizer: full avalanche over ``mix``'s fold (straw2's
    top-of-order statistics are sensitive to weak low-bit diffusion)."""
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


class CrushPolicy(PlacementPolicy):
    """Weighted, failure-domain-aware placement over a topology snapshot."""

    name = "crush"

    def __init__(
        self, topology: Topology, k: int, m: int, log_pools: int = 4
    ) -> None:
        devices = topology.devices()
        if len(devices) < k + m:
            raise ValueError("need at least k+m devices in the topology")
        super().__init__(k, m, log_pools)
        self.failure_domain = topology.failure_domain
        #: immutable snapshot: [(osd, weight)] sorted by osd id
        self._devs: tuple[tuple[int, float], ...] = tuple(
            (d.osd, d.weight) for d in devices
        )
        by_domain: dict[int, list[tuple[int, float]]] = {}
        for d in devices:
            by_domain.setdefault(topology.domain_of(d.osd), []).append(
                (d.osd, d.weight)
            )
        #: [(domain id, ((osd, weight), ...))] sorted by domain id
        self._domains: tuple[tuple[int, tuple[tuple[int, float], ...]], ...] = tuple(
            (dom, tuple(items)) for dom, items in sorted(by_domain.items())
        )
        self._domain_weights: tuple[tuple[int, float], ...] = tuple(
            (dom, sum(w for _o, w in items)) for dom, items in self._domains
        )
        self._domain_devs = dict(self._domains)
        self._stripe_cache: dict[tuple[int, int], list[int]] = {}

    @property
    def n_osds(self) -> int:
        return len(self._devs)

    # --------------------------------------------------------------- straw2
    @staticmethod
    def _straw2(seed: int, salt: int, items) -> int:
        """Longest-straw winner among ``(ident, weight)`` items."""
        best = -1
        best_draw = -math.inf
        for ident, weight in items:
            u = (_finalize(mix(seed, salt, ident)) + 1) / _TWO64  # in (0, 1]
            draw = math.log(u) / weight
            if draw > best_draw or (draw == best_draw and ident < best):
                best = ident
                best_draw = draw
        return best

    def _pick_distinct(self, seed: int, salt: int, items, width: int) -> list[int]:
        """``width`` distinct winners, one straw2 contest per position.

        Each position's first attempt is independent of every other
        position, so a membership change only disturbs positions the
        changed candidate wins — collisions retry with a fresh salt."""
        chosen: list[int] = []
        taken: set[int] = set()
        for pos in range(width):
            pick = -1
            for attempt in range(_MAX_ATTEMPTS):
                cand = self._straw2(seed, mix(salt, pos, attempt), items)
                if cand not in taken:
                    pick = cand
                    break
            if pick < 0:  # pathological hash streak: deterministic fallback
                pick = next(i for i, _w in items if i not in taken)
            chosen.append(pick)
            taken.add(pick)
        return chosen

    # ------------------------------------------------------------------ API
    def stripe_osds(self, file_id: int, stripe: int) -> list[int]:
        key = (file_id, stripe)
        osds = self._stripe_cache.get(key)
        if osds is None:
            seed = mix(file_id, stripe)
            width = self.k + self.m
            if len(self._domains) >= width:
                domains = self._pick_distinct(
                    seed, _SALT_DOMAIN, self._domain_weights, width
                )
                osds = [
                    self._straw2(seed, mix(_SALT_DEVICE, dom), self._domain_devs[dom])
                    for dom in domains
                ]
            else:
                osds = self._pick_distinct(seed, _SALT_FLAT, self._devs, width)
            self._stripe_cache[key] = osds
        return osds

    def replica_osd(self, block: BlockId) -> int:
        """Straw2 winner among devices outside the stripe (falling back to
        any other device when the stripe covers the whole cluster)."""
        used = set(self.stripe_osds(block.file_id, block.stripe))
        seed = mix(block.file_id, block.stripe)
        outside = [(o, w) for o, w in self._devs if o not in used]
        if outside:
            return self._straw2(seed, mix(_SALT_REPLICA, block.idx), outside)
        home = self.osd_of(block)
        others = [(o, w) for o, w in self._devs if o != home]
        return self._straw2(seed, mix(_SALT_REPLICA, block.idx), others)

    def describe(self) -> str:
        return (
            f"crush(n={self.n_osds}, k={self.k}, m={self.m}, "
            f"domains={len(self._domains)} x {self.failure_domain})"
        )
