"""Placement policy interface.

A :class:`PlacementPolicy` is a pure function from block identity to node
index: given one policy instance, ``osd_of`` (and friends) always return the
same answer, so results are memoizable and cross-process deterministic.  The
cluster never calls a policy directly — it goes through
:class:`repro.placement.epoch.PlacementMap`, which layers epoch bookkeeping
and per-block remaps (recovery re-homes, in-flight migrations) on top.

Policy instances are **immutable by contract**: a topology change never
mutates an existing policy, it builds a fresh one and advances the map's
epoch.  That is what makes the per-instance memo caches below safe — a
cache entry can only ever go stale if someone mutates a live policy, and
nobody does (the old instance is dropped with its cache at the epoch bump).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from abc import ABC, abstractmethod


if TYPE_CHECKING:  # pragma: no cover - type-only (avoids a package cycle)
    from repro.cluster.ids import BlockId

__all__ = ["PlacementPolicy", "mix"]

_HASH_MIX = 0x9E3779B97F4A7C15


def mix(*values: int) -> int:
    """Stable 64-bit integer hash (independent of PYTHONHASHSEED)."""
    h = 0
    for v in values:
        h ^= (v + _HASH_MIX + (h << 6) + (h >> 2)) & 0xFFFFFFFFFFFFFFFF
    return h


class PlacementPolicy(ABC):
    """Pure function (config) -> node index for every block/replica/pool."""

    name = "base"

    def __init__(self, k: int, m: int, log_pools: int = 4) -> None:
        self.k = k
        self.m = m
        self.log_pools = log_pools
        # placement is a pure function of the block id, and the hot paths
        # resolve the same few thousand blocks millions of times: memoize.
        # Caches are per-instance; a new epoch means a new instance.
        self._osd_cache: dict[BlockId, int] = {}
        self._pool_cache: dict[BlockId, int] = {}

    # ------------------------------------------------------------------ API
    @property
    @abstractmethod
    def n_osds(self) -> int:
        """Number of placement targets this policy can choose from."""

    @abstractmethod
    def stripe_osds(self, file_id: int, stripe: int) -> list[int]:
        """The ``k+m`` node indices hosting the stripe, in block-idx order."""

    @abstractmethod
    def replica_osd(self, block: BlockId) -> int:
        """Node hosting the DataLog replica for a data block — outside the
        stripe's span whenever the cluster is wide enough."""

    def osd_of(self, block: BlockId) -> int:
        """Node index hosting ``block``."""
        idx = self._osd_cache.get(block)
        if idx is None:
            if not 0 <= block.idx < self.k + self.m:
                raise ValueError(f"block idx {block.idx} outside stripe width")
            idx = self.stripe_osds(block.file_id, block.stripe)[block.idx]
            self._osd_cache[block] = idx
        return idx

    def parity_osds(self, file_id: int, stripe: int) -> list[int]:
        return self.stripe_osds(file_id, stripe)[self.k :]

    def pool_of(self, block: BlockId) -> int:
        """Log pool index for a block — hash of (inode, stripe, block) §3.2.1.

        Deliberately topology-independent: pool assignment survives epoch
        changes, so log content never needs re-bucketing on a rebalance.
        """
        pool = self._pool_cache.get(block)
        if pool is None:
            pool = mix(block.file_id, block.stripe, block.idx) % self.log_pools
            self._pool_cache[block] = pool
        return pool

    def describe(self) -> str:
        return f"{self.name}(n={self.n_osds}, k={self.k}, m={self.m})"
