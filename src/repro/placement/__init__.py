"""Pluggable placement subsystem: policies, topology, epochs, rebalancing.

* :mod:`repro.placement.base` — the :class:`PlacementPolicy` interface;
* :mod:`repro.placement.rotation` — the seed's hash-rotation layout
  (byte-compatible with the original ``cluster.layout.Placement``);
* :mod:`repro.placement.crush` — CRUSH-style straw2 weighted selection
  over a :class:`Topology` of racks/hosts/OSDs;
* :mod:`repro.placement.epoch` — the epoch-aware :class:`PlacementMap`
  the cluster consults (ideal homes + actual-home remaps);
* :mod:`repro.placement.planner` — :class:`MigrationPlanner` diffs two
  epochs into per-block move ops and asserts minimal movement;
* :mod:`repro.placement.rebalancer` — background migration at a
  bandwidth cap while updates keep flowing.
"""

from repro.placement.base import PlacementPolicy, mix
from repro.placement.crush import CrushPolicy
from repro.placement.epoch import PlacementMap
from repro.placement.planner import MigrationPlan, MigrationPlanner, MoveOp
from repro.placement.rebalancer import RebalanceReport, Rebalancer
from repro.placement.rotation import RotationPolicy
from repro.placement.topology import Device, Topology

__all__ = [
    "PlacementPolicy",
    "mix",
    "RotationPolicy",
    "CrushPolicy",
    "Device",
    "Topology",
    "PlacementMap",
    "MigrationPlan",
    "MigrationPlanner",
    "MoveOp",
    "RebalanceReport",
    "Rebalancer",
    "POLICIES",
    "make_policy",
]

#: registered policy names (``ClusterConfig.placement_policy``)
POLICIES = ("rotation", "crush")


def make_policy(
    name: str, topology: Topology, k: int, m: int, log_pools: int = 4
) -> PlacementPolicy:
    """Build a fresh policy instance from the topology's current state.

    Called once at cluster build and again on every epoch advance — the
    returned instance snapshots the topology and is treated as immutable.
    """
    if name == "rotation":
        active = [d.osd for d in topology.devices()]
        return RotationPolicy(
            len(active), k, m, log_pools=log_pools, active=active
        )
    if name == "crush":
        return CrushPolicy(topology, k, m, log_pools=log_pools)
    raise ValueError(f"unknown placement policy {name!r}; known: {POLICIES}")
