"""Epoch-aware placement: one policy per epoch plus per-block remaps.

The :class:`PlacementMap` is what the cluster actually consults.  It keeps

* the **current policy** — the ideal mapping of the current epoch, and
* a **remap table** — blocks whose *actual* home differs from the ideal:
  recovery re-homes (a rebuilt block lives wherever the rebuild put it) and
  blocks an in-flight rebalance has not migrated yet.

``osd_of`` answers with the ideal home (what the policy says), ``home_of``
with the actual home (remaps win) — recovery, I/O routing, and verification
all use ``home_of`` via :meth:`ECFS.osd_hosting`.

Advancing an epoch never mutates the outgoing policy (or its memo caches):
it computes the migration plan, folds every not-yet-ideal actual home into
the fresh remap table, and swaps in the new policy instance.  Stale-cache
audit: policy memo caches are per-instance and instances are immutable, so
a cache entry written under epoch N can never be consulted under epoch N+1
— the epoch bump replaces the instance wholesale, and the remap table (the
only mutable placement state) lives here, not in any policy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from typing import Iterable

from repro.placement.base import PlacementPolicy
from repro.placement.planner import MigrationPlan, MigrationPlanner

if TYPE_CHECKING:  # pragma: no cover - type-only (avoids a package cycle)
    from repro.cluster.ids import BlockId

__all__ = ["PlacementMap"]


class PlacementMap:
    """Current-epoch policy + actual-home remaps; the cluster's one oracle."""

    def __init__(self, policy: PlacementPolicy) -> None:
        self.policy = policy
        self.epoch = 0
        self._remaps: dict[BlockId, int] = {}

    # ----------------------------------------------------- policy delegation
    @property
    def n_osds(self) -> int:
        return self.policy.n_osds

    @property
    def k(self) -> int:
        return self.policy.k

    @property
    def m(self) -> int:
        return self.policy.m

    @property
    def log_pools(self) -> int:
        return self.policy.log_pools

    def osd_of(self, block: BlockId) -> int:
        """The *ideal* home under the current epoch's policy."""
        return self.policy.osd_of(block)

    def stripe_osds(self, file_id: int, stripe: int) -> list[int]:
        return self.policy.stripe_osds(file_id, stripe)

    def parity_osds(self, file_id: int, stripe: int) -> list[int]:
        return self.policy.parity_osds(file_id, stripe)

    def replica_osd(self, block: BlockId) -> int:
        return self.policy.replica_osd(block)

    def pool_of(self, block: BlockId) -> int:
        return self.policy.pool_of(block)

    def describe(self) -> str:
        return f"epoch {self.epoch}: {self.policy.describe()}"

    # ------------------------------------------------------------ remapping
    @property
    def remapped(self) -> dict[BlockId, int]:
        """Blocks whose actual home differs from the epoch ideal (read-only
        by convention; mutate via :meth:`pin` / :meth:`advance`)."""
        return self._remaps

    def home_of(self, block: BlockId) -> int:
        """The *actual* home: remap if one exists, else the epoch ideal."""
        home = self._remaps.get(block)
        return home if home is not None else self.policy.osd_of(block)

    def pin(self, block: BlockId, osd_idx: int) -> None:
        """Record that ``block`` actually lives on ``osd_idx`` — a recovery
        re-home or a completed migration move.  Pinning a block *at* its
        ideal home clears the remap (the block is back in policy)."""
        if self.policy.osd_of(block) == osd_idx:
            self._remaps.pop(block, None)
        else:
            self._remaps[block] = osd_idx

    # a completed rebalance move is just a pin; the alias keeps call sites
    # self-describing
    commit_move = pin

    def balanced(self) -> bool:
        """True when every block sits at its epoch-ideal home."""
        return not self._remaps

    # --------------------------------------------------------------- epochs
    def advance(
        self, policy: PlacementPolicy, blocks: Iterable[BlockId]
    ) -> MigrationPlan:
        """Switch to ``policy`` as the next epoch's ideal mapping.

        Data does not move here: every block keeps its actual home, now
        expressed as a remap wherever that home is no longer ideal.  The
        returned plan is exactly those remaps as move ops — hand it to a
        :class:`~repro.placement.rebalancer.Rebalancer` to migrate at a
        bandwidth cap while foreground traffic keeps flowing.
        """
        blocks = list(blocks)
        plan = MigrationPlanner.plan(self.home_of, policy, blocks)
        remaps: dict[BlockId, int] = {}
        for op in plan.moves:
            remaps[op.block] = op.src
        self._remaps = remaps
        self.policy = policy
        self.epoch += 1
        plan.epoch = self.epoch
        return plan
