"""Configuration of the unified background-work scheduler.

Kept dependency-light (units only) so :mod:`repro.cluster.config` can embed
a :class:`BackgroundConfig` without importing the scheduler machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.control import validate_aimd
from repro.common.units import MiB

__all__ = ["BackgroundConfig"]


@dataclass(frozen=True)
class BackgroundConfig:
    """Knobs of the per-OSD maintenance arbiter and its SLO governor.

    ``enabled=False`` (the default) makes the whole subsystem a strict
    no-op: work submissions return without creating a single DES event, so
    default harness paths (fig1/table1, the pre-existing scenario catalog)
    are byte-identical with and without the subsystem present.
    """

    enabled: bool = False
    #: per-OSD background bandwidth budget (bytes/sec of granted work)
    bandwidth: float = 256 * MiB
    #: weighted-fair shares of the four maintenance streams: repair is the
    #: most urgent (exposure window), recycle feeds foreground progress
    #: (log quotas), scrub and rebalance are patience work
    weight_recycle: float = 2.0
    weight_scrub: float = 1.0
    weight_repair: float = 4.0
    weight_rebalance: float = 1.0
    #: subordination to foreground backlog: a grant whose device has queued
    #: foreground I/O waits ``yield_poll`` seconds and re-checks, at most
    #: ``max_yield_polls`` times per grant (the aging bound that makes the
    #: starvation-freedom property hold under sustained foreground load)
    yield_poll: float = 5e-4
    max_yield_polls: int = 8
    #: SLO-pressure governor: sample the windowed foreground p99 every
    #: ``interval`` seconds; a breach of ``p99_target`` cuts the background
    #: token scale multiplicatively (``backoff``), headroom restores it
    #: additively (``recover``); ``floor`` bounds the throttle so every
    #: admitted stream keeps making progress
    governor: bool = False
    p99_target: float = 0.02
    window: float = 0.05
    interval: float = 0.025
    backoff: float = 0.5
    recover: float = 0.2
    floor: float = 0.1
    #: the governor parks itself after this many consecutive idle samples
    #: (no backlog anywhere); resubmitted work re-arms it
    idle_exit: int = 4

    def weight(self, stream: str) -> float:
        try:
            return getattr(self, f"weight_{stream}")
        except AttributeError:
            raise ValueError(f"unknown background stream {stream!r}") from None

    def validate(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("background bandwidth must be positive")
        for stream in ("recycle", "scrub", "repair", "rebalance"):
            if self.weight(stream) <= 0:
                raise ValueError(f"weight_{stream} must be positive")
        validate_aimd(
            backoff=self.backoff,
            recover=self.recover,
            floor=self.floor,
            target=self.p99_target,
            window=self.window,
            interval=self.interval,
        )
        if self.yield_poll <= 0 or self.max_yield_polls < 0:
            raise ValueError("invalid foreground-yield settings")
