"""Typed background work items.

Every maintenance driver submits one of these to the shared
:class:`~repro.background.scheduler.BackgroundScheduler` before spending
device/network bandwidth: the item names the *stream* it belongs to (the
weighted-fair share it draws from), the OSD whose budget it charges, and
the byte cost being requested.  The items are plain frozen data — the
scheduler never executes work, it only paces and orders grants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

__all__ = ["STREAMS", "WorkItem", "RecycleOp", "ScrubOp", "RepairOp", "MoveOp"]

#: the maintenance streams, in the deterministic order metrics report them
STREAMS = ("recycle", "scrub", "repair", "rebalance")


@dataclass(frozen=True)
class WorkItem:
    """One unit of background work charged to one OSD's budget."""

    stream: ClassVar[str] = "generic"

    osd: str
    nbytes: int
    tag: str = ""

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"work item bytes must be >= 0, got {self.nbytes}")


@dataclass(frozen=True)
class RecycleOp(WorkItem):
    """Recycle one sealed log unit (TSUE pipeline layer) or drain one
    deferred parity log (PL watermark trigger)."""

    stream: ClassVar[str] = "recycle"


@dataclass(frozen=True)
class ScrubOp(WorkItem):
    """Read-verify one block of a stripe during a scrub pass."""

    stream: ClassVar[str] = "scrub"


@dataclass(frozen=True)
class RepairOp(WorkItem):
    """Rebuild one lost block (k source reads + one target write)."""

    stream: ClassVar[str] = "repair"


@dataclass(frozen=True)
class MoveOp(WorkItem):
    """Migrate one block to its new epoch home."""

    stream: ClassVar[str] = "rebalance"
