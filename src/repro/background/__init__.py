"""Unified background-work scheduler (the PR 5 tentpole).

One QoS-arbitrated maintenance plane for the cluster's four background
streams — log recycling, scrubbing, recovery repair, and rebalance
migration.  See :mod:`repro.background.scheduler` for the design.
"""

from repro.background.config import BackgroundConfig
from repro.background.scheduler import BackgroundScheduler, StreamStats
from repro.background.work import (
    STREAMS,
    MoveOp,
    RecycleOp,
    RepairOp,
    ScrubOp,
    WorkItem,
)

__all__ = [
    "STREAMS",
    "BackgroundConfig",
    "BackgroundScheduler",
    "MoveOp",
    "RecycleOp",
    "RepairOp",
    "ScrubOp",
    "StreamStats",
    "WorkItem",
]
