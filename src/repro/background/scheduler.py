"""The unified background-work scheduler: one QoS-arbitrated maintenance
plane for recycle, scrub, recovery repair, and rebalance migration.

Before PR 5 each maintenance stream shipped its own ad-hoc pacing (recycler
quotas, a rebalancer bandwidth cap, recovery settle/freeze, scrub with no
scheduler at all).  This module replaces the *pacing* half of all four with
one subsystem:

* every driver submits a typed :class:`~repro.background.work.WorkItem`
  (RecycleOp / ScrubOp / RepairOp / MoveOp) and waits for the **grant**;
* grants are issued per OSD by a weighted-fair arbiter: each stream has a
  share (:class:`~repro.background.config.BackgroundConfig` weights), and a
  contended OSD budget is divided in weighted start-time-fair-queueing
  order, so recovery repair outruns a scrub but nothing starves;
* grants are **strictly subordinated to foreground I/O** two ways: the
  device queues already order by :class:`~repro.storage.base.IOPriority`
  lane (maintenance I/O runs at ``BACKGROUND``), and the arbiter
  additionally holds a grant back while the target device has *queued*
  foreground requests — with a bounded aging escape so sustained foreground
  load cannot starve an admitted stream forever;
* an **SLO-pressure governor** watches the windowed foreground p99 (the
  front end's :class:`~repro.frontend.slo.SLOTracker` when one is attached,
  the cluster read/update metrics otherwise) and throttles the background
  token rate multiplicatively on a breach, restoring it additively when
  headroom returns.  Deadline-expired foreground work is symmetrically
  demoted out of the FOREGROUND lane by the front end (see
  :class:`~repro.sim.core.Lane`), so the two planes yield to each other.

With ``enabled=False`` (the default) :meth:`BackgroundScheduler.request`
returns without creating a single DES event — default harness paths are
byte-identical with the subsystem in the tree.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Generator, Optional

from repro.background.config import BackgroundConfig
from repro.background.work import STREAMS, WorkItem
from repro.common.control import aimd_step
from repro.sim import Event, PHASE_LATE
from repro.storage.base import IOPriority

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.ecfs import ECFS

__all__ = ["StreamStats", "BackgroundScheduler"]


class StreamStats:
    """Per-stream accounting: submissions, grants, backlog, drain time."""

    __slots__ = (
        "submitted_items",
        "submitted_bytes",
        "granted_items",
        "granted_bytes",
        "first_submit",
        "last_grant",
    )

    def __init__(self) -> None:
        self.submitted_items = 0
        self.submitted_bytes = 0
        self.granted_items = 0
        self.granted_bytes = 0
        self.first_submit: Optional[float] = None
        self.last_grant: Optional[float] = None

    @property
    def backlog_bytes(self) -> int:
        return self.submitted_bytes - self.granted_bytes

    def snapshot(self) -> dict[str, float]:
        span = (
            self.last_grant - self.first_submit
            if self.first_submit is not None and self.last_grant is not None
            else 0.0
        )
        return {
            "submitted_items": float(self.submitted_items),
            "submitted_bytes": float(self.submitted_bytes),
            "granted_items": float(self.granted_items),
            "granted_bytes": float(self.granted_bytes),
            "backlog_bytes": float(self.backlog_bytes),
            # time from first submission to last grant: the stream's
            # time-to-drain once the backlog is empty
            "time_to_drain": span,
            "bandwidth": self.granted_bytes / span if span > 0 else 0.0,
        }


class _OsdLane:
    """Arbiter state for one OSD: a WSFQ heap and its pump process."""

    __slots__ = ("heap", "vtime", "stream_vft", "pump", "wake")

    def __init__(self) -> None:
        # entries: (virtual finish tag, seq, grant event, item)
        self.heap: list[tuple[float, int, Event, WorkItem]] = []
        self.vtime = 0.0
        self.stream_vft: dict[str, float] = {}
        self.pump = None
        self.wake: Optional[Event] = None


class BackgroundScheduler:
    """Grants paced, weighted-fair background bandwidth per OSD."""

    def __init__(self, ecfs: "ECFS", config: BackgroundConfig | None = None) -> None:
        self.ecfs = ecfs
        self.config = config if config is not None else ecfs.config.background
        self.config.validate()
        self.enabled = self.config.enabled
        #: governor token scale in (floor, 1]: multiplies the grant rate
        self.scale = 1.0
        self.breaches = 0
        self.min_scale = 1.0
        #: (sim time, windowed foreground p99, scale) per governor sample
        self.governor_series: list[tuple[float, float, float]] = []
        self.streams: dict[str, StreamStats] = {s: StreamStats() for s in STREAMS}
        #: grants released out-of-band by :meth:`expedite` (recovery-critical
        #: settlement jumping a governed backlog)
        self.expedited_items = 0
        self.expedited_bytes = 0
        self._lanes: dict[str, _OsdLane] = {}
        self._osd_by_name: dict[str, object] = {}
        self._seq = 0
        self._gov_proc = None
        self._last_grant_at = float("-inf")

    # ------------------------------------------------------------------ API
    def request(self, item: WorkItem) -> Generator:
        """Process fragment: wait for the arbiter to grant ``item``.

        A strict no-op (no event, no time) while the scheduler is disabled,
        so call sites can submit unconditionally.
        """
        if not self.enabled:
            return
        yield self._submit(item)

    def request_batch(self, items: list[WorkItem]) -> Generator:
        """Wait for the arbiter to grant every item of a batch.

        The bulk-drain entry point (see :func:`~repro.core.recycler.
        unit_batch_recycle_op`): a drain that settles a whole queue of log
        units submits its work items *up front* — the per-OSD WSFQ heap
        orders the complete batch against competing streams instead of
        discovering it one item at a time — then waits them out in order.
        Byte accounting is per item, so stream stats and the governor see
        exactly what the equivalent ``request`` sequence would have
        submitted; a single-item batch is event-for-event identical to
        :meth:`request`.  No-op while disabled, like :meth:`request`.
        """
        if not self.enabled:
            return
        grants = [self._submit(item) for item in items]
        for grant in grants:
            yield grant

    def _submit(self, item: WorkItem) -> Event:
        """Enqueue one item on its OSD lane; returns the grant event."""
        env = self.ecfs.env
        stats = self.streams[item.stream]
        stats.submitted_items += 1
        stats.submitted_bytes += item.nbytes
        if stats.first_submit is None:
            stats.first_submit = env.now
        lane = self._lanes.get(item.osd)
        if lane is None:
            lane = self._lanes[item.osd] = _OsdLane()
        # weighted start-time fair queueing: the finish tag advances the
        # stream's own virtual timeline, normalized by its weight
        start = max(lane.vtime, lane.stream_vft.get(item.stream, 0.0))
        vft = start + item.nbytes / self.config.weight(item.stream)
        lane.stream_vft[item.stream] = vft
        self._seq += 1
        grant = Event(env)
        heapq.heappush(lane.heap, (vft, self._seq, grant, item))
        if lane.pump is None or not lane.pump.is_alive:
            lane.pump = env.process(self._pump(item.osd, lane), name=f"bg-{item.osd}")
            lane.pump.lane = None  # the arbiter never inherits a caller's lane
        elif lane.wake is not None and not lane.wake.triggered:
            lane.wake.succeed()
        self._ensure_governor()
        return grant

    def expedite(self, stream: str) -> int:
        """Release every *queued* grant of ``stream`` immediately, bypassing
        token pacing and the foreground-yield window.

        This is the scheduler-side half of the recovery-priority-inversion
        fix: recovery-critical settlement (TSUE's ``recovery_prepare`` /
        ``finalize_recovery`` drains) must not queue behind a governed
        recycle backlog — mirroring how PL's FOREGROUND drains skip the
        arbiter entirely.  The AIMD floor (``validate_aimd`` enforces
        ``0 < floor``) guarantees paced grants always make *some* progress,
        but "some" is not "ahead of the repair clock"; expedited grants are.

        Released grants are accounted as granted (so ``backlog_bytes``
        drains and ``fully_drained`` stays truthful) and additionally in
        ``expedited_items`` / ``expedited_bytes``.  The one item a pump may
        already hold in paced service is not recalled — worst case one
        in-flight grant per OSD lane.  Returns the number released.
        """
        if not self.enabled:
            return 0
        env = self.ecfs.env
        released = 0
        for lane in self._lanes.values():
            keep = []
            for entry in lane.heap:
                _vft, _seq, grant, item = entry
                if item.stream != stream or grant.triggered:
                    keep.append(entry)
                    continue
                stats = self.streams[item.stream]
                stats.granted_items += 1
                stats.granted_bytes += item.nbytes
                stats.last_grant = env.now
                self._last_grant_at = env.now
                self.expedited_items += 1
                self.expedited_bytes += item.nbytes
                grant.succeed()
                released += 1
            if len(keep) != len(lane.heap):
                # the popped entries' grants already fired; the heap must
                # forget them or the pump would pace and re-grant ghosts
                lane.heap[:] = keep
                heapq.heapify(lane.heap)
        return released

    def stream_stats(self) -> dict[str, dict[str, float]]:
        """Per-stream bandwidth/backlog/time-to-drain, deterministic order."""
        return {s: self.streams[s].snapshot() for s in STREAMS}

    def governor_stats(self) -> dict[str, float]:
        return {
            "breaches": float(self.breaches),
            "min_scale": self.min_scale,
            "final_scale": self.scale,
            "samples": float(len(self.governor_series)),
        }

    @property
    def active(self) -> bool:
        """True once any work was submitted this run."""
        return any(st.submitted_items for st in self.streams.values())

    @property
    def fully_drained(self) -> bool:
        """Every submitted item of every stream has been granted."""
        return all(st.backlog_bytes == 0 for st in self.streams.values())

    # ------------------------------------------------------------ processes
    def _pump(self, osd_name: str, lane: _OsdLane) -> Generator:
        """One OSD's grant loop: pop in WSFQ order, yield to foreground
        backlog (bounded), pace by the governed token rate, grant."""
        env = self.ecfs.env
        cfg = self.config
        # native-µs pacing constants; grant wakeups ride the LATE lane so a
        # token replenish at tick T sorts after all normal work at T
        yield_poll_us = round(cfg.yield_poll * 1e6)
        us_per_byte = 1e6 / cfg.bandwidth
        while True:
            if not lane.heap:
                lane.wake = Event(env)
                yield lane.wake
                continue
            vft, _seq, grant, item = heapq.heappop(lane.heap)
            lane.vtime = max(lane.vtime, vft)
            polls = 0
            while polls < cfg.max_yield_polls and self._foreground_backlog(osd_name):
                polls += 1
                yield env.timeout_us(yield_poll_us, phase=PHASE_LATE)
            duration_us = round(item.nbytes * us_per_byte / self.scale)
            if duration_us > 0:
                yield env.timeout_us(duration_us, phase=PHASE_LATE)
            stats = self.streams[item.stream]
            stats.granted_items += 1
            stats.granted_bytes += item.nbytes
            stats.last_grant = env.now
            self._last_grant_at = env.now
            if not grant.triggered:
                grant.succeed()

    def _foreground_backlog(self, osd_name: str) -> bool:
        """Queued (not merely in-service) live-foreground I/O on the OSD's
        device — the lane-aware saturation signal grants subordinate to."""
        osd = self._osd_by_name.get(osd_name)
        if osd is None:
            for cand in self.ecfs.osds:
                self._osd_by_name[cand.name] = cand
            osd = self._osd_by_name.get(osd_name)
            if osd is None:
                return False
        return osd.device.resource.queued_below(IOPriority.DEMOTED) > 0

    # ------------------------------------------------------------- governor
    def _ensure_governor(self) -> None:
        if not self.config.governor:
            return
        if self._gov_proc is not None and self._gov_proc.is_alive:
            return
        self._gov_proc = self.ecfs.env.process(self._governor(), name="bg-governor")
        self._gov_proc.lane = None

    def _governor(self) -> Generator:
        """AIMD throttle on the background token scale, driven by the
        windowed foreground p99.  Exits after ``idle_exit`` consecutive
        samples with no backlog (re-armed by the next submission)."""
        env = self.ecfs.env
        cfg = self.config
        idle = 0
        while idle < cfg.idle_exit:
            yield env.timeout(cfg.interval)
            p99 = self._foreground_p99()
            # "maintenance active" = backlog outstanding OR a grant landed
            # within this sample interval (a drain-only check misreads
            # sequentially-submitting streams like the scrub, which look
            # empty between stripe scans).  A breach while the plane is
            # genuinely quiet cannot be its doing — recover instead, so
            # the governor never parks with the throttle stuck for the
            # next burst.
            busy = (
                not self.fully_drained
                or self._last_grant_at >= env.now - cfg.interval
            )
            breached = p99 > cfg.p99_target and busy
            if breached:
                self.breaches += 1
            self.scale = aimd_step(
                self.scale,
                breached,
                backoff=cfg.backoff,
                recover=cfg.recover,
                floor=cfg.floor,
            )
            self.min_scale = min(self.min_scale, self.scale)
            self.governor_series.append((env.now, p99, self.scale))
            idle = idle + 1 if not busy else 0

    def _foreground_p99(self) -> float:
        """Windowed foreground p99: the front end's SLO tracker when the
        run has one, the raw cluster op metrics otherwise."""
        frontend = getattr(self.ecfs, "frontend", None)
        now = self.ecfs.env.now
        if frontend is not None:
            return frontend.slo.recent_p99(self.config.window, now)
        return self.ecfs.metrics.recent_foreground_p99(self.config.window, now)
