"""NIC + switch fabric on the DES, with injectable link faults.

Fault hooks (driven by :mod:`repro.fault`): per-node degradation
(:meth:`NetworkFabric.degrade` — bandwidth factor, extra latency, loss
probability with deterministic retransmit) and group partitions
(:meth:`NetworkFabric.partition` / :meth:`NetworkFabric.heal` — transfers
across the cut block until the partition heals, which is how heartbeat
timeouts "see" a partitioned node as dead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Iterable

import numpy as np

from repro.common.units import Gbps
from repro.sim import Chain, CountdownLatch, Environment, Event, Resource
from repro.sim.batch import drive_chain
from repro.sim.core import _PROCESSED

__all__ = ["NetParams", "LinkFault", "NIC", "NetworkFabric"]


@dataclass(frozen=True)
class NetParams:
    """Endpoint and fabric parameters.

    Defaults model the paper's SSD testbed: 25 Gb/s Ethernet, ~10 us
    one-way port-to-port latency, full-duplex NICs.
    """

    bandwidth: float = Gbps(25)  # bytes/second per NIC direction
    latency: float = 10e-6  # one-way propagation + switching
    per_message_overhead: float = 2e-6  # stack/serialization cost

    def validate(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency < 0 or self.per_message_overhead < 0:
            raise ValueError("latencies must be non-negative")


@dataclass(frozen=True)
class LinkFault:
    """Perturbation applied to one node's NIC (both directions)."""

    bw_factor: float = 1.0  # multiplies usable bandwidth (0 < f <= 1)
    extra_latency: float = 0.0  # added one-way latency in seconds
    loss_prob: float = 0.0  # per-message drop probability (retransmitted)

    def validate(self) -> None:
        if not 0 < self.bw_factor <= 1:
            raise ValueError("bw_factor must be in (0, 1]")
        if self.extra_latency < 0:
            raise ValueError("extra_latency must be non-negative")
        if not 0 <= self.loss_prob < 1:
            raise ValueError("loss_prob must be in [0, 1)")


class NIC:
    """Full-duplex endpoint: independent TX and RX serializers."""

    def __init__(self, env: Environment, name: str, params: NetParams) -> None:
        self.env = env
        self.name = name
        self.params = params
        self.tx = Resource(env, capacity=1)
        self.rx = Resource(env, capacity=1)
        self.tx_bytes = 0
        self.rx_bytes = 0
        self.tx_msgs = 0
        self.rx_msgs = 0


class NetworkFabric:
    """Registry of NICs plus the transfer primitive.

    ``transfer(src, dst, nbytes)`` is a process generator modelling a one-way
    message: serialize out of ``src``'s TX at link rate, cross the switch
    (latency), land in ``dst``'s RX at link rate (store-and-forward; the two
    serializations overlap in reality, so only the slower endpoint charges
    full transfer time — here symmetric rates, so we charge TX fully and RX
    nominally to model full-duplex pipelining without double-counting time).
    """

    #: backoff before a lost message is retransmitted (seconds)
    RETRANSMIT_TIMEOUT = 1e-3

    def __init__(
        self,
        env: Environment,
        params: NetParams | None = None,
        fault_seed: int = 0x5EED,
    ) -> None:
        self.env = env
        self.params = params or NetParams()
        self.params.validate()
        # native integer-µs constants for the transfer hot path
        self._overhead_us = round(self.params.per_message_overhead * 1e6)
        self._latency_us = round(self.params.latency * 1e6)
        self._us_per_byte = 1e6 / self.params.bandwidth
        self.nics: dict[str, NIC] = {}
        self.total_bytes = 0
        self.total_msgs = 0
        # fault state
        self._faults: dict[str, LinkFault] = {}
        self._groups: dict[str, int] = {}  # node -> partition group (default 0)
        self._heal_waiters: list[Event] = []
        self._loss_rng = np.random.default_rng(fault_seed)
        self.dropped_msgs = 0

    def add_node(self, name: str) -> NIC:
        if name in self.nics:
            raise ValueError(f"node {name!r} already registered")
        nic = NIC(self.env, name, self.params)
        self.nics[name] = nic
        return nic

    # --------------------------------------------------------- fault control
    def degrade(
        self,
        node: str,
        bw_factor: float = 1.0,
        extra_latency: float = 0.0,
        loss_prob: float = 0.0,
    ) -> None:
        """Degrade one node's NIC (applies to its sends and receives)."""
        self._nic(node)  # validate the name
        fault = LinkFault(bw_factor, extra_latency, loss_prob)
        fault.validate()
        self._faults[node] = fault

    def restore(self, node: str) -> None:
        """Remove any degradation on ``node``."""
        self._faults.pop(node, None)

    def partition(self, *groups: Iterable[str]) -> None:
        """Split the fabric: each ``groups`` entry becomes an island; nodes
        not named stay together in the default island.  Transfers across
        islands block until the cut between their endpoints is gone (a new
        partition layout re-evaluates them, a :meth:`heal` releases all)."""
        assignment: dict[str, int] = {}
        for gid, group in enumerate(groups, start=1):
            for node in group:
                self._nic(node)  # validate
                assignment[node] = gid
        self._groups = assignment
        # a new layout may reconnect endpoints of parked transfers: wake
        # them all; each re-checks reachability and re-parks if still cut
        waiters, self._heal_waiters = self._heal_waiters, []
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed()

    def heal(self) -> None:
        """Rejoin all partitions; blocked transfers resume immediately."""
        self._groups = {}
        waiters, self._heal_waiters = self._heal_waiters, []
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed()

    def reachable(self, src: str, dst: str) -> bool:
        return self._groups.get(src, 0) == self._groups.get(dst, 0)

    @property
    def partitioned(self) -> bool:
        return bool(self._groups)

    @property
    def quiescent(self) -> bool:
        """No partition and no armed link fault anywhere on the fabric —
        the steady-state probe the schedule fast path gates admission on
        (under either condition ``transfer_chain`` already falls back to
        the generator path internally)."""
        return not self._faults and not self._groups

    def transfer(self, src: str, dst: str, nbytes: int) -> Generator:
        """Move ``nbytes`` from ``src`` to ``dst``; yields until delivered."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if src == dst:
            return  # local move: no network cost, no accounting
        src_nic = self._nic(src)
        dst_nic = self._nic(dst)

        # A cut link delivers nothing: wait for the partition to heal.
        if self._groups:
            while not self.reachable(src, dst):
                waiter = self.env.event()
                self._heal_waiters.append(waiter)
                yield waiter

        if self._faults:
            src_fault = self._faults.get(src)
            dst_fault = self._faults.get(dst)
            bw_factor = min(
                src_fault.bw_factor if src_fault else 1.0,
                dst_fault.bw_factor if dst_fault else 1.0,
            )
            extra_latency = (src_fault.extra_latency if src_fault else 0.0) + (
                dst_fault.extra_latency if dst_fault else 0.0
            )
            loss = 1.0 - (1.0 - (src_fault.loss_prob if src_fault else 0.0)) * (
                1.0 - (dst_fault.loss_prob if dst_fault else 0.0)
            )
            wire_us = round(nbytes * self._us_per_byte / bw_factor)
            extra_us = round(extra_latency * 1e6)
            # Lossy links retransmit after a timeout (deterministic RNG
            # stream).
            while loss > 0 and self._loss_rng.random() < loss:
                self.dropped_msgs += 1
                yield self.env.timeout(self.RETRANSMIT_TIMEOUT)
        else:
            # fault-free fast path (the overwhelmingly common case): no
            # fault-dict probes, no loss draw
            extra_us = 0
            wire_us = round(nbytes * self._us_per_byte)

        env = self.env
        with src_nic.tx.request() as tx:
            yield tx
            yield env.timeout_us(self._overhead_us + wire_us)
        # Propagation through the fabric.
        yield env.timeout_us(self._latency_us + extra_us)
        # Receiver-side occupancy: the RX port is busy for the wire time too
        # (it cannot accept two full-rate flows at once).
        with dst_nic.rx.request() as rx:
            yield rx
            yield env.timeout_us(wire_us)

        src_nic.tx_bytes += nbytes
        src_nic.tx_msgs += 1
        dst_nic.rx_bytes += nbytes
        dst_nic.rx_msgs += 1
        self.total_bytes += nbytes
        self.total_msgs += 1

    def transfer_chain(self, src: str, dst: str, nbytes: int) -> Chain:
        """:meth:`transfer` as a flat event chain (macro-op batching).

        Timing-equivalent to ``yield from transfer(...)`` at the call point:
        the TX request is taken now, each segment's timeout carries a plain
        callback instead of a generator resume, and the chain finishes
        *inline* at the final RX-hold pop — zero extra queue hops.  Any
        fault/partition state falls back to driving the legacy generator so
        loss-RNG draw order and heal waits stay byte-identical.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        env = self.env
        chain = Chain(env)
        if src == dst:
            chain._state = _PROCESSED  # local move: already delivered
            return chain
        if self._groups or self._faults:
            return drive_chain(env, self.transfer(src, dst, nbytes))
        _TransferChain(self, chain, self._nic(src), self._nic(dst), nbytes)
        return chain

    def transfer_many(
        self, legs: Iterable[tuple[str, str, int]]
    ) -> CountdownLatch:
        """Batched fan-out of independent transfers: one latch instead of a
        process + ``AllOf`` membership per leg.  Each leg keeps its own TX
        request (taken in list order, as consecutive leg processes would
        have), so contention order under shared NICs is unchanged."""
        env = self.env
        chains = [self.transfer_chain(s, d, n) for (s, d, n) in legs]
        latch = CountdownLatch(env, len(chains))
        if not chains:
            latch.succeed()
            return latch
        for ch in chains:
            if ch._state >= _PROCESSED:
                latch.leg_done()  # local move; relay fires if it was last
            else:
                latch.count_event(ch)
        return latch

    def rpc(self, src: str, dst: str, request_bytes: int, reply_bytes: int) -> Generator:
        """Round trip: request then reply (used for read-old-data fetches)."""
        yield from self.transfer(src, dst, request_bytes)
        yield from self.transfer(dst, src, reply_bytes)

    def _nic(self, name: str) -> NIC:
        try:
            return self.nics[name]
        except KeyError:
            raise KeyError(f"unknown node {name!r}") from None


class _TransferChain:
    """One in-flight :meth:`NetworkFabric.transfer_chain`: a slotted state
    machine reused as the callback of every segment event, so a transfer
    allocates two objects (chain + this) instead of a closure per stage.
    Stage timing is identical to the legacy generator: TX grant → TX hold
    (overhead + wire) → release + propagation → RX grant → RX hold (wire)
    → release, counters, inline finish."""

    __slots__ = ("fabric", "chain", "src_nic", "dst_nic", "nbytes",
                 "wire_us", "stage", "tx_req", "rx_req")

    def __init__(
        self,
        fabric: "NetworkFabric",
        chain: Chain,
        src_nic: NIC,
        dst_nic: NIC,
        nbytes: int,
    ) -> None:
        self.fabric = fabric
        self.chain = chain
        self.src_nic = src_nic
        self.dst_nic = dst_nic
        self.nbytes = nbytes
        self.wire_us = round(nbytes * fabric._us_per_byte)
        self.stage = 0
        self.rx_req = None
        tx_req = self.tx_req = src_nic.tx.request()
        if tx_req._state >= _PROCESSED:
            self(tx_req)
        else:
            tx_req.callbacks.append(self)

    def __call__(self, ev: Event) -> None:
        stage = self.stage
        fabric = self.fabric
        env = fabric.env
        if stage == 0:  # TX granted: hold for overhead + wire time
            self.stage = 1
            hold = env.timeout_us(fabric._overhead_us + self.wire_us)
            hold.callbacks.append(self)
        elif stage == 1:  # TX hold done: release, propagate
            self.src_nic.tx.release(self.tx_req)
            self.stage = 2
            prop = env.timeout_us(fabric._latency_us)
            prop.callbacks.append(self)
        elif stage == 2:  # propagated: claim the RX port
            self.stage = 3
            rx_req = self.rx_req = self.dst_nic.rx.request()
            if rx_req._state >= _PROCESSED:
                self(rx_req)
            else:
                rx_req.callbacks.append(self)
        elif stage == 3:  # RX granted: hold for wire time
            self.stage = 4
            hold = env.timeout_us(self.wire_us)
            hold.callbacks.append(self)
        else:  # RX hold done: release, account, finish inline
            self.dst_nic.rx.release(self.rx_req)
            nbytes = self.nbytes
            src_nic = self.src_nic
            dst_nic = self.dst_nic
            src_nic.tx_bytes += nbytes
            src_nic.tx_msgs += 1
            dst_nic.rx_bytes += nbytes
            dst_nic.rx_msgs += 1
            fabric.total_bytes += nbytes
            fabric.total_msgs += 1
            self.chain.finish()
