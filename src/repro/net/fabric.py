"""NIC + switch fabric on the DES."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.common.units import Gbps
from repro.sim import Environment, Resource

__all__ = ["NetParams", "NIC", "NetworkFabric"]


@dataclass(frozen=True)
class NetParams:
    """Endpoint and fabric parameters.

    Defaults model the paper's SSD testbed: 25 Gb/s Ethernet, ~10 us
    one-way port-to-port latency, full-duplex NICs.
    """

    bandwidth: float = Gbps(25)  # bytes/second per NIC direction
    latency: float = 10e-6  # one-way propagation + switching
    per_message_overhead: float = 2e-6  # stack/serialization cost

    def validate(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency < 0 or self.per_message_overhead < 0:
            raise ValueError("latencies must be non-negative")


class NIC:
    """Full-duplex endpoint: independent TX and RX serializers."""

    def __init__(self, env: Environment, name: str, params: NetParams) -> None:
        self.env = env
        self.name = name
        self.params = params
        self.tx = Resource(env, capacity=1)
        self.rx = Resource(env, capacity=1)
        self.tx_bytes = 0
        self.rx_bytes = 0
        self.tx_msgs = 0
        self.rx_msgs = 0


class NetworkFabric:
    """Registry of NICs plus the transfer primitive.

    ``transfer(src, dst, nbytes)`` is a process generator modelling a one-way
    message: serialize out of ``src``'s TX at link rate, cross the switch
    (latency), land in ``dst``'s RX at link rate (store-and-forward; the two
    serializations overlap in reality, so only the slower endpoint charges
    full transfer time — here symmetric rates, so we charge TX fully and RX
    nominally to model full-duplex pipelining without double-counting time).
    """

    def __init__(self, env: Environment, params: NetParams | None = None) -> None:
        self.env = env
        self.params = params or NetParams()
        self.params.validate()
        self.nics: dict[str, NIC] = {}
        self.total_bytes = 0
        self.total_msgs = 0

    def add_node(self, name: str) -> NIC:
        if name in self.nics:
            raise ValueError(f"node {name!r} already registered")
        nic = NIC(self.env, name, self.params)
        self.nics[name] = nic
        return nic

    def transfer(self, src: str, dst: str, nbytes: int) -> Generator:
        """Move ``nbytes`` from ``src`` to ``dst``; yields until delivered."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if src == dst:
            return  # local move: no network cost, no accounting
        p = self.params
        src_nic = self._nic(src)
        dst_nic = self._nic(dst)
        wire_time = nbytes / p.bandwidth

        with src_nic.tx.request() as tx:
            yield tx
            yield self.env.timeout(p.per_message_overhead + wire_time)
        # Propagation through the fabric.
        yield self.env.timeout(p.latency)
        # Receiver-side occupancy: the RX port is busy for the wire time too
        # (it cannot accept two full-rate flows at once).
        with dst_nic.rx.request() as rx:
            yield rx
            yield self.env.timeout(wire_time)

        src_nic.tx_bytes += nbytes
        src_nic.tx_msgs += 1
        dst_nic.rx_bytes += nbytes
        dst_nic.rx_msgs += 1
        self.total_bytes += nbytes
        self.total_msgs += 1

    def rpc(self, src: str, dst: str, request_bytes: int, reply_bytes: int) -> Generator:
        """Round trip: request then reply (used for read-old-data fetches)."""
        yield from self.transfer(src, dst, request_bytes)
        yield from self.transfer(dst, src, reply_bytes)

    def _nic(self, name: str) -> NIC:
        try:
            return self.nics[name]
        except KeyError:
            raise KeyError(f"unknown node {name!r}") from None
