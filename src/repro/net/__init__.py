"""Cluster network model: NICs, a non-blocking switch fabric, RPC transfers.

Bandwidth is enforced at the endpoints (each node's NIC is a queued resource
serialized at link rate); the switch itself is full-bisection, matching the
paper's single 25 Gb/s ToR switch.  All bytes moved are accounted per node
and globally — the NETWORK TRAFFIC column of Table 1.
"""

from repro.net.fabric import LinkFault, NetworkFabric, NetParams, NIC

__all__ = ["LinkFault", "NetworkFabric", "NetParams", "NIC"]
