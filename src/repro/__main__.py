"""``python -m repro`` — experiment CLI (see repro.harness.cli)."""

import sys

from repro.harness.cli import main

sys.exit(main())
