"""Reed-Solomon erasure coding and incremental (delta) update math.

Implements Equation (1) of the paper (parity generation via a GF(256)
coding matrix), erasure recovery via matrix inversion, and the incremental
update identities:

* Eq. (2): ``P' = P + a_ij * (D' - D)`` — single parity delta,
* Eq. (3)/(4): repeated updates at one address collapse to the latest,
* Eq. (5): deltas from several data blocks at the same stripe offset merge
  into one parity delta per parity block.
"""

from repro.ec.matrices import cauchy_matrix, coding_matrix, vandermonde_matrix
from repro.ec.rs import RSCode
from repro.ec.incremental import (
    apply_parity_delta,
    data_delta,
    merge_deltas_same_address,
    parity_delta,
    stripe_parity_delta,
)

__all__ = [
    "RSCode",
    "cauchy_matrix",
    "coding_matrix",
    "vandermonde_matrix",
    "data_delta",
    "parity_delta",
    "apply_parity_delta",
    "merge_deltas_same_address",
    "stripe_parity_delta",
]
