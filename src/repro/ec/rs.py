"""RS(k, m) encoder/decoder over GF(2^8).

A stripe is k data blocks + m parity blocks, all the same size.  Encoding is
Equation (1); recovery inverts the surviving k rows of the generator matrix.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.common.errors import ConfigError, DecodeError
from repro.ec.matrices import coding_matrix
from repro.gf.field import gf_mul_row, gf_mul_scalar
from repro.gf.matrix import gf_mat_inv, identity

__all__ = ["RSCode"]


class RSCode:
    """A Reed-Solomon code RS(k, m) with a fixed MDS coding matrix.

    Parameters
    ----------
    k:
        number of data blocks per stripe.
    m:
        number of parity blocks per stripe (tolerates any m erasures).
    matrix_kind:
        "cauchy" (default) or "vandermonde".
    """

    def __init__(self, k: int, m: int, matrix_kind: str = "cauchy") -> None:
        if k < 1 or m < 1:
            raise ConfigError(f"RS({k},{m}) requires k, m >= 1")
        self.k = k
        self.m = m
        self.matrix_kind = matrix_kind
        self.coding = coding_matrix(k, m, matrix_kind)  # m x k
        self.generator = np.concatenate([identity(k), self.coding], axis=0)

    # ------------------------------------------------------------------ API
    def encode(self, data_blocks: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Compute the m parity blocks for k equal-sized data blocks."""
        blocks = self._as_block_matrix(data_blocks, self.k)
        return list(self.encode_matrix(blocks))

    def encode_matrix(self, data: np.ndarray) -> np.ndarray:
        """Vectorized encode of a ``(k, n)`` uint8 matrix into ``(m, n)``.

        ``n`` can span many stripes laid side by side: GF arithmetic is
        column-independent, so encoding the concatenation equals
        concatenating per-stripe encodes.  The bulk-populate path uses this
        to amortize coefficient dispatch over a whole file instead of
        paying it per block.  One scratch row is reused for every gather
        (``np.take(..., out=)``), so the only allocation is the output.
        """
        data = np.asarray(data, dtype=np.uint8)
        if data.ndim != 2 or data.shape[0] != self.k:
            raise ConfigError(
                f"expected a ({self.k}, n) data matrix, got {data.shape}"
            )
        n = data.shape[1]
        out = np.zeros((self.m, n), dtype=np.uint8)
        tmp = np.empty(n, dtype=np.uint8)
        for i in range(self.m):
            row = out[i]
            for j in range(self.k):
                coef = int(self.coding[i, j])
                if coef == 0:
                    continue
                if coef == 1:
                    row ^= data[j]
                else:
                    np.take(gf_mul_row(coef), data[j], out=tmp)
                    row ^= tmp
        return out

    def encode_partial(self, cols: Sequence[int], data: np.ndarray) -> np.ndarray:
        """Parity *deltas* for updates touching a subset of data columns.

        ``data`` is a ``(len(cols), n)`` uint8 matrix of data deltas where
        row ``r`` sits at stripe data index ``cols[r]``; the result is the
        ``(m, n)`` matrix of parity deltas (absent columns contribute
        nothing).  Same skip-0 / xor-for-1 / ``np.take(out=)`` kernel as
        :meth:`encode_matrix`, so the bytes match folding per-extent
        ``gf_mul_scalar`` products one at a time — the bulk drain plane
        leans on that equality.  Duplicate columns are allowed and simply
        accumulate (XOR), matching repeated per-extent inserts.
        """
        data = np.asarray(data, dtype=np.uint8)
        if data.ndim != 2 or data.shape[0] != len(cols):
            raise ConfigError(
                f"expected a ({len(cols)}, n) delta matrix, got {data.shape}"
            )
        for c in cols:
            if not 0 <= int(c) < self.k:
                raise ConfigError(f"data column {c} outside stripe (k={self.k})")
        n = data.shape[1]
        out = np.zeros((self.m, n), dtype=np.uint8)
        tmp = np.empty(n, dtype=np.uint8)
        for i in range(self.m):
            row = out[i]
            for r, c in enumerate(cols):
                coef = int(self.coding[i, int(c)])
                if coef == 0:
                    continue
                if coef == 1:
                    row ^= data[r]
                else:
                    np.take(gf_mul_row(coef), data[r], out=tmp)
                    row ^= tmp
        return out

    def verify(
        self, data_blocks: Sequence[np.ndarray], parity_blocks: Sequence[np.ndarray]
    ) -> bool:
        """True iff the given parities match a fresh encode of the data."""
        expected = self.encode(data_blocks)
        if len(parity_blocks) != self.m:
            return False
        return all(
            np.array_equal(exp, np.asarray(got, dtype=np.uint8))
            for exp, got in zip(expected, parity_blocks)
        )

    def decode(
        self,
        available: Mapping[int, np.ndarray],
        erased: Iterable[int],
    ) -> dict[int, np.ndarray]:
        """Reconstruct erased blocks.

        ``available`` maps *stripe index* (0..k-1 data, k..k+m-1 parity) to
        block content; ``erased`` lists the stripe indices to rebuild.  Any k
        available blocks suffice.  Returns {index: reconstructed block}.
        """
        erased = sorted(set(int(e) for e in erased))
        for idx in erased:
            if not 0 <= idx < self.k + self.m:
                raise DecodeError(f"block index {idx} outside stripe")
        if len(erased) > self.m:
            raise DecodeError(
                f"{len(erased)} erasures exceed fault tolerance m={self.m}"
            )
        if not erased:
            return {}
        avail_idx = [i for i in sorted(available) if i not in erased]
        if len(avail_idx) < self.k:
            raise DecodeError(
                f"only {len(avail_idx)} surviving blocks, need k={self.k}"
            )
        use = avail_idx[: self.k]
        sub = self.generator[use]  # k x k, full rank by MDS property
        inv = gf_mat_inv(sub)

        blocks = self._as_block_matrix([available[i] for i in use], self.k)
        size = blocks.shape[1]

        out: dict[int, np.ndarray] = {}
        # First recover any erased *data* blocks, then re-encode parity rows.
        data_needed = [e for e in erased if e < self.k]
        parity_needed = [e for e in erased if e >= self.k]
        recovered_data: dict[int, np.ndarray] = {}
        for e in data_needed:
            acc = np.zeros(size, dtype=np.uint8)
            for j in range(self.k):
                coef = int(inv[e, j])
                if coef:
                    acc ^= gf_mul_scalar(coef, blocks[j])
            recovered_data[e] = acc
            out[e] = acc
        if parity_needed:
            # Rebuild full data vector (decode missing rows lazily).
            full_data: list[np.ndarray] = []
            for d in range(self.k):
                if d in recovered_data:
                    full_data.append(recovered_data[d])
                elif d in available:
                    full_data.append(np.asarray(available[d], dtype=np.uint8))
                else:
                    acc = np.zeros(size, dtype=np.uint8)
                    for j in range(self.k):
                        coef = int(inv[d, j])
                        if coef:
                            acc ^= gf_mul_scalar(coef, blocks[j])
                    full_data.append(acc)
            parities = self.encode(full_data)
            for e in parity_needed:
                out[e] = parities[e - self.k]
        return out

    # ------------------------------------------------------------- helpers
    @staticmethod
    def _as_block_matrix(blocks: Sequence[np.ndarray], expect: int) -> np.ndarray:
        if len(blocks) != expect:
            raise ConfigError(f"expected {expect} blocks, got {len(blocks)}")
        arrs = [np.asarray(b, dtype=np.uint8) for b in blocks]
        size = arrs[0].shape[-1] if arrs[0].ndim else 0
        for a in arrs:
            if a.ndim != 1:
                raise ConfigError("blocks must be 1-D uint8 arrays")
            if a.shape[0] != size:
                raise ConfigError("all blocks in a stripe must be equal-sized")
        return np.stack(arrs, axis=0)

    def __repr__(self) -> str:
        return f"RSCode(k={self.k}, m={self.m}, kind={self.matrix_kind!r})"
