"""Incremental (delta-based) parity update math — Equations (2)-(5).

All functions operate on 1-D uint8 numpy arrays representing the *updated
byte range*, not whole blocks; callers align ranges before merging.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.gf.field import gf_mul_scalar

__all__ = [
    "data_delta",
    "parity_delta",
    "apply_parity_delta",
    "merge_deltas_same_address",
    "stripe_parity_delta",
]


def data_delta(new_data: np.ndarray, old_data: np.ndarray) -> np.ndarray:
    """Eq. (2) inner term: ``D' - D`` (XOR in GF(2^8))."""
    new_data = np.asarray(new_data, dtype=np.uint8)
    old_data = np.asarray(old_data, dtype=np.uint8)
    if new_data.shape != old_data.shape:
        raise ValueError(
            f"delta shapes differ: {new_data.shape} vs {old_data.shape}"
        )
    return new_data ^ old_data


def parity_delta(coef: int, delta: np.ndarray) -> np.ndarray:
    """Eq. (2): parity delta ``a_ij * (D' - D)`` for one parity block."""
    return gf_mul_scalar(coef, delta)


def apply_parity_delta(parity: np.ndarray, pdelta: np.ndarray) -> np.ndarray:
    """Eq. (2) outer sum: ``P' = P + parity_delta`` (XOR), returns new array."""
    parity = np.asarray(parity, dtype=np.uint8)
    pdelta = np.asarray(pdelta, dtype=np.uint8)
    if parity.shape != pdelta.shape:
        raise ValueError("parity/delta shape mismatch")
    return parity ^ pdelta


def merge_deltas_same_address(deltas: Sequence[np.ndarray]) -> np.ndarray:
    """Eq. (3): XOR-fold successive deltas for the same address.

    The fold of ``D1^D0, D2^D1, ..., Dn^Dn-1`` telescopes to ``Dn ^ D0`` —
    i.e. only the newest data matters (Eq. 4).
    """
    if not deltas:
        raise ValueError("need at least one delta")
    acc = np.asarray(deltas[0], dtype=np.uint8).copy()
    for d in deltas[1:]:
        d = np.asarray(d, dtype=np.uint8)
        if d.shape != acc.shape:
            raise ValueError("all merged deltas must cover the same range")
        acc ^= d
    return acc


def stripe_parity_delta(
    coding_row: np.ndarray, block_deltas: Mapping[int, np.ndarray]
) -> np.ndarray:
    """Eq. (5): merge same-offset deltas from several data blocks of one
    stripe into a single parity delta for the parity block whose coding-matrix
    row is ``coding_row``.

    ``block_deltas`` maps data-block index j -> delta bytes at the shared
    offset; the result is ``sum_j a_ij * delta_j``.
    """
    coding_row = np.asarray(coding_row, dtype=np.uint8)
    items = sorted(block_deltas.items())
    if not items:
        raise ValueError("need at least one block delta")
    size = np.asarray(items[0][1]).shape[0]
    acc = np.zeros(size, dtype=np.uint8)
    for j, delta in items:
        if not 0 <= j < coding_row.shape[0]:
            raise ValueError(f"data block index {j} outside coding row")
        delta = np.asarray(delta, dtype=np.uint8)
        if delta.shape[0] != size:
            raise ValueError("all merged deltas must cover the same range")
        coef = int(coding_row[j])
        if coef:
            acc ^= gf_mul_scalar(coef, delta)
    return acc
