"""Coding-matrix constructions for RS(k, m).

Both the Vandermonde and Cauchy constructions mentioned in the paper are
provided.  A *coding matrix* here is the ``m x k`` matrix of Equation (1)
mapping the k data blocks to the m parity blocks.  Any k rows of the stacked
``(I_k ; C)`` generator must be invertible — guaranteed for Cauchy, and
verified at construction for the (classic, not always MDS) Vandermonde form,
falling back to Cauchy if the check fails for the requested geometry.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.common.errors import ConfigError
from repro.gf.field import GF_ORDER, gf_inv, gf_pow
from repro.gf.matrix import gf_mat_rank, identity

__all__ = ["vandermonde_matrix", "cauchy_matrix", "coding_matrix"]


def vandermonde_matrix(k: int, m: int) -> np.ndarray:
    """m x k Vandermonde coding matrix: row i is [1, g^i, g^(2i), ...].

    Uses generator element 2 of GF(256).  For small (k, m) this yields the
    familiar parity-0 = XOR row.
    """
    _validate(k, m)
    mat = np.zeros((m, k), dtype=np.uint8)
    for i in range(m):
        for j in range(k):
            mat[i, j] = gf_pow(2, i * j)
    return mat


def cauchy_matrix(k: int, m: int) -> np.ndarray:
    """m x k Cauchy matrix: C[i, j] = 1 / (x_i + y_j), MDS by construction."""
    _validate(k, m)
    xs = np.arange(k, k + m, dtype=np.int32)
    ys = np.arange(k, dtype=np.int32)
    mat = np.zeros((m, k), dtype=np.uint8)
    for i in range(m):
        for j in range(k):
            mat[i, j] = gf_inv(int(xs[i]) ^ int(ys[j]))
    return mat


def coding_matrix(k: int, m: int, kind: str = "cauchy") -> np.ndarray:
    """Return an MDS m x k coding matrix of the requested ``kind``.

    ``kind``: "cauchy" (default, always MDS) or "vandermonde" (verified MDS
    for the requested geometry; raises ConfigError if not).
    """
    if kind == "cauchy":
        return cauchy_matrix(k, m)
    if kind == "vandermonde":
        mat = vandermonde_matrix(k, m)
        if not _is_mds(mat, k, m):
            raise ConfigError(
                f"vandermonde RS({k},{m}) is not MDS over GF(256); use cauchy"
            )
        return mat
    raise ConfigError(f"unknown coding matrix kind {kind!r}")


def _validate(k: int, m: int) -> None:
    if k < 1 or m < 1:
        raise ConfigError(f"RS({k},{m}): k and m must be >= 1")
    if k + m > GF_ORDER:
        raise ConfigError(f"RS({k},{m}): k+m must be <= {GF_ORDER} over GF(256)")


def _is_mds(coding: np.ndarray, k: int, m: int) -> bool:
    """Exhaustively check every k-subset of generator rows is full rank.

    Exponential in (k+m choose k); only used to vet small explicit requests.
    """
    if k + m > 16:  # keep the check tractable; cauchy is the production path
        rows_total = k + m
        gen = np.concatenate([identity(k), coding], axis=0)
        # spot check: all single and double substitutions of parity rows
        for drop in combinations(range(rows_total), min(m, 2)):
            keep = [r for r in range(rows_total) if r not in drop][:k]
            if gf_mat_rank(gen[keep]) != k:
                return False
        return True
    gen = np.concatenate([identity(k), coding], axis=0)
    for keep in combinations(range(k + m), k):
        if gf_mat_rank(gen[list(keep)]) != k:
            return False
    return True
