"""Front-end request path: QoS pipeline, admission, retries, hedging, SLOs.

Layered refactor of the seed's monolithic client (see ISSUE 4):

* :mod:`repro.frontend.ops` — the core dispatch generators (shared with
  the seed-compatible :class:`~repro.cluster.client.Client` shim);
* :mod:`repro.frontend.request` — :class:`Request`/:class:`RequestResult`
  and the QoS class lattice;
* :mod:`repro.frontend.admission` — token buckets + graduated shedding;
* :mod:`repro.frontend.retry` — backoff policies and the retry budget;
* :mod:`repro.frontend.dispatcher` — the :class:`FrontEnd` pipeline;
* :mod:`repro.frontend.slo` — per-tenant/per-class SLO metrics.
"""

from repro.frontend.admission import AdmissionConfig, AdmissionController, TokenBucket
from repro.frontend.dispatcher import FrontEnd
from repro.frontend.request import (
    DEFAULT_DEADLINES,
    QOS_CLASSES,
    QOS_RANK,
    Request,
    RequestResult,
)
from repro.frontend.retry import ExponentialBackoff, NoRetry, RetryBudget, RetryPolicy
from repro.frontend.slo import SLO_TARGETS, SLOTracker

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "TokenBucket",
    "FrontEnd",
    "DEFAULT_DEADLINES",
    "QOS_CLASSES",
    "QOS_RANK",
    "Request",
    "RequestResult",
    "ExponentialBackoff",
    "NoRetry",
    "RetryBudget",
    "RetryPolicy",
    "SLO_TARGETS",
    "SLOTracker",
]
