"""SLO metrics: per-tenant/per-class latency percentiles, availability,
goodput, and error budget, plus windowed time series.

Every terminal :class:`~repro.frontend.request.RequestResult` is folded in
here.  Two read-outs:

* :meth:`SLOTracker.summary` — per ``(tenant, qos)`` aggregate: request
  counts by status, p50/p99/p999 latency, goodput (deadline-met ops/sec),
  **availability** (fraction of submitted requests served within deadline),
  and the remaining **error budget** against the class SLO target;
* :meth:`SLOTracker.series` — fixed-window time series of availability and
  p99 latency, which is what makes "foreground latency during a
  migration/recovery window" a plottable curve rather than one number.

All statistics are derived with :class:`~repro.metrics.collector.
MetricsCollector`'s percentile/window helpers over deterministic inputs,
so SLO numbers are digest-stable across processes and hash seeds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.request import QOS_RANK, Request, RequestResult
from repro.metrics.collector import MetricsCollector

__all__ = ["SLO_TARGETS", "SLORecord", "SLOTracker"]

#: per-class availability targets the error budget is burned against
SLO_TARGETS = {"gold": 0.999, "silver": 0.99, "bronze": 0.9}


@dataclass(frozen=True)
class SLORecord:
    """One terminal request outcome, as the tracker stores it."""

    t: float  # completion (or shed/abandonment) sim time
    tenant: str
    qos: str
    op: str
    status: str
    latency: float
    met: bool  # served successfully within its deadline
    attempts: int
    hedged: bool
    hedge_won: bool
    retries: int


class SLOTracker:
    """Accumulates request outcomes; derives SLO statistics on demand."""

    def __init__(self, env, targets: dict[str, float] | None = None) -> None:
        self.env = env
        self.targets = dict(SLO_TARGETS if targets is None else targets)
        self.records: list[SLORecord] = []
        # parallel served-latency series (completion-time order), so the
        # windowed pressure read-out shares the collector's tail scan
        self._served_t: list[float] = []
        self._served_lat: list[float] = []

    # ------------------------------------------------------------- recording
    def record(self, request: Request, result: RequestResult) -> None:
        now = self.env.now
        self.records.append(
            SLORecord(
                t=now,
                tenant=request.tenant,
                qos=request.qos,
                op=request.op,
                status=result.status,
                latency=result.latency,
                met=result.met_deadline(request.deadline),
                attempts=result.attempts,
                hedged=result.hedged,
                hedge_won=result.hedge_won,
                retries=result.retries,
            )
        )
        if result.status == "ok":
            self._served_t.append(now)
            self._served_lat.append(result.latency)

    def recent_p99(self, window: float, now: float | None = None) -> float:
        """p99 of *served* latencies completed in the trailing ``window``
        seconds — the live pressure signal the background governor and the
        adaptive-admission AIMD loop both consume."""
        if now is None:
            now = self.env.now
        recent = MetricsCollector.tail_window(
            self._served_t, self._served_lat, now - window
        )
        return MetricsCollector.percentile_stats(recent, (99.0,))["p99"]

    # -------------------------------------------------------------- read-out
    def _groups(self) -> dict[tuple[str, str], list[SLORecord]]:
        groups: dict[tuple[str, str], list[SLORecord]] = {}
        for rec in self.records:
            groups.setdefault((rec.tenant, rec.qos), []).append(rec)
        return groups

    @staticmethod
    def _stats(recs: list[SLORecord], target: float) -> dict[str, float]:
        submitted = len(recs)
        served = [r for r in recs if r.status == "ok"]
        met = [r for r in served if r.met]
        span = max(r.t for r in recs) - min(r.t for r in recs) if submitted > 1 else 0.0
        availability = len(met) / submitted if submitted else 0.0
        # error budget: the SLO target allows (1 - target) of requests to
        # miss; remaining = 1 - miss_rate / allowance (clamped at 0, so a
        # blown budget reads 0.0 rather than going negative)
        allowance = 1.0 - target
        miss_rate = 1.0 - availability
        budget = 1.0 - miss_rate / allowance if allowance > 0 else 0.0
        out = {
            "submitted": float(submitted),
            "served": float(len(served)),
            "shed": float(sum(1 for r in recs if r.status == "shed")),
            "failed": float(sum(1 for r in recs if r.status == "failed")),
            "deadline_missed": float(
                sum(1 for r in recs if r.status == "deadline")
                + sum(1 for r in served if not r.met)
            ),
            "retries": float(sum(r.retries for r in recs)),
            "hedges": float(sum(1 for r in recs if r.hedged)),
            "hedge_wins": float(sum(1 for r in recs if r.hedge_won)),
            "availability": availability,
            "goodput": len(met) / span if span > 0 else float(len(met)),
            "error_budget": max(0.0, budget),
            "slo_target": target,
        }
        out.update(
            MetricsCollector.percentile_stats([r.latency for r in served])
        )
        return out

    def overall(self) -> dict[str, float]:
        """Aggregate foreground SLO across every tenant and class — the
        one-number read-outs (p50/p99/p999 latency, availability) the
        background governor's acceptance comparison and the nightly bench
        track.  Derived from the same records as :meth:`summary`."""
        recs = self.records
        met = sum(1 for r in recs if r.met)
        out = {
            "submitted": float(len(recs)),
            "served": float(len(self._served_lat)),
            "availability": met / len(recs) if recs else 0.0,
        }
        out.update(MetricsCollector.percentile_stats(self._served_lat))
        return out

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-``tenant/qos`` SLO aggregates, sorted by class rank then name
        (the deterministic order the CLI table and the digest both use)."""
        groups = self._groups()
        ordered = sorted(groups, key=lambda key: (QOS_RANK[key[1]], key[0]))
        return {
            f"{tenant}/{qos}": self._stats(groups[(tenant, qos)], self.targets[qos])
            for tenant, qos in ordered
        }

    def series(self, window: float = 0.05) -> dict[str, list[float]]:
        """Windowed availability + p99 latency time series (all tenants).

        Keys: ``t`` (window centers), ``availability`` (deadline-met
        fraction per window), ``p99`` (served-latency p99 per window),
        ``submitted`` (arrivals per window) — the plottable "latency during
        migration/recovery" curve.
        """
        if not self.records:
            return {"t": [], "availability": [], "p99": [], "submitted": []}
        times = [r.t for r in self.records]
        t0 = min(times)
        met = [1.0 if r.met else 0.0 for r in self.records]
        centers, met_bins = MetricsCollector.windowed(times, met, window, t0=t0)
        out = {
            "t": [float(c) for c in centers],
            "availability": [
                float(b.mean()) if b.size else 0.0 for b in met_bins
            ],
            "submitted": [float(b.size) for b in met_bins],
        }
        # p99 per window over *served* completions — binned from the same
        # origin, so both series share exact window centers and a window
        # in which nothing completed (the outage itself) reads 0, not a
        # neighbour's value
        served = [(r.t, r.latency) for r in self.records if r.status == "ok"]
        by_center: dict[float, float] = {}
        if served:
            s_centers, lat_bins = MetricsCollector.windowed(
                [t for t, _l in served],
                [latency for _t, latency in served],
                window,
                t0=t0,
            )
            by_center = {
                float(c): MetricsCollector.percentile_stats(b, (99.0,))["p99"]
                for c, b in zip(s_centers, lat_bins)
                if b.size
            }
        out["p99"] = [by_center.get(c, 0.0) for c in out["t"]]
        return out
