"""Admission control: per-tenant token buckets + graduated queue shedding.

Two gates stand between a submitted request and the dispatch queues:

* a **token bucket** per tenant (``rate`` tokens/sec, ``burst`` capacity)
  caps each tenant's sustained arrival rate, so one tenant's flood cannot
  starve the others;
* a **queue-depth gate** sheds load when the pipeline backs up — with a
  *graduated* profile: bronze is shed when queues reach 1/3 of the bound,
  silver at 2/3, gold only at the full bound.  Under a fault-induced
  backlog the scavenger classes drop first, which is what preserves the
  gold availability SLO.

Everything is arithmetic over the simulated clock — no RNG, no wall time —
so admission decisions are bit-deterministic across runs and processes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.request import QOS_CLASSES, QOS_RANK

__all__ = ["TokenBucket", "AdmissionConfig", "AdmissionController"]


class TokenBucket:
    """Deterministic continuous-refill token bucket."""

    __slots__ = ("rate", "burst", "_tokens", "_stamp")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("token bucket rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._stamp = 0.0

    def _refill(self, now: float) -> None:
        if now > self._stamp:
            self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
            self._stamp = now

    def take(self, now: float, n: float = 1.0) -> bool:
        """Consume ``n`` tokens if available; False = rate exceeded."""
        self._refill(now)
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    def level(self, now: float) -> float:
        self._refill(now)
        return self._tokens


@dataclass(frozen=True)
class AdmissionConfig:
    """Shared admission parameters (per-tenant buckets are cloned from it)."""

    rate: float = 2000.0  # tokens/sec per tenant
    burst: float = 64.0  # bucket capacity
    max_queued: int = 96  # total queued requests before even gold sheds

    def depth_bound(self, qos: str) -> int:
        """Graduated shedding threshold for a class (gold = full bound)."""
        rank = QOS_RANK[qos]
        n = len(QOS_CLASSES)
        return max(1, self.max_queued * (n - rank) // n)


class AdmissionController:
    """Applies :class:`AdmissionConfig` to a stream of submissions."""

    def __init__(self, config: AdmissionConfig | None = None) -> None:
        self.config = config or AdmissionConfig()
        self._buckets: dict[str, TokenBucket] = {}
        self.shed_rate = 0  # rejected by the token bucket
        self.shed_depth = 0  # rejected by the queue-depth gate

    def bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                self.config.rate, self.config.burst
            )
        return bucket

    def admit(self, tenant: str, qos: str, now: float, queued: int) -> str | None:
        """None = admitted; otherwise the shed reason (for the result)."""
        if queued >= self.config.depth_bound(qos):
            self.shed_depth += 1
            return f"queue depth {queued} over the {qos} bound"
        if not self.bucket(tenant).take(now):
            self.shed_rate += 1
            return f"tenant {tenant} over its admission rate"
        return None
