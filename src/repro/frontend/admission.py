"""Admission control: per-tenant token buckets + graduated queue shedding.

Two gates stand between a submitted request and the dispatch queues:

* a **token bucket** per tenant (``rate`` tokens/sec, ``burst`` capacity)
  caps each tenant's sustained arrival rate, so one tenant's flood cannot
  starve the others;
* a **queue-depth gate** sheds load when the pipeline backs up — with a
  *graduated* profile: bronze is shed when queues reach 1/3 of the bound,
  silver at 2/3, gold only at the full bound.  Under a fault-induced
  backlog the scavenger classes drop first, which is what preserves the
  gold availability SLO.

With ``adaptive=True`` the bucket rates additionally follow an **AIMD
loop** driven by the same windowed foreground-p99 pressure signal as the
background scheduler's governor: a p99 breach cuts every tenant's rate
multiplicatively, headroom restores it additively — back-pressure at the
door instead of in the queues.  Off by default.

Everything is arithmetic over the simulated clock — no RNG, no wall time —
so admission decisions are bit-deterministic across runs and processes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.control import aimd_step, validate_aimd
from repro.frontend.request import QOS_CLASSES, QOS_RANK

__all__ = ["TokenBucket", "AdmissionConfig", "AdmissionController"]


class TokenBucket:
    """Deterministic continuous-refill token bucket."""

    __slots__ = ("rate", "burst", "_tokens", "_stamp")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("token bucket rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._stamp = 0.0

    def _refill(self, now: float) -> None:
        if now > self._stamp:
            self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
            self._stamp = now

    def take(self, now: float, n: float = 1.0) -> bool:
        """Consume ``n`` tokens if available; False = rate exceeded."""
        self._refill(now)
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    def set_rate(self, rate: float, now: float) -> None:
        """Change the refill rate (tokens accrued so far are kept)."""
        if rate <= 0:
            raise ValueError("token bucket rate must be positive")
        self._refill(now)
        self.rate = rate

    def level(self, now: float) -> float:
        self._refill(now)
        return self._tokens


@dataclass(frozen=True)
class AdmissionConfig:
    """Shared admission parameters (per-tenant buckets are cloned from it)."""

    rate: float = 2000.0  # tokens/sec per tenant
    burst: float = 64.0  # bucket capacity
    max_queued: int = 96  # total queued requests before even gold sheds
    # AIMD adaptive target rate, driven by the windowed foreground p99
    # (the governor's pressure signal); off by default
    adaptive: bool = False
    aimd_p99_target: float = 0.02  # breach threshold (seconds)
    aimd_window: float = 0.05  # trailing p99 window (seconds)
    aimd_interval: float = 0.025  # min seconds between adjustments
    aimd_backoff: float = 0.5  # multiplicative decrease on breach
    aimd_recover: float = 0.1  # additive rate-scale recovery per interval
    aimd_floor: float = 0.05  # lowest rate scale (admission never closes)

    def validate(self) -> None:
        if self.rate <= 0 or self.burst <= 0 or self.max_queued < 1:
            raise ValueError("invalid admission rate/burst/max_queued")
        if self.adaptive:
            validate_aimd(
                backoff=self.aimd_backoff,
                recover=self.aimd_recover,
                floor=self.aimd_floor,
                target=self.aimd_p99_target,
                window=self.aimd_window,
                interval=self.aimd_interval,
            )

    def depth_bound(self, qos: str) -> int:
        """Graduated shedding threshold for a class (gold = full bound)."""
        rank = QOS_RANK[qos]
        n = len(QOS_CLASSES)
        return max(1, self.max_queued * (n - rank) // n)


class AdmissionController:
    """Applies :class:`AdmissionConfig` to a stream of submissions."""

    def __init__(self, config: AdmissionConfig | None = None) -> None:
        self.config = config or AdmissionConfig()
        self.config.validate()
        self._buckets: dict[str, TokenBucket] = {}
        self.shed_rate = 0  # rejected by the token bucket
        self.shed_depth = 0  # rejected by the queue-depth gate
        # AIMD state (meaningful only when config.adaptive)
        self.rate_scale = 1.0
        self.min_rate_scale = 1.0
        self.backoffs = 0  # multiplicative decreases taken
        self._last_adapt = 0.0

    def bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                self.config.rate * self.rate_scale, self.config.burst
            )
        return bucket

    def should_adapt(self, now: float) -> bool:
        """True when the next :meth:`adapt` call would act — callers gate
        the (tail-scan + percentile) pressure computation on this so the
        hot completion path pays nothing inside the rate interval."""
        return self.config.adaptive and now - self._last_adapt >= self.config.aimd_interval

    def adapt(self, now: float, p99: float) -> None:
        """One AIMD observation: scale every tenant's bucket rate by the
        pressure verdict (at most once per ``aimd_interval``)."""
        cfg = self.config
        if not cfg.adaptive:
            return
        if now - self._last_adapt < cfg.aimd_interval:
            return
        self._last_adapt = now
        breached = p99 > cfg.aimd_p99_target
        if breached:
            self.backoffs += 1
        self.rate_scale = aimd_step(
            self.rate_scale,
            breached,
            backoff=cfg.aimd_backoff,
            recover=cfg.aimd_recover,
            floor=cfg.aimd_floor,
        )
        self.min_rate_scale = min(self.min_rate_scale, self.rate_scale)
        for bucket in self._buckets.values():
            bucket.set_rate(cfg.rate * self.rate_scale, now)

    def admit(self, tenant: str, qos: str, now: float, queued: int) -> str | None:
        """None = admitted; otherwise the shed reason (for the result)."""
        if queued >= self.config.depth_bound(qos):
            self.shed_depth += 1
            return f"queue depth {queued} over the {qos} bound"
        if not self.bucket(tenant).take(now):
            self.shed_rate += 1
            return f"tenant {tenant} over its admission rate"
        return None
