"""Retry policy: exponential backoff under a cluster-wide retry budget.

A :class:`RetryPolicy` decides *whether and when* a failed attempt is
re-dispatched.  The stock policy is capped exponential backoff (no jitter —
the DES is deterministic and the backoff base already de-synchronizes
clients that failed at different instants) gated by a **retry budget**:
retries may consume at most ``budget_ratio`` of completed-request volume,
the standard defense against retry storms amplifying an outage.

Which failures are retryable is decided by
:func:`repro.common.errors.is_retryable`: transient unavailability (a down
node — recovery or a restart heals it) and impossible decodes (erasures
mend) retry; true integrity violations are fatal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import is_retryable

__all__ = ["RetryPolicy", "NoRetry", "ExponentialBackoff", "RetryBudget", "is_retryable"]


class RetryBudget:
    """Token pool: completions earn ``ratio`` tokens, each retry spends one.

    Seeded with ``initial`` so the first failures of a run can retry before
    any request has completed.
    """

    __slots__ = ("ratio", "_tokens", "spent", "denied")

    def __init__(self, ratio: float = 0.2, initial: float = 10.0) -> None:
        if ratio < 0:
            raise ValueError("budget ratio must be >= 0")
        self.ratio = ratio
        self._tokens = float(initial)
        self.spent = 0
        self.denied = 0

    def earn(self) -> None:
        self._tokens += self.ratio

    def take(self) -> bool:
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.spent += 1
            return True
        self.denied += 1
        return False


class RetryPolicy:
    """Decides the delay before attempt ``attempt + 1`` (None = give up)."""

    def delay(self, attempt: int) -> float | None:
        raise NotImplementedError


class NoRetry(RetryPolicy):
    """Fail fast: every error is terminal."""

    def delay(self, attempt: int) -> float | None:
        return None


@dataclass(frozen=True)
class ExponentialBackoff(RetryPolicy):
    """``base * factor**(attempt-1)`` capped at ``cap``, ``max_retries`` deep."""

    base: float = 0.002
    factor: float = 2.0
    cap: float = 0.05
    max_retries: int = 4

    def delay(self, attempt: int) -> float | None:
        if attempt > self.max_retries:
            return None
        return min(self.cap, self.base * self.factor ** (attempt - 1))
