"""QoS-aware front-end dispatcher: queues, admission, retries, hedging.

The :class:`FrontEnd` is the request pipeline the ISSUE's tentpole names:

1. a tenant **submits** a :class:`~repro.frontend.request.Request`
   (:meth:`FrontEnd.submit` — returns a completion event);
2. the **admission controller** (token bucket + graduated queue-depth
   shedding) either sheds it or parks it on its tenant's queue;
3. the **scheduler** drains queues in strict QoS-class priority (gold
   before silver before bronze), round-robin among tenants within a class,
   under a ``max_inflight`` concurrency cap;
4. each dispatch runs through :mod:`repro.frontend.ops` with a pluggable
   :class:`~repro.frontend.retry.RetryPolicy` (exponential backoff gated
   by a cluster-wide retry budget) racing the request deadline, and — for
   reads — a **hedge** leg that reconstructs the range from k other blocks
   of the EC stripe when the primary leg is slow;
5. the terminal outcome lands in the :class:`~repro.frontend.slo.
   SLOTracker` and resolves the completion event.

Failure semantics: transient errors (a crashed primary —
:class:`~repro.common.errors.UnavailableError` — or an impossible decode)
are retried while budget and deadline allow; the fault injector's recovery
re-homes the block between attempts, so the retry layer *heals* crash and
partition windows instead of surfacing them to tenants.  When a request's
deadline passes mid-flight it is abandoned (counted as a deadline miss)
and two things happen to whatever is still running on its behalf:

* **read legs are cancelled** through the sim engine's cancellable
  machinery (:meth:`~repro.sim.core.Process.cancel_chain`): queued device
  claims are withdrawn and pending service/net timeouts dropped, so an
  abandoned hedge no longer burns cluster bandwidth to completion.  Work
  already handed to another actor (a fetch mid-RPC) runs out, like a real
  request already on the wire;
* **update legs keep executing** — a mutation cannot be un-sent — but the
  whole leg tree is *demoted* out of the FOREGROUND device lane (the
  shared :class:`~repro.sim.core.Lane` cell flips to
  ``IOPriority.DEMOTED``), so an expired op stops competing with live
  foreground traffic while still beating the maintenance plane.

:meth:`FrontEnd.quiesce` waits surviving stragglers out before a run is
digested.

Scheduling decisions iterate sorted structures only, so the whole pipeline
is bit-deterministic across processes and hash seeds.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Generator, Optional

from repro.common.errors import ReproError, is_retryable
from repro.frontend import ops as _ops
from repro.sim import Interrupt, Lane
from repro.storage.base import IOPriority
from repro.frontend.admission import AdmissionConfig, AdmissionController
from repro.frontend.request import (
    DEFAULT_DEADLINES,
    QOS_CLASSES,
    QOS_RANK,
    Request,
    RequestResult,
    STATUS_DEADLINE,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SHED,
)
from repro.frontend.retry import ExponentialBackoff, RetryBudget, RetryPolicy
from repro.frontend.slo import SLOTracker

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.ecfs import ECFS
    from repro.sim import Event

__all__ = ["FrontEnd"]


class FrontEnd:
    """The layered client pipeline over one :class:`ECFS` cluster."""

    def __init__(
        self,
        ecfs: "ECFS",
        retry: Optional[RetryPolicy] = None,
        admission: Optional[AdmissionConfig] = None,
        budget: Optional[RetryBudget] = None,
        hedge_delay: Optional[float] = 0.02,
        max_inflight: int = 16,
        slo_targets: Optional[dict[str, float]] = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if hedge_delay is not None and hedge_delay <= 0:
            raise ValueError("hedge_delay must be positive (or None to disable)")
        self.ecfs = ecfs
        self.retry = retry if retry is not None else ExponentialBackoff()
        self.admission = AdmissionController(admission)
        self.budget = budget if budget is not None else RetryBudget()
        self.hedge_delay = hedge_delay
        self.max_inflight = max_inflight
        self.slo = SLOTracker(ecfs.env, slo_targets)

        self._queues: dict[str, deque] = {}  # tenant -> deque[(Request, Event)]
        self._tenant_qos: dict[str, str] = {}
        self._tenant_deadline: dict[str, float] = {}
        self._clients: dict[str, object] = {}
        self._rank_tenants: dict[str, list[str]] = {q: [] for q in QOS_CLASSES}
        self._rr: dict[str, int] = {q: 0 for q in QOS_CLASSES}
        self._queued = 0
        self._inflight = 0
        self._req_counter = 0
        self._closed = False
        self._scheduler = None
        self._signal: Optional["Event"] = None
        self._idle_waiters: list = []
        self._live: list = []  # every spawned process: handlers + legs
        self.counters = {
            "submitted": 0,
            "ok": 0,
            "shed": 0,
            "failed": 0,
            "deadline": 0,
            "retries": 0,
            "hedges": 0,
            "hedge_wins": 0,
            "cancelled_legs": 0,
            "demoted": 0,
        }

    # ------------------------------------------------------------------ API
    def register_tenant(
        self, name: str, qos: str = "silver", deadline: Optional[float] = None
    ) -> None:
        """Create the tenant's queue and its client endpoint on the fabric."""
        if name in self._tenant_qos:
            raise ValueError(f"tenant {name!r} already registered")
        if qos not in QOS_RANK:
            raise ValueError(f"unknown QoS class {qos!r}")
        self._tenant_qos[name] = qos
        self._tenant_deadline[name] = (
            deadline if deadline is not None else DEFAULT_DEADLINES[qos]
        )
        self._queues[name] = deque()
        self._clients[name] = self.ecfs.add_clients(1)[-1]
        bucket = self._rank_tenants[qos]
        bucket.append(name)
        bucket.sort()  # deterministic round-robin base order

    def submit(
        self,
        op: str,
        tenant: str,
        file_id: int,
        offset: int,
        size: int,
        deadline: Optional[float] = None,
    ) -> "Event":
        """Enqueue one request; returns an event firing with its
        :class:`RequestResult` (sheds resolve immediately)."""
        env = self.ecfs.env
        if self._closed:
            raise RuntimeError("front end is closed to new submissions")
        if tenant not in self._tenant_qos:
            raise KeyError(f"unknown tenant {tenant!r}")
        if self._scheduler is None or not self._scheduler.is_alive:
            self._scheduler = env.process(self._schedule_loop(), name="fe-sched")
        self._req_counter += 1
        request = Request(
            req_id=self._req_counter,
            tenant=tenant,
            qos=self._tenant_qos[tenant],
            op=op,
            file_id=file_id,
            offset=offset,
            size=size,
            deadline=deadline if deadline is not None else self._tenant_deadline[tenant],
            submitted_at=env.now,
        )
        self.counters["submitted"] += 1
        done = env.event()
        reason = self.admission.admit(tenant, request.qos, env.now, self._queued)
        if reason is not None:
            result = RequestResult(status=STATUS_SHED, latency=0.0, error=reason)
            self._finish(request, result)
            done.succeed(result)
            return done
        self._queues[tenant].append((request, done))
        self._queued += 1
        self._wake()
        return done

    def close(self) -> None:
        """No further submissions; the scheduler exits once drained."""
        self._closed = True
        self._wake()

    def quiesce(self) -> Generator:
        """Process: wait until every request — including abandoned straggler
        legs — has fully finished executing."""
        env = self.ecfs.env
        while True:
            self._live = [p for p in self._live if p.is_alive]
            if self._live:
                yield env.all_of(self._live)
                continue
            if self._queued == 0 and self._inflight == 0:
                return
            waiter = env.event()
            self._idle_waiters.append(waiter)
            yield waiter

    def stats(self) -> dict[str, float]:
        """Pipeline-level accounting (admission, budget, hedging).

        Counted live at the pipeline layer, so mid-run introspection (fault
        checks, progress probes) works before any SLO record lands.  Note
        the deliberate semantic split from :meth:`SLOTracker.summary`:
        ``deadline`` here counts *abandoned* requests only, while the SLO
        layer's ``deadline_missed`` also counts served-but-late ones.
        """
        out = {k: float(v) for k, v in self.counters.items()}
        out["shed_rate_limited"] = float(self.admission.shed_rate)
        out["shed_queue_depth"] = float(self.admission.shed_depth)
        out["retry_budget_spent"] = float(self.budget.spent)
        out["retry_budget_denied"] = float(self.budget.denied)
        if self.admission.config.adaptive:
            out["admission_backoffs"] = float(self.admission.backoffs)
            out["admission_min_rate_scale"] = self.admission.min_rate_scale
        # table-driven write schedules: updates submitted through this
        # pipeline reach repro.sim.schedule via frontend.ops.execute_update,
        # so the fast path's admission counters belong in the same read-out
        schedules = self.ecfs.schedules
        if schedules is not None:
            out["schedule_attempts"] = float(schedules.attempts)
            out["schedule_hits"] = float(schedules.hits)
            out["schedule_bails"] = float(schedules.bails)
            out["schedule_hit_rate"] = float(schedules.hit_rate)
        return out

    # ------------------------------------------------------------ scheduler
    def _track(self, proc) -> None:
        """Register a spawned process for quiesce(); amortized pruning keeps
        the list O(inflight) instead of O(requests-ever) — finished legs
        would otherwise pin their (block-sized) return payloads all run."""
        if len(self._live) >= 256:
            self._live = [p for p in self._live if p.is_alive]
        self._live.append(proc)

    def _wake(self) -> None:
        if self._signal is not None and not self._signal.triggered:
            self._signal.succeed()

    def _notify_idle(self) -> None:
        if self._queued == 0 and self._inflight == 0 and self._idle_waiters:
            waiters, self._idle_waiters = self._idle_waiters, []
            for waiter in waiters:
                if not waiter.triggered:
                    waiter.succeed()

    def _next_item(self):
        """Strict class priority; round-robin among a class's tenants."""
        for qos in QOS_CLASSES:
            tenants = self._rank_tenants[qos]
            if not tenants:
                continue
            start = self._rr[qos]
            for i in range(len(tenants)):
                tenant = tenants[(start + i) % len(tenants)]
                queue = self._queues[tenant]
                if queue:
                    self._rr[qos] = (start + i + 1) % len(tenants)
                    return queue.popleft()
        return None

    def _schedule_loop(self) -> Generator:
        env = self.ecfs.env
        while True:
            item = self._next_item() if self._inflight < self.max_inflight else None
            if item is None:
                if self._closed and self._queued == 0 and self._inflight == 0:
                    return
                self._signal = env.event()
                yield self._signal
                continue
            request, done = item
            self._queued -= 1
            self._inflight += 1
            proc = env.process(
                self._handle(request, done), name=f"fe-req{request.req_id}"
            )
            # one scheduling-lane cell per request: every process spawned
            # under the handler shares it, so a deadline expiry can demote
            # the whole in-flight tree's device I/O in one assignment
            proc.lane = Lane()
            self._track(proc)

    # -------------------------------------------------------------- handling
    def _finish(self, request: Request, result: RequestResult) -> None:
        self.counters[result.status] += 1
        if result.hedge_won:
            self.counters["hedge_wins"] += 1
        self.slo.record(request, result)
        now = self.ecfs.env.now
        if self.admission.should_adapt(now):
            # AIMD admission rides the same windowed-p99 pressure signal as
            # the background governor, sampled at completion edges (the
            # p99 tail scan is gated on the adapt interval — completions
            # inside it pay nothing)
            cfg = self.admission.config
            self.admission.adapt(now, self.slo.recent_p99(cfg.aimd_window, now))

    def _handle(self, request: Request, done) -> Generator:
        env = self.ecfs.env
        client = self._clients[request.tenant]
        deadline_at = request.submitted_at + request.deadline
        attempts = 0
        retries = 0
        hedged = False
        hedge_won = False
        result: Optional[RequestResult] = None
        while result is None:
            attempts += 1
            kind, payload, from_hedge, did_hedge = yield from self._race(
                request, client, deadline_at, allow_hedge=not hedged
            )
            hedged = hedged or did_hedge
            if kind == "ok":
                hedge_won = from_hedge
                self.budget.earn()
                result = RequestResult(
                    status=STATUS_OK,
                    latency=env.now - request.submitted_at,
                    attempts=attempts,
                    hedged=hedged,
                    hedge_won=hedge_won,
                    retries=retries,
                    value=payload,
                )
            elif kind == "deadline":
                result = RequestResult(
                    status=STATUS_DEADLINE,
                    latency=env.now - request.submitted_at,
                    attempts=attempts,
                    hedged=hedged,
                    retries=retries,
                    error="deadline passed mid-flight",
                )
            else:  # every leg of the attempt failed
                exc = payload
                delay = self.retry.delay(attempts) if is_retryable(exc) else None
                if (
                    delay is not None
                    and env.now + delay < deadline_at
                    and self.budget.take()
                ):
                    retries += 1
                    self.counters["retries"] += 1
                    yield env.timeout(delay)
                    continue
                result = RequestResult(
                    status=STATUS_FAILED,
                    latency=env.now - request.submitted_at,
                    attempts=attempts,
                    hedged=hedged,
                    retries=retries,
                    error=f"{type(exc).__name__}: {exc}",
                )
        self._finish(request, result)
        self._inflight -= 1
        self._wake()
        self._notify_idle()
        done.succeed(result)

    def _race(
        self, request: Request, client, deadline_at: float, allow_hedge: bool
    ) -> Generator:
        """One dispatch attempt: primary leg vs. hedge timer vs. deadline.

        Returns ``(kind, payload, from_hedge, did_hedge)`` where kind is
        "ok" (payload = value), "err" (payload = last exception), or
        "deadline".  Legs that lose (or outlive the deadline) keep running;
        they are tracked in ``_live`` and waited out by :meth:`quiesce`.
        """
        env = self.ecfs.env
        if env.now >= deadline_at:
            return ("deadline", None, False, False)
        primary = env.process(
            self._safe(self._attempt(request, client)),
            name=f"fe-try{request.req_id}",
        )
        self._track(primary)
        legs: list[tuple] = [(primary, False)]
        did_hedge = False
        hedge_timer = None
        if (
            allow_hedge
            and request.op == "read"
            and self.hedge_delay is not None
            and env.now + self.hedge_delay < deadline_at
        ):
            hedge_timer = env.timeout(self.hedge_delay)
        deadline_ev = (
            env.timeout_at(deadline_at) if deadline_at != float("inf") else None
        )
        last_exc: BaseException = ReproError("attempt spawned no legs")
        cancelled: set = set()  # legs already cancel_chain'd (count once)
        try:
            while True:
                race = [proc for proc, _h in legs if not proc.processed]
                if hedge_timer is not None:
                    race.append(hedge_timer)
                if deadline_ev is not None:
                    race.append(deadline_ev)
                cond = env.any_of(race)
                yield cond
                # drop the consumed condition's callbacks from members that
                # did not fire: legs re-raced next iteration would otherwise
                # accumulate one stale callback per wake for as long as they
                # live (and a straggler leg can outlive many wakes)
                self._detach(cond, race)
                for proc, is_hedge in legs:
                    if proc.processed:
                        ok, value = proc.value
                        if ok:
                            return ("ok", value, is_hedge, did_hedge)
                        last_exc = value
                legs = [(p, h) for p, h in legs if not p.processed]
                # classify the deadline before leg exhaustion: a leg failing
                # in the very instant the deadline fires is a deadline miss
                # (semantically — and the "err" path would try to retry past
                # the deadline and land on STATUS_FAILED by a timestamp tie)
                if deadline_ev is not None and deadline_ev.processed:
                    self._abandon(request, legs, cancelled)
                    return ("deadline", None, False, did_hedge)
                if hedge_timer is not None and hedge_timer.processed:
                    hedge_timer = None
                    if legs:  # primary still out there: launch the hedge
                        hedge = env.process(
                            self._safe(
                                _ops.hedged_reconstruct(
                                    self.ecfs,
                                    client.name,
                                    request.file_id,
                                    request.offset,
                                    request.size,
                                )
                            ),
                            name=f"fe-hedge{request.req_id}",
                        )
                        self._track(hedge)
                        legs.append((hedge, True))
                        did_hedge = True
                        self.counters["hedges"] += 1
                if not legs:
                    return ("err", last_exc, False, did_hedge)
        finally:
            # tidy the heap: timers nothing can consume any more
            if hedge_timer is not None and not hedge_timer.processed:
                hedge_timer.cancel()
            if deadline_ev is not None and not deadline_ev.processed:
                deadline_ev.cancel()

    @staticmethod
    def _detach(cond, members) -> None:
        """Remove a consumed any_of's callback from its still-pending
        members (fired members already popped theirs)."""
        check = cond._check
        for ev in members:
            if not ev.processed:
                try:
                    ev.callbacks.remove(check)
                except ValueError:
                    pass

    def _abandon(
        self, request: Request, legs: list[tuple], cancelled: Optional[set] = None
    ) -> None:
        """Deadline expiry: cancel still-running read legs outright; demote
        whatever must run to completion out of the FOREGROUND lane.

        ``cancelled`` carries the attempt's already-cancelled legs: a leg
        raced past its first abandonment (it stays ``is_alive`` until the
        interrupt drains, so a same-tick re-entry would see it "running")
        is neither re-cancelled nor re-counted.
        """
        env = self.ecfs.env
        active = env.active_process  # the request's handler process
        lane = active.lane if active is not None else None
        if lane is not None and lane.priority is None:
            lane.priority = IOPriority.DEMOTED
            self.counters["demoted"] += 1
        if request.op != "read":
            return
        for proc, _is_hedge in legs:
            if cancelled is not None and proc in cancelled:
                continue
            if proc.is_alive:
                proc.cancel_chain("deadline abandoned")
                self.counters["cancelled_legs"] += 1
                if cancelled is not None:
                    cancelled.add(proc)

    def _attempt(self, request: Request, client) -> Generator:
        """The primary leg: one pass through the shared dispatch ops."""
        if request.op == "read":
            return (
                yield from _ops.execute_read(
                    self.ecfs, client.name, request.file_id, request.offset, request.size
                )
            )
        # a fresh op per attempt: its own op id and payload draw, so the
        # update method never confuses a front-end retry with a crash-replay
        # of the earlier attempt
        op = client.make_update_op(request.file_id, request.offset, request.size)
        return (yield from _ops.execute_update(self.ecfs, client.name, op))

    def _safe(self, gen) -> Generator:
        """Wrap a leg so failures become values, never unhandled events.

        A cancelled leg (deadline abandonment interrupting its deepest
        frame) surfaces here as :class:`Interrupt` after every intermediate
        frame's cleanup ran; it becomes a plain failed-value like any other
        lost leg."""
        try:
            value = yield self.ecfs.env.process(gen)
        except ReproError as exc:
            return (False, exc)
        except Interrupt as exc:
            return (False, ReproError(f"leg cancelled: {exc.cause}"))
        return (True, value)
