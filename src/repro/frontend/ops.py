"""Core request dispatch: the generators that actually move an op.

This is the bottom layer of the front-end subsystem — the verbatim dispatch
logic that used to be open-coded inside ``Client.update``/``Client.read``:
locate the block, ship the payload to its primary, chase epoch remaps that
land mid-flight, wait out reconstruction freezes, and record the completion
into the cluster metrics.  Both the seed-compatible :class:`Client` shim
and the QoS-aware :class:`~repro.frontend.dispatcher.FrontEnd` execute
requests through these functions, so the two paths can never drift.

Everything here is deliberately policy-free: no retries, no hedging, no
deadlines — a failure (down primary, impossible decode) surfaces as the
update method's exception.  Policy lives one layer up, in
:mod:`repro.frontend.dispatcher`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.cluster.ids import BlockId

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.client import UpdateOp
    from repro.cluster.ecfs import ECFS

__all__ = [
    "locate_clamped",
    "execute_update",
    "finish_update",
    "execute_read",
    "hedged_reconstruct",
]


def locate_clamped(
    ecfs: "ECFS", file_id: int, offset: int, size: int
) -> tuple[BlockId, int, int]:
    """Map a file range to (block, in-block offset, size clamped to block)."""
    block, in_off = ecfs.mds.locate(file_id, offset, ecfs.rs.k)
    if in_off + size > ecfs.config.block_size:
        size = ecfs.config.block_size - in_off  # clamp at block boundary
    return block, in_off, size


def execute_update(ecfs: "ECFS", client: str, op: "UpdateOp") -> Generator:
    """Process: dispatch one update op from ``client``; returns latency.

    The op's payload and issue time are already fixed by the caller, so a
    retrying front end re-executes the *same* op deterministically.

    An uncontended steady-state dispatch takes the compiled fast path
    (:mod:`repro.sim.schedule`): the whole request runs as one precomputed
    slot table and this generator suspends exactly once, on the request's
    completion chain.  Anything else — engine off, frozen stripe, armed
    fault, unsteady cluster — runs the legacy generator path below, which
    stays the byte-exact equivalence oracle.
    """
    schedules = ecfs.schedules
    if schedules is not None:
        done = schedules.try_update(client, op)
        if done is not None:
            return (yield done)
    block = op.block
    size = op.size
    # reconstruction may hold the stripe frozen (capture -> re-home);
    # updates wait so their parity deltas cannot race the re-home
    # (cheap pre-check: avoids a waiter generator on the common path)
    if ecfs.stripe_frozen(block.file_id, block.stripe):
        yield from ecfs.wait_stripe_thaw(block.file_id, block.stripe)
    primary = ecfs.osd_hosting(block)
    yield from ecfs.net.transfer(
        client, primary.name, size + ecfs.config.header_bytes
    )
    return (yield from finish_update(ecfs, client, op, primary))


def finish_update(ecfs: "ECFS", client: str, op: "UpdateOp", primary) -> Generator:
    """Generator: the dispatch tail from payload-on-primary to recorded ack.

    Factored out of :func:`execute_update` so the schedule fast path can
    bail out *mid-request* into exactly this code when a compile-out check
    fails (stripe froze, primary re-homed): the fast path has already
    shipped the payload to ``primary``, which is precisely the state this
    generator picks up from.
    """
    block = op.block
    size = op.size
    hdr = ecfs.config.header_bytes
    # an epoch remap (rebalance move, recovery re-home) can change the
    # block's home while the request is in flight: chase the redirect
    # like a real client retrying on wrong-primary.  Zero-cost on the
    # common path — the loop body only runs if the home actually moved
    # or the stripe froze under us.
    while True:
        if ecfs.stripe_frozen(block.file_id, block.stripe):
            yield from ecfs.wait_stripe_thaw(block.file_id, block.stripe)
        current = ecfs.osd_hosting(block)
        if current is primary:
            break
        yield from ecfs.net.transfer(primary.name, current.name, size + hdr)
        primary = current
    ecfs.note_update_begin(block)
    try:
        yield ecfs.env.process(
            ecfs.method.handle_update(primary, op), name=f"upd{op.op_id}"
        )
    finally:
        ecfs.note_update_end(block)
    yield from ecfs.net.transfer(primary.name, client, ecfs.config.ack_bytes)
    latency = ecfs.env.now - op.issued_at
    ecfs.metrics.record_update(latency, size)
    return latency


def execute_read(
    ecfs: "ECFS", client: str, file_id: int, offset: int, size: int
) -> Generator:
    """Process: read ``size`` bytes (clamped to one block), returns bytes.

    If the block's home OSD is down, falls back to a degraded read
    (on-the-fly decode from k survivors).
    """
    block, in_off, size = locate_clamped(ecfs, file_id, offset, size)
    env = ecfs.env
    t0 = env.now
    primary = ecfs.osd_hosting(block)
    hdr = ecfs.config.header_bytes
    if primary.failed:
        from repro.cluster.degraded import degraded_read

        data = yield env.process(
            degraded_read(ecfs, block, in_off, size, client),
            name=f"{client}-degraded",
        )
        ecfs.metrics.record_read(env.now - t0, size)
        return data
    yield from ecfs.net.transfer(client, primary.name, hdr)
    # chase epoch remaps that landed while the request was in flight
    while True:
        current = ecfs.osd_hosting(block)
        if current is primary:
            break
        yield from ecfs.net.transfer(primary.name, current.name, hdr)
        primary = current
    data = yield env.process(ecfs.method.handle_read(primary, block, in_off, size))
    yield from ecfs.net.transfer(primary.name, client, size + hdr)
    ecfs.metrics.record_read(env.now - t0, size)
    return data


def hedged_reconstruct(
    ecfs: "ECFS", client: str, file_id: int, offset: int, size: int
) -> Generator:
    """Process: serve a read by EC reconstruction instead of the primary.

    The hedge leg of a hedged read: rebuild the requested range from k
    *other* blocks of the stripe (the home OSD is never consulted), exactly
    the degraded-read machinery — which works whether the primary is slow,
    partitioned, or perfectly healthy.  The completion is **not** recorded
    in the cluster read metrics: those count one sample per *primary-leg*
    completion (the server-side op latency, even when that leg straggles
    past an abandonment), while the tenant-observed latency of a hedge-won
    read lives in the SLO layer's records.
    """
    from repro.cluster.degraded import degraded_read

    block, in_off, size = locate_clamped(ecfs, file_id, offset, size)
    data = yield ecfs.env.process(
        degraded_read(ecfs, block, in_off, size, client),
        name=f"{client}-hedge",
    )
    return data
