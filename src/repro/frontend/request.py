"""Typed front-end requests: op + tenant + QoS class + deadline.

A :class:`Request` is the unit the front-end pipeline schedules: it names
the operation (update/read), the tenant issuing it, the QoS class that
decides queueing priority and shedding order, and a latency deadline.  The
pipeline answers with a :class:`RequestResult` — what happened, how long it
took, how many attempts/hedges it cost — which the SLO tracker folds into
per-tenant availability and latency-percentile metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "QOS_CLASSES",
    "QOS_RANK",
    "DEFAULT_DEADLINES",
    "Request",
    "RequestResult",
]

#: QoS classes in strict scheduling-priority order: ``gold`` is dispatched
#: first and shed last; ``bronze`` is the scavenger class.
QOS_CLASSES = ("gold", "silver", "bronze")
QOS_RANK = {name: rank for rank, name in enumerate(QOS_CLASSES)}

#: per-class default deadline (seconds) when the tenant does not set one —
#: roughly p99-of-steady-state x {2, 8, 30} on the SSD geometry
DEFAULT_DEADLINES = {"gold": 0.05, "silver": 0.2, "bronze": 1.0}

#: terminal request statuses
STATUS_OK = "ok"  # completed successfully (deadline met or not)
STATUS_SHED = "shed"  # rejected by admission control, never dispatched
STATUS_FAILED = "failed"  # fatal error, or retry budget/attempts exhausted
STATUS_DEADLINE = "deadline"  # abandoned: the deadline passed mid-flight


@dataclass
class Request:
    """One front-end operation, as submitted by a tenant."""

    req_id: int
    tenant: str
    qos: str  # one of QOS_CLASSES
    op: str  # "update" | "read"
    file_id: int
    offset: int
    size: int
    deadline: float  # seconds from submission; inf = none
    submitted_at: float = 0.0  # stamped by the front end

    def __post_init__(self) -> None:
        if self.qos not in QOS_RANK:
            raise ValueError(f"unknown QoS class {self.qos!r}")
        if self.op not in ("update", "read"):
            raise ValueError(f"front-end op must be update/read, got {self.op!r}")
        if self.deadline <= 0:
            raise ValueError("deadline must be positive (use inf for none)")


@dataclass
class RequestResult:
    """Terminal outcome of one request's trip through the pipeline."""

    status: str  # STATUS_* above
    latency: float  # submission -> completion (or abandonment) seconds
    attempts: int = 0  # dispatch attempts (0 for shed)
    hedged: bool = False  # a hedge read was launched
    hedge_won: bool = False  # ... and it finished first
    retries: int = 0  # attempts beyond the first
    error: str = ""  # failure detail for failed/shed requests
    value: object = field(default=None, repr=False)  # read payload

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def met_deadline(self, deadline: float) -> bool:
        return self.ok and self.latency <= deadline
