"""Fig. 8 — HDD cluster: (a) update throughput, (b) recovery bandwidth.

MSR Cambridge volume twins under RS(6,4) on a 16-node HDD cluster.  TSUE
runs its HDD variant (no DeltaLog, 3-copy DataLog, 1 pool/disk).  For (b)
a node is failed right after the update phase (logs NOT drained — that is
the point) and one-node recovery bandwidth is measured.
"""

from __future__ import annotations

from typing import Iterable

from repro.cluster.recovery import RecoveryManager
from repro.harness.runner import ExperimentConfig, current_scale, run_experiment
from repro.harness.sweep import run_grid
from repro.metrics.tables import format_table
from repro.update.tsue import TSUEOptions

__all__ = ["METHODS", "VOLUMES", "run_fig8a", "run_fig8b"]

METHODS = ("fo", "pl", "plr", "parix", "tsue")
VOLUMES = ("src10", "src22", "proj2", "prn1", "hm0", "usr0", "mds0")


def _config(method: str, volume: str, n_ops: int) -> ExperimentConfig:
    options = {}
    if method == "tsue":
        options = {"options": TSUEOptions.hdd()}
    return ExperimentConfig(
        method=method,
        trace=f"msr-{volume}",
        k=6,
        m=4,
        n_clients=16,
        n_ops=n_ops,
        device="hdd",
        net_latency=20e-6,  # 40 Gb/s InfiniBand: lower latency than the cloud
        # a mostly-cold capacity with hot update targets: recovery rebuilds
        # every block the victim hosted (as a real 2 TB disk would), while
        # the update stream concentrates on a few files
        n_files=10,
        stripes_per_file=12,
        hot_files=2,
        method_options=options,
    )


def run_fig8a(
    scale: str | None = None,
    volumes: Iterable[str] | None = None,
    methods: Iterable[str] = METHODS,
) -> tuple[str, dict]:
    scale = scale or current_scale()
    if volumes is None:
        volumes = ("src10", "hm0") if scale == "quick" else VOLUMES
    n_ops = 600 if scale == "quick" else 3000
    grid = run_grid(
        [
            ((volume, method.upper()), _config(method, volume, n_ops))
            for volume in volumes
            for method in methods
        ]
    )
    rows = {
        volume: {method: res.iops for method, res in cols.items()}
        for volume, cols in grid.items()
    }
    text = format_table(
        rows, title="Fig.8a — HDD update throughput (IOPS)", floatfmt="{:,.0f}"
    )
    return text, rows


def run_fig8b(
    scale: str | None = None,
    volumes: Iterable[str] | None = None,
    methods: Iterable[str] = METHODS,
) -> tuple[str, dict]:
    scale = scale or current_scale()
    if volumes is None:
        volumes = ("src10",) if scale == "quick" else VOLUMES
    n_ops = 1000 if scale == "quick" else 3000
    rows: dict[str, dict[str, float]] = {}
    for volume in volumes:
        row: dict[str, float] = {}
        for method in methods:
            cfg = _config(method, volume, n_ops)
            cfg.drain = False  # the paper recovers with logs outstanding
            res = run_experiment(cfg, keep_cluster=True)
            ecfs = res.ecfs
            manager = RecoveryManager(ecfs)
            report = ecfs.env.run(
                ecfs.env.process(manager.fail_and_recover(0), name="fig8b-recovery")
            )
            row[method.upper()] = report.bandwidth / 1e6  # MB/s
        rows[volume] = row
    text = format_table(
        rows,
        title="Fig.8b — recovery bandwidth after updates (MB/s)",
        floatfmt="{:,.1f}",
    )
    return text, rows
