"""Command-line entry point: regenerate any paper artifact, run scenarios.

Usage::

    python -m repro list                 # show available experiments
    python -m repro fig5 [--scale full]  # regenerate Fig. 5
    python -m repro table1
    python -m repro all --scale quick
    python -m repro scenario --list      # fault-injection scenario catalog
    python -m repro scenario crash-mid-update --seed 7
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable

from repro.harness import fig1, fig5, fig6, fig7, fig8, table1, table2

__all__ = ["main", "EXPERIMENTS"]

EXPERIMENTS: dict[str, Callable[[], tuple[str, dict]]] = {
    "fig1": lambda: fig1.run(),
    "fig5": lambda: fig5.run(),
    "fig6a": lambda: fig6.run_fig6a(),
    "fig6b": lambda: fig6.run_fig6b(),
    "fig7": lambda: fig7.run(),
    "fig8a": lambda: fig8.run_fig8a(),
    "fig8b": lambda: fig8.run_fig8b(),
    "table1": lambda: table1.run(),
    "table2": lambda: table2.run(),
}


def _run_scenario(args) -> int:
    # imported lazily so plain experiment runs stay light
    from repro.fault.runner import ScenarioRunner
    from repro.fault.scenarios import SCENARIOS, get_scenario

    if args.list or args.name is None:
        for name in sorted(SCENARIOS):
            print(f"{name:24s} {SCENARIOS[name]().description}")
        return 0
    try:
        spec = get_scenario(args.name)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    t0 = time.time()
    result = ScenarioRunner(spec).run(seed=args.seed)
    print(result.summary())
    print(f"[{spec.name}: {time.time() - t0:.1f}s]")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the TSUE paper's tables and figures on the "
        "simulated cluster, or run a named fault-injection scenario.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list", "scenario"],
        help="artifact to regenerate ('all' runs everything, 'list' "
        "enumerates, 'scenario' runs the fault-injection harness)",
    )
    parser.add_argument(
        "name",
        nargs="?",
        default=None,
        help="scenario name (with 'scenario'; omit or use --list to browse)",
    )
    parser.add_argument(
        "--scale",
        choices=["quick", "full"],
        default=None,
        help="experiment scale (default: REPRO_SCALE env or 'quick')",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="with 'scenario': list the catalog and exit",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=2025,
        help="with 'scenario': simulation seed (same seed = same digest)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "scenario":
        return _run_scenario(args)

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    if args.scale:
        os.environ["REPRO_SCALE"] = args.scale

    targets = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in targets:
        t0 = time.time()
        text, _data = EXPERIMENTS[name]()
        print(text)
        print(f"[{name}: {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
