"""Command-line entry point: regenerate any paper artifact, run scenarios.

Usage::

    python -m repro list                 # show available experiments
    python -m repro fig5 [--scale full]  # regenerate Fig. 5
    python -m repro table1
    python -m repro all --scale quick
    python -m repro scenario --list      # fault-injection scenario catalog
    python -m repro scenario crash-mid-update --seed 7

    # parallel sweeps over method x trace (or scenario x seed) grids, fanned
    # across a process pool with a content-addressed result cache:
    python -m repro sweep --methods tsue,pl --traces tencloud,alicloud \
        --workers 4 --cache-dir .repro-cache
    python -m repro sweep --scenarios crash-mid-update,double-failure \
        --seeds 7,8 --workers 2
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable

from repro.harness import fig1, fig5, fig6, fig7, fig8, table1, table2

__all__ = ["main", "EXPERIMENTS"]

EXPERIMENTS: dict[str, Callable[[], tuple[str, dict]]] = {
    "fig1": lambda: fig1.run(),
    "fig5": lambda: fig5.run(),
    "fig6a": lambda: fig6.run_fig6a(),
    "fig6b": lambda: fig6.run_fig6b(),
    "fig7": lambda: fig7.run(),
    "fig8a": lambda: fig8.run_fig8a(),
    "fig8b": lambda: fig8.run_fig8b(),
    "table1": lambda: table1.run(),
    "table2": lambda: table2.run(),
}


def _run_scenario(args) -> int:
    # imported lazily so plain experiment runs stay light
    from repro.fault.runner import ScenarioRunner
    from repro.fault.scenarios import SCENARIOS, get_scenario

    if args.list or args.name is None:
        for name in sorted(SCENARIOS):
            print(f"{name:24s} {SCENARIOS[name]().description}")
        return 0
    try:
        spec = get_scenario(args.name)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    t0 = time.time()
    result = ScenarioRunner(spec).run(seed=args.seed)
    print(result.summary())
    print(f"[{spec.name}: {time.time() - t0:.1f}s]")
    return 0


def _run_sweep(args) -> int:
    # imported lazily so plain experiment runs stay light
    from repro.harness.runner import ExperimentConfig
    from repro.harness.sweep import (
        CellFailure,
        SweepExecutor,
        run_grid,
        scenario_cells,
    )
    from repro.metrics.tables import format_markdown, format_table

    if args.ops is None:
        args.ops = 1200
    executor = SweepExecutor(
        workers=args.workers,
        cache_dir=args.cache_dir,
        cell_timeout=args.cell_timeout,
        strict=False,  # report failed cells instead of aborting the sweep
    )
    seeds = [int(s) for s in args.seeds.split(",") if s]
    if args.scenarios:
        names = [s for s in args.scenarios.split(",") if s]
        results = executor.run_scenarios(names, seeds)
        if args.table:
            # scenario x seed benchmark grid as markdown (scenario_cells is
            # the executor's own result ordering — labels cannot desync)
            rows: dict[str, dict[str, object]] = {}
            for (name, seed), res in zip(scenario_cells(names, seeds), results):
                rows.setdefault(name, {})[f"seed {seed}"] = (
                    "FAILED"
                    if isinstance(res, CellFailure)
                    else f"{res.ops} ops / {res.failures} fail / {res.digest[:8]}"
                )
            print(format_markdown(rows, corner="scenario"))
        else:
            for res in results:
                print(repr(res) if isinstance(res, CellFailure) else res.summary())
                print()
    else:
        methods = [s for s in args.methods.split(",") if s]
        traces = [s for s in args.traces.split(",") if s]
        grid = run_grid(
            [
                (
                    (f"{trace} seed{seed}", method.upper()),
                    ExperimentConfig(
                        method=method,
                        trace=trace,
                        n_clients=args.clients,
                        n_ops=args.ops,
                        seed=seed,
                    ),
                )
                for trace in traces
                for method in methods
                for seed in seeds
            ],
            executor=executor,
        )
        rows = {
            row: {
                col: (
                    float("nan") if isinstance(res, CellFailure) else res.iops
                )
                for col, res in cols.items()
            }
            for row, cols in grid.items()
        }
        if args.table:
            print(f"### sweep — aggregate update IOPS ({args.ops} ops)\n")
            print(format_markdown(rows, corner="trace / seed", floatfmt="{:,.0f}"))
        else:
            print(
                format_table(
                    rows,
                    title=f"sweep — aggregate update IOPS ({args.ops} ops)",
                    floatfmt="{:,.0f}",
                )
            )
    stats = executor.stats
    print(
        f"[sweep: {stats.cells} cells, {stats.cache_hits} cached, "
        f"{stats.workers} workers, {stats.retried} retried, "
        f"{stats.failed} failed, {stats.wall_seconds:.1f}s]"
    )
    return 0


def _run_slo(args) -> int:
    """Run the QoS x fault SLO grid (or one slo-* scenario) and report
    per-tenant percentiles/availability plus the windowed time series."""
    # imported lazily so plain experiment runs stay light
    from repro.fault.runner import ScenarioRunner
    from repro.fault.scenarios import SCENARIOS, get_scenario
    from repro.metrics.tables import format_table

    if args.name is not None:
        names = [args.name]
    else:
        names = sorted(n for n in SCENARIOS if n.startswith("slo-"))
    grid: dict[str, dict[str, float]] = {}
    for name in names:
        try:
            spec = get_scenario(name)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        if not spec.frontend:
            print(f"scenario {name!r} does not run the front end", file=sys.stderr)
            return 2
        if args.window is not None:
            spec.slo_window = args.window
        result = ScenarioRunner(spec).run(seed=args.seed)
        print(result.summary())
        series = result.slo_series
        if series.get("t"):
            print("  window series (availability / p99 during the fault window):")
            print(f"    {'t(s)':>8} {'avail':>7} {'p99(ms)':>9} {'arrivals':>9}")
            for t, avail, p99, n in zip(
                series["t"],
                series["availability"],
                series["p99"],
                series["submitted"],
            ):
                print(f"    {t:8.3f} {avail:7.3f} {p99 * 1e3:9.3f} {n:9.0f}")
        print()
        for who, stats in result.slo.items():
            grid[f"{name} {who}"] = {
                "p50 ms": stats["p50"] * 1e3,
                "p99 ms": stats["p99"] * 1e3,
                "p999 ms": stats["p999"] * 1e3,
                "avail": stats["availability"],
                "goodput/s": stats["goodput"],
                "budget": stats["error_budget"],
            }
    print(
        format_table(
            grid,
            title="SLO grid — per tenant/class (QoS x fault)",
            floatfmt="{:,.3f}",
        )
    )
    return 0


def _run_background(args) -> int:
    """Run the bg-* maintenance-plane grid (or one bg-* scenario): per-stream
    bandwidth/backlog/time-to-drain plus the governor on/off p99 contrast."""
    # imported lazily so plain experiment runs stay light
    from repro.fault.runner import ScenarioRunner
    from repro.fault.scenarios import SCENARIOS, get_scenario
    from repro.metrics.tables import format_table

    if args.name is not None:
        names = [args.name]
    else:
        names = sorted(n for n in SCENARIOS if n.startswith("bg-"))
    grid: dict[str, dict[str, float]] = {}
    overall: dict[str, dict] = {}
    for name in names:
        try:
            spec = get_scenario(name)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        result = ScenarioRunner(spec).run(seed=args.seed)
        print(result.summary())
        print()
        overall[name] = result
        for stream, stats in result.background.items():
            if not stats["submitted_items"]:
                continue
            grid[f"{name} {stream}"] = {
                "grants": stats["granted_items"],
                "MB": stats["granted_bytes"] / 1e6,
                "MB/s": stats["bandwidth"] / 1e6,
                "drain s": stats["time_to_drain"],
                "backlog B": stats["backlog_bytes"],
            }
    print(
        format_table(
            grid,
            title="background grid — per maintenance stream",
            floatfmt="{:,.2f}",
        )
    )
    on = overall.get("bg-rebalance-governor-on")
    off = overall.get("bg-rebalance-governor-off")
    if on is not None and off is not None and on.slo_overall and off.slo_overall:
        p_on = on.slo_overall["p99"] * 1e3
        p_off = off.slo_overall["p99"] * 1e3
        print(
            f"\ngovernor contrast: foreground p99 {p_off:.3f} ms (off) -> "
            f"{p_on:.3f} ms (on), "
            f"{on.governor.get('breaches', 0):.0f} breaches, min scale "
            f"{on.governor.get('min_scale', 1.0):.2f}"
        )
    return 0


def _run_profile(args) -> int:
    """cProfile the tracked engine workload (the 1500-op TSUE experiment of
    BENCH_engine.json) and print the top-N cumulative-time table."""
    # imported lazily so plain experiment runs stay light
    import cProfile
    import io
    import pstats

    from repro.harness.runner import ExperimentConfig, run_experiment

    method = args.methods.split(",")[0]
    cfg = ExperimentConfig(
        method=method,
        n_ops=args.ops if args.ops is not None else 1500,
        macro_batching=not args.legacy_fanout,
        request_schedules=not args.legacy_schedules,
        bulk_drain=not args.legacy_bulk_drain,
    )
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_experiment(cfg)
    profiler.disable()
    perf = result.perf
    print(
        f"profiled {method} run: {cfg.n_ops} ops, {perf['events']:.0f} events "
        f"in {perf['wall_seconds']:.3f}s wall "
        f"({perf['events_per_sec']:.0f} ev/s, "
        f"{perf['sim_ops_per_sec']:.0f} sim-ops/s, "
        f"macro_batching={'off' if args.legacy_fanout else 'on'}, "
        f"request_schedules={'off' if args.legacy_schedules else 'on'}, "
        f"bulk_drain={'off' if args.legacy_bulk_drain else 'on'}, "
        f"schedule_hit_rate={perf['schedule_hit_rate']:.2f})\n"
        f"phases: replay {perf['replay_events']:.0f} ev in "
        f"{perf['replay_wall_seconds']:.3f}s "
        f"({perf['replay_us_per_event']:.2f} us/ev), "
        f"drain {perf['drain_events']:.0f} ev in "
        f"{perf['drain_wall_seconds']:.3f}s "
        f"({perf['drain_us_per_event']:.2f} us/ev)\n"
    )
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(args.sort).print_stats(args.top)
    print(stream.getvalue())
    return 0


def _run_topology(args) -> int:
    """Static policy x event movement matrix, or a live elastic scenario."""
    # imported lazily so plain experiment runs stay light
    from repro.cluster.ids import BlockId
    from repro.metrics.tables import format_table
    from repro.placement import MigrationPlanner, Topology, make_policy

    if args.live:
        from repro.fault.runner import ScenarioRunner
        from repro.fault.scenarios import get_scenario

        name = f"topo-{args.event}-{args.policy}"
        try:
            spec = get_scenario(name)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        result = ScenarioRunner(spec).run(seed=args.seed)
        print(result.summary())
        stats = result.rebalance_stats
        print(
            f"[{name}: moved {stats.get('moved_bytes', 0) / 1e6:.1f} MB, "
            f"time-to-balanced {stats.get('time_to_balanced', 0):.3f}s]"
        )
        return 0

    k, m = args.k, args.m
    width = k + m
    n = args.osds
    policies = [p for p in args.policies.split(",") if p]
    events = [e for e in args.events.split(",") if e]
    blocks = [
        BlockId(f, s, i)
        for f in range(1, args.files + 1)
        for s in range(args.stripes)
        for i in range(width)
    ]

    def build_topology() -> Topology:
        return Topology.flat(
            n, osds_per_host=args.osds_per_host, hosts_per_rack=args.hosts_per_rack
        )

    print(build_topology().describe())
    print()
    rows: dict[str, dict[str, float]] = {}
    for policy_name in policies:
        rows[policy_name] = {}
        for event in events:
            topo = build_topology()
            try:
                old = make_policy(policy_name, topo, k, m)
            except ValueError as exc:
                print(exc, file=sys.stderr)
                return 2
            if event == "join":
                topo.add_osd(n, weight=1.0)
            elif event == "decommission":
                topo.remove_osd(n - 1)
            elif event == "weight":
                topo.set_weight(0, 0.5)
            else:
                print(f"unknown topology event {event!r}", file=sys.stderr)
                return 2
            plan = MigrationPlanner.plan(old.osd_of, make_policy(policy_name, topo, k, m), blocks)
            rows[policy_name][event] = 100.0 * plan.fraction_moved
    print(
        format_table(
            rows,
            title=(
                f"data moved by one topology event (% of {len(blocks)} blocks; "
                f"RS({k},{m}) on {n} OSDs; minimal ~{100.0 / n:.1f}%)"
            ),
            floatfmt="{:.1f}",
        )
    )
    print(
        "[static planner diff - no simulation; run with --live "
        "--policy crush --event join for a full DES scenario]"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the TSUE paper's tables and figures on the "
        "simulated cluster, run a named fault-injection scenario, or fan a "
        "sweep grid across a process pool.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS)
        + [
            "all",
            "background",
            "list",
            "profile",
            "scenario",
            "slo",
            "sweep",
            "topology",
        ],
        help="artifact to regenerate ('all' runs everything, 'list' "
        "enumerates, 'scenario' runs the fault-injection harness, 'slo' "
        "runs the QoS x fault front-end grid with per-tenant SLO metrics, "
        "'background' runs the bg-* maintenance-plane grid with per-stream "
        "bandwidth/drain read-outs and the governor on/off contrast, "
        "'sweep' runs a parallel scenario/experiment grid, 'topology' "
        "analyzes placement policies under elastic topology events, "
        "'profile' cProfiles the tracked engine workload and prints the "
        "top-N cumulative table)",
    )
    parser.add_argument(
        "name",
        nargs="?",
        default=None,
        help="scenario name (with 'scenario'; omit or use --list to browse)",
    )
    parser.add_argument(
        "--scale",
        choices=["quick", "full"],
        default=None,
        help="experiment scale (default: REPRO_SCALE env or 'quick')",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="with 'scenario': list the catalog and exit",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=2025,
        help="with 'scenario': simulation seed (same seed = same digest)",
    )
    sweep = parser.add_argument_group("sweep options")
    sweep.add_argument(
        "--methods", default="tsue", help="comma-separated update methods"
    )
    sweep.add_argument(
        "--traces", default="tencloud", help="comma-separated trace names"
    )
    sweep.add_argument(
        "--scenarios",
        default="",
        help="comma-separated fault scenarios (switches to a scenario x "
        "seed grid)",
    )
    sweep.add_argument(
        "--seeds", default="2025", help="comma-separated simulation seeds"
    )
    sweep.add_argument("--clients", type=int, default=16)
    sweep.add_argument(
        "--ops",
        type=int,
        default=None,
        help="ops per cell (default 1200; 'profile' defaults to the tracked "
        "1500-op engine workload)",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size (default: REPRO_WORKERS or 1 = serial)",
    )
    sweep.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed result cache directory (default: "
        "REPRO_CACHE_DIR or disabled)",
    )
    sweep.add_argument(
        "--table",
        action="store_true",
        help="render the sweep grid as a GitHub-markdown benchmark table",
    )
    sweep.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        help="per-cell wall-clock timeout in seconds (workers > 1): a cell "
        "that hangs is killed, retried once, then reported as failed "
        "(default: REPRO_CELL_TIMEOUT or disabled)",
    )
    slo = parser.add_argument_group("slo options")
    slo.add_argument(
        "--window",
        type=float,
        default=None,
        help="with 'slo': time-series bucket width in simulated seconds "
        "(default: each scenario's slo_window)",
    )
    prof = parser.add_argument_group("profile options")
    prof.add_argument(
        "--top",
        type=int,
        default=25,
        help="with 'profile': rows of the pstats table to print",
    )
    prof.add_argument(
        "--sort",
        default="cumulative",
        help="with 'profile': pstats sort key (cumulative, tottime, calls...)",
    )
    prof.add_argument(
        "--legacy-fanout",
        action="store_true",
        help="with 'profile': run the per-leg oracle path instead of "
        "macro-op batching (contrast profiles)",
    )
    prof.add_argument(
        "--legacy-schedules",
        action="store_true",
        help="with 'profile': run the generator oracle path instead of "
        "table-driven request schedules (contrast profiles)",
    )
    prof.add_argument(
        "--legacy-bulk-drain",
        action="store_true",
        help="with 'profile': run the per-unit/per-extent oracle drain "
        "instead of the vectorized bulk plane (contrast profiles)",
    )
    topo = parser.add_argument_group("topology options")
    topo.add_argument(
        "--policies", default="rotation,crush", help="comma-separated policies"
    )
    topo.add_argument(
        "--events",
        default="join,decommission,weight",
        help="comma-separated topology events for the movement matrix",
    )
    topo.add_argument("--osds", type=int, default=16)
    topo.add_argument("--k", type=int, default=4)
    topo.add_argument("--m", type=int, default=2)
    topo.add_argument("--osds-per-host", type=int, default=1)
    topo.add_argument("--hosts-per-rack", type=int, default=4)
    topo.add_argument("--files", type=int, default=8)
    topo.add_argument("--stripes", type=int, default=40)
    topo.add_argument(
        "--live",
        action="store_true",
        help="run the catalog scenario topo-<event>-<policy> on the DES "
        "instead of the static planner matrix",
    )
    topo.add_argument(
        "--policy", default="crush", help="with --live: placement policy"
    )
    topo.add_argument(
        "--event", default="join", help="with --live: topology event"
    )
    args = parser.parse_args(argv)

    if args.experiment == "scenario":
        return _run_scenario(args)
    if args.experiment == "slo":
        return _run_slo(args)
    if args.experiment == "background":
        return _run_background(args)
    if args.experiment == "sweep":
        return _run_sweep(args)
    if args.experiment == "topology":
        return _run_topology(args)
    if args.experiment == "profile":
        return _run_profile(args)

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    if args.scale:
        os.environ["REPRO_SCALE"] = args.scale

    targets = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in targets:
        t0 = time.time()
        text, _data = EXPERIMENTS[name]()
        print(text)
        print(f"[{name}: {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
