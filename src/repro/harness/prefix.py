"""Content-addressed populate/trace prefix sharing across sweep cells.

Every experiment/scenario cell starts with the same two pure prefixes:

* **trace generation** — ``generate_trace(spec, n_ops, files, bytes,
  seed)`` is a pure function of its arguments;
* **random-fill populate** — ``ECFS.populate(..., fill="random")`` draws
  and RS-encodes every stripe from the config-seeded RNG, a pure function
  of the cluster geometry + seed.

Cells that share geometry and seed (the scenario x seed grids, a
method-dimension sweep over one trace, a determinism double-run) used to
re-derive both prefixes per cell; this module memoizes them under
content-addressed keys (the PR-2 deferred item noted in
:mod:`repro.harness.sweep`).  The memo is per-process — pool workers each
warm their own — and **faithful by construction**: a populate hit restores
the exact block bytes, oracle state, MDS layout, *and* the post-populate
RNG state, so a cached cell is byte-identical to a cold one (the scenario
determinism tests double-run through this cache and assert equal digests).

Set ``REPRO_PREFIX_CACHE=0`` to disable both memos (debugging aid).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import fields
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.fault.digest import canonical as _canonical

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.ecfs import ECFS
    from repro.traces.record import TraceRecord
    from repro.traces.synthetic import SyntheticTraceSpec

__all__ = ["cached_trace", "populate_cached", "clear_prefix_caches"]

#: snapshots above this many bytes are not memoized (a full-scale populate
#: is hundreds of MB; the grids that benefit are scenario-sized)
_MAX_SNAPSHOT_BYTES = 64 * 1024 * 1024
#: total bytes the populate memo may hold per process (the cap every pool
#: worker pays separately — without it, 16 near-cap snapshots would pin
#: ~1 GiB per worker)
_MAX_TOTAL_BYTES = 192 * 1024 * 1024
_MAX_ENTRIES = 16

_trace_memo: dict[str, list] = {}
_populate_memo: dict[str, dict] = {}
_populate_bytes = 0


def _enabled() -> bool:
    return os.environ.get("REPRO_PREFIX_CACHE", "1") != "0"


def clear_prefix_caches() -> None:
    global _populate_bytes
    _trace_memo.clear()
    _populate_memo.clear()
    _populate_bytes = 0


# ------------------------------------------------------------------- traces
def cached_trace(
    spec: "SyntheticTraceSpec",
    n_ops: int,
    file_ids: Sequence[int],
    file_bytes: int,
    seed: int,
) -> list["TraceRecord"]:
    """Memoized :func:`~repro.traces.synthetic.generate_trace` (records are
    frozen, so cells share one materialized list safely)."""
    from repro.traces.synthetic import generate_trace

    if not _enabled():
        return generate_trace(spec, n_ops, file_ids, file_bytes, seed=seed)
    key = _canonical(
        {
            "spec": repr(spec),
            "n_ops": int(n_ops),
            "files": [int(f) for f in file_ids],
            "file_bytes": int(file_bytes),
            "seed": int(seed),
        }
    )
    records = _trace_memo.get(key)
    if records is None:
        if len(_trace_memo) >= _MAX_ENTRIES:
            _trace_memo.clear()
        records = _trace_memo[key] = generate_trace(
            spec, n_ops, file_ids, file_bytes, seed=seed
        )
    return list(records)


# ----------------------------------------------------------------- populate
def _populate_key(ecfs: "ECFS", n_files: int, stripes_per_file: int, fill: str) -> str:
    cfg = ecfs.config
    payload = {f.name: repr(getattr(cfg, f.name)) for f in fields(cfg)}
    payload.update(
        {"__n_files__": n_files, "__stripes__": stripes_per_file, "__fill__": fill}
    )
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


def populate_cached(
    ecfs: "ECFS", n_files: int, stripes_per_file: int, fill: str = "random"
) -> list[int]:
    """:meth:`ECFS.populate` through the content-addressed prefix memo.

    Only ``fill="random"`` runs are memoized (zero fill is already CoW-
    free); anything else — and oversized populations — falls through to a
    plain populate.
    """
    if fill != "random" or not _enabled():
        return ecfs.populate(n_files, stripes_per_file, fill=fill)
    total = (
        n_files
        * stripes_per_file
        * (ecfs.rs.k + ecfs.rs.m)
        * ecfs.config.block_size
    )
    if total > _MAX_SNAPSHOT_BYTES:
        return ecfs.populate(n_files, stripes_per_file, fill=fill)
    key = _populate_key(ecfs, n_files, stripes_per_file, fill)
    snap = _populate_memo.get(key)
    if snap is None:
        global _populate_bytes
        file_ids = ecfs.populate(n_files, stripes_per_file, fill=fill)
        if (
            len(_populate_memo) >= _MAX_ENTRIES
            or _populate_bytes + total > _MAX_TOTAL_BYTES
        ):
            _populate_memo.clear()
            _populate_bytes = 0
        _populate_bytes += total
        _populate_memo[key] = {
            "file_ids": list(file_ids),
            "sizes": {
                fid: ecfs.mds.lookup(fid).size for fid in file_ids
            },
            "blocks": [
                (bid, np.array(ecfs.osd_hosting(bid).store.view(bid), copy=True))
                for bid in sorted(ecfs.known_blocks)
            ],
            # populate is the only consumer of the cluster RNG: restoring
            # its end state keeps a cached cell bit-identical to a cold one
            "rng_state": ecfs._rng.bit_generator.state,
        }
        return file_ids

    k = ecfs.rs.k
    for fid in snap["file_ids"]:
        meta = ecfs.mds.create_file(snap["sizes"][fid])
        assert meta.file_id == fid, "MDS file-id allocation diverged"
    for bid, content in snap["blocks"]:
        ecfs.osd_hosting(bid).store.create(bid, content.copy(), own=True)
        ecfs.known_blocks.add(bid)
        if bid.idx < k:
            ecfs.oracle.apply(bid, 0, content)
            ecfs.oracle.applied_updates -= 1
    for fid in snap["file_ids"]:
        ecfs.mds.mark_written(fid, 0, snap["sizes"][fid])
    ecfs._rng.bit_generator.state = snap["rng_state"]
    return list(snap["file_ids"])
