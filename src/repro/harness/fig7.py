"""Fig. 7 — breakdown of TSUE's optimizations (Baseline, O1..O5).

Runs the cumulative feature ladder of §5.3.3 on Ali-Cloud and Ten-Cloud
twins under RS(6,M):

* Baseline: DataLog + ParityLog only, single unit, no locality merging,
* O1: + spatio-temporal locality in the DataLog,
* O2: + locality in the ParityLog,
* O3: + the FIFO log-pool structure,
* O4: + 4 log pools per SSD,
* O5: + the DeltaLog layer.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Iterable

from repro.harness.runner import ExperimentConfig, current_scale
from repro.harness.sweep import run_grid
from repro.metrics.tables import format_table
from repro.update.tsue import TSUEOptions

__all__ = ["run"]


def run(
    scale: str | None = None,
    traces: Iterable[str] = ("alicloud", "tencloud"),
    ms: Iterable[int] = (2, 3, 4),
) -> tuple[str, dict]:
    scale = scale or current_scale()
    if scale == "quick":
        traces = ("tencloud",)
        ms = (4,)
    n_ops = 1200 if scale == "quick" else 6000
    ladder = TSUEOptions.breakdown()
    grid = run_grid(
        [
            (
                (f"{trace} RS(6,{m})", step),
                ExperimentConfig(
                    method="tsue",
                    trace=trace,
                    k=6,
                    m=m,
                    n_clients=64,  # saturated, as in the paper's peak
                    n_ops=n_ops,
                    method_options={"options": opts},
                ),
            )
            for trace in traces
            for m in ms
            for step, opts in ladder.items()
        ]
    )
    rows = {
        label: {step: res.iops for step, res in cols.items()}
        for label, cols in grid.items()
    }
    text = format_table(
        rows,
        title="Fig.7 — TSUE optimization breakdown (aggregate update IOPS)",
        floatfmt="{:,.0f}",
    )
    return text, rows
