"""Fig. 6 — TSUE log-pool analysis.

(a) recycle overhead: update IOPS over time for small vs adequate unit
    quotas — a 2-unit quota makes appends stall behind recycling;
(b) memory usage: IOPS and peak memory consumption against the per-pool
    unit quota (2..20).
"""

from __future__ import annotations

from repro.harness.runner import ExperimentConfig, current_scale, run_experiment
from repro.harness.sweep import run_cells
from repro.metrics.tables import format_series, format_table

__all__ = ["run_fig6a", "run_fig6b"]

#: per-node memory of the paper's testbed (256 GB), for the memory-% column
NODE_MEMORY = 256e9


def run_fig6a(scale: str | None = None) -> tuple[str, dict]:
    scale = scale or current_scale()
    n_ops = 2500 if scale == "quick" else 10000
    out: dict[str, dict] = {}
    texts = []
    for max_units in (2, 4):
        # small units + a single pool per device so the unit quota is the
        # binding constraint, as in the paper's 16 MiB-unit full-scale runs
        cfg = ExperimentConfig(
            method="tsue",
            trace="tencloud",
            k=6,
            m=4,
            n_clients=64,
            n_ops=n_ops,
            log_unit_size=128 * 1024,
            log_pools=1,
            log_max_units=max_units,
        )
        res = run_experiment(cfg, keep_cluster=True)
        centers, iops = res.ecfs.metrics.iops_series(
            window=max(res.elapsed_sim / 10.0, 1e-4), kind="updates"
        )
        stalls = res.extra.get("stalls", {})
        out[f"quota={max_units}"] = {
            "iops": res.iops,
            "series_t": centers.tolist(),
            "series_iops": iops.tolist(),
            "stalls": stalls.get("stalls", 0.0),
            "stall_time": stalls.get("stall_time", 0.0),
        }
        texts.append(
            format_series(
                centers,
                iops,
                "time (s)",
                "IOPS",
                title=f"Fig.6a — TSUE update IOPS over time, quota={max_units} "
                f"(total {res.iops:,.0f} IOPS, {stalls.get('stalls', 0):.0f} stalls)",
            )
        )
    return "\n\n".join(texts), out


def run_fig6b(scale: str | None = None) -> tuple[str, dict]:
    scale = scale or current_scale()
    quotas = (2, 4, 8) if scale == "quick" else (2, 4, 6, 8, 12, 16, 20)
    # long enough that every quota reaches backend steady state (otherwise
    # a large quota just absorbs the whole finite run in buffers)
    n_ops = 6000 if scale == "quick" else 20000
    cfgs = [
        # same pressure configuration as fig6a so the quota is binding
        ExperimentConfig(
            method="tsue",
            trace="tencloud",
            k=6,
            m=4,
            n_clients=64,
            n_ops=n_ops,
            log_unit_size=128 * 1024,
            log_pools=1,
            log_max_units=q,
        )
        for q in quotas
    ]
    results = run_cells(cfgs)
    rows: dict[str, dict[str, float]] = {}
    for q, cfg, res in zip(quotas, cfgs, results):
        peak = res.extra.get("peak_memory_bytes", 0)
        rows[f"{q} units"] = {
            "IOPS": res.iops,
            "peak mem (MiB/node)": peak / (1 << 20) / cfg.n_osds,
            "mem % of node": 100.0 * peak / cfg.n_osds / NODE_MEMORY,
        }
    text = format_table(
        rows, title="Fig.6b — IOPS and memory vs log-unit quota", floatfmt="{:,.2f}"
    )
    return text, rows
