"""Parallel sweep executor with a content-addressed result cache.

Every cell of a paper figure/table is an independent, deterministic
simulation — a pure function of its :class:`ExperimentConfig` (or scenario
name + seed).  :class:`SweepExecutor` exploits both properties:

* **parallelism** — independent cells fan out across a process pool
  (``workers`` > 1); a single-worker executor runs them serially in
  process, byte-identical to calling :func:`run_experiment` in a loop;
* **content-addressed caching** — a cell's result is stored under the
  SHA-256 of its canonical config serialization, so re-running a sweep
  (or sharing cells between figures) pays only for cells never seen.

Cache invalidation: the key hashes the *config*, not the code.  Any change
to the engine or cluster model that alters results must bump
:data:`CACHE_SCHEMA` (or the operator clears the cache directory).  The
cache is opt-in — no ``cache_dir`` (and no ``REPRO_CACHE_DIR``) means
every cell runs.  CI persists the cache between runs via ``actions/cache``
keyed on :data:`CACHE_SCHEMA`, so only never-seen cells pay.

Fault isolation: with ``workers > 1`` cells run in child processes —
several short cells batched per child to amortize interpreter start-up —
with an optional per-cell ``cell_timeout``.  A cell that hangs is
terminated, a cell that dies is collected, and either is retried once
(``retries``, individually — the rest of its batch is requeued unharmed);
a cell that still fails becomes a :class:`CellFailure` in the result list
(``strict=False``) or raises after the whole sweep drained (``strict``,
the default) — the pool itself never wedges.  On a single-CPU host the
pool cannot beat serial (it only adds fork + pickle overhead and loses
the in-process prefix memos), so the executor falls back to serial there
unless a ``cell_timeout`` needs enforcing — only a child process can be
killed at a deadline.

Prefix sharing: cells that agree on geometry + seed also share their
populate/trace *prefixes* through the in-process content-addressed memos
of :mod:`repro.harness.prefix` (the PR-2 deferred item) — a scenario x
seed grid populates each distinct (geometry, seed) once per worker, not
once per cell.

Environment knobs: ``REPRO_WORKERS`` (default worker count),
``REPRO_CACHE_DIR`` (default cache directory), ``REPRO_CELL_TIMEOUT``
(default per-cell timeout, seconds), ``REPRO_PREFIX_CACHE=0`` (disable
prefix sharing).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import time
from collections import deque
from dataclasses import dataclass, fields
from multiprocessing.connection import wait as _conn_wait
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.fault.digest import canonical as _canonical
from repro.harness.runner import ExperimentConfig, ExperimentResult, run_experiment

if TYPE_CHECKING:  # pragma: no cover
    from repro.fault.runner import ScenarioResult

__all__ = [
    "CACHE_SCHEMA",
    "CellFailure",
    "SweepStats",
    "SweepExecutor",
    "config_key",
    "scenario_cells",
    "scenario_key",
    "run_cells",
    "run_grid",
]

#: bump when a code change alters simulation results (engine semantics,
#: cost model, trace generation) — cached cells from older schemas are
#: then unreachable and simply re-run.
#: 2: epoch-aware placement (digests gained an epoch field; clients chase
#:    mid-flight re-homes; rebuild targets avoid actual homes)
#: 3: front-end subsystem (ScenarioResult gained slo/slo_series/
#:    frontend_stats fields — schema-2 pickles would unpickle without
#:    them; degraded reads skip unreachable sources)
#: 4: unified background scheduler (ScenarioResult gained slo_overall/
#:    background/governor fields; deadline-abandoned read legs are now
#:    cancelled, shifting slo-* digest VALUES; scrub grants per stripe)
#: 5: crash-safe rebalance (block moves settle or ship pending log
#:    content instead of blocking on whole-cluster drains — topo-* digest
#:    VALUES shift; recovery flushes bypass governed recycle pacing,
#:    reordering background grants)
#: 6: integer-microsecond event core (service/wire times round onto the
#:    µs grid, shifting every latency and therefore digest VALUES;
#:    cached cells from the float-time engine must not be replayed)
CACHE_SCHEMA = 6


def config_key(cfg: ExperimentConfig) -> str:
    """Content address of one experiment cell."""
    payload = {f.name: getattr(cfg, f.name) for f in fields(cfg)}
    payload["__schema__"] = CACHE_SCHEMA
    payload["__kind__"] = "experiment"
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


def scenario_cells(names: Iterable[str], seeds: Iterable[int]) -> list[tuple[str, int]]:
    """The (name, seed) cell order :meth:`SweepExecutor.run_scenarios`
    runs and returns results in (row-major: all seeds per name).  Callers
    labelling the flat result list (e.g. ``repro sweep --table``) must use
    this, not a hand-rolled comprehension, so labels can never desync."""
    return [(name, int(seed)) for name in names for seed in seeds]


def scenario_key(name: str, seed: int) -> str:
    """Content address of one fault-scenario cell."""
    payload = {
        "__schema__": CACHE_SCHEMA,
        "__kind__": "scenario",
        "name": name,
        "seed": int(seed),
    }
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


# ---------------------------------------------------------------- workers
# Module-level so they pickle into pool workers.

def _experiment_cell(cfg: ExperimentConfig) -> ExperimentResult:
    return run_experiment(cfg)  # keep_cluster=False: results must pickle


def _scenario_cell(args: tuple[str, int]) -> "ScenarioResult":
    from repro.fault.runner import ScenarioRunner
    from repro.fault.scenarios import get_scenario

    name, seed = args
    return ScenarioRunner(get_scenario(name)).run(seed=seed)


def _batch_entry(worker, batch, conn) -> None:  # pragma: no cover - child proc
    """Child-process entry: run a batch of cells in order, streaming one
    outcome per cell over the pipe (so a mid-batch death loses nothing
    already finished)."""
    try:
        for cell in batch:
            try:
                conn.send(("ok", worker(cell)))
            except BaseException as exc:  # noqa: BLE001 - parent decides
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
    except Exception:
        pass  # pipe gone: the parent already gave up on this child
    finally:
        conn.close()


@dataclass
class CellFailure:
    """A sweep cell that hung or died through every retry (``strict=False``
    sweeps report these in place of results instead of raising)."""

    key: str
    error: str
    attempts: int

    def __repr__(self) -> str:  # keeps CLI tables readable
        return f"<failed cell {self.key[:12]}: {self.error} ({self.attempts} attempts)>"


@dataclass
class SweepStats:
    """Accounting for the executor's last sweep."""

    cells: int = 0
    cache_hits: int = 0
    workers: int = 1
    wall_seconds: float = 0.0
    retried: int = 0
    timeouts: int = 0
    failed: int = 0


class SweepExecutor:
    """Fan independent sweep cells across a process pool, with caching."""

    def __init__(
        self,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        cell_timeout: Optional[float] = None,
        retries: int = 1,
        strict: bool = True,
    ) -> None:
        if workers is None:
            workers = int(os.environ.get("REPRO_WORKERS", "1"))
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
        self.cache_dir = cache_dir
        if cell_timeout is None:
            env_timeout = os.environ.get("REPRO_CELL_TIMEOUT")
            cell_timeout = float(env_timeout) if env_timeout else None
        if cell_timeout is not None and cell_timeout <= 0:
            raise ValueError("cell_timeout must be positive (or None)")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.cell_timeout = cell_timeout
        self.retries = retries
        self.strict = strict
        self.stats = SweepStats(workers=workers)

    # ------------------------------------------------------------- running
    def run(self, cfgs: Sequence[ExperimentConfig]) -> list[ExperimentResult]:
        """Run every config; results are in input order.

        Parallel and serial execution produce equal results: each cell is a
        deterministic single-process simulation either way (asserted by the
        test suite).
        """
        return self._run([config_key(c) for c in cfgs], list(cfgs), _experiment_cell)

    def run_scenarios(
        self, names: Iterable[str], seeds: Iterable[int]
    ) -> list["ScenarioResult"]:
        """Run the scenario × seed grid; results follow
        :func:`scenario_cells` order."""
        cells = scenario_cells(list(names), list(seeds))
        keys = [scenario_key(name, seed) for name, seed in cells]
        return self._run(keys, cells, _scenario_cell)

    def _run(self, keys: list[str], cells: list, worker) -> list:
        t0 = time.perf_counter()
        self.stats = SweepStats(workers=self.workers)
        self.stats.cells = len(cells)
        results: list = [None] * len(cells)
        misses: list[int] = []
        for i, key in enumerate(keys):
            hit = self._cache_load(key)
            if hit is not None:
                results[i] = hit
                self.stats.cache_hits += 1
            else:
                misses.append(i)

        if misses:
            # a process pool needs >1 cell to win and >1 CPU to run on; a
            # single-core host goes serial (keeping the in-process prefix
            # memos warm) — unless a cell_timeout must be enforced, which
            # only a killable child process can honor
            pool = self.workers > 1 and len(misses) > 1 and (
                (os.cpu_count() or 1) > 1 or self.cell_timeout is not None
            )
            if pool:
                self._run_pool(keys, cells, worker, misses, results)
            else:
                self._run_serial(keys, cells, worker, misses, results)
            for i in misses:
                if not isinstance(results[i], CellFailure):
                    self._cache_store(keys[i], results[i])

        failures = [r for r in results if isinstance(r, CellFailure)]
        self.stats.failed = len(failures)
        self.stats.wall_seconds = time.perf_counter() - t0
        if failures and self.strict:
            detail = "; ".join(f.error for f in failures[:3])
            raise RuntimeError(
                f"{len(failures)} sweep cell(s) failed after retries: {detail}"
            )
        return results

    def _run_serial(self, keys, cells, worker, misses, results) -> None:
        """In-process execution (workers == 1, a single miss, or a 1-CPU
        host with no timeout to enforce): byte-identical to a plain loop;
        dead cells retry, hangs are not interruptible in-process (set a
        cell_timeout with workers > 1 for timeout enforcement)."""
        for i in misses:
            for attempt in range(self.retries + 1):
                try:
                    results[i] = worker(cells[i])
                    break
                except Exception as exc:  # noqa: BLE001 - isolate the cell
                    if attempt < self.retries:
                        self.stats.retried += 1
                        continue
                    results[i] = CellFailure(
                        key=keys[i],
                        error=f"{type(exc).__name__}: {exc}",
                        attempts=attempt + 1,
                    )

    def _run_pool(self, keys, cells, worker, misses, results) -> None:
        """Batched children, at most ``workers`` alive at once.

        Short cells are batched several per child (about two batches per
        worker, for load balance) so interpreter start-up amortizes;
        children stream one outcome per cell.  ``cell_timeout`` applies
        per cell — the deadline resets as each outcome arrives.  A cell
        that times out or kills its child is charged the attempt and
        requeued (until its retry budget is spent, then it lands as a
        :class:`CellFailure`); the *rest* of its batch never ran, so those
        cells requeue individually at no attempt cost — a bad cell can
        never wedge or fail the rest of the sweep.
        """
        batch_size = max(1, -(-len(misses) // (self.workers * 2)))
        pending = deque(
            [(i, 0) for i in misses[b : b + batch_size]]
            for b in range(0, len(misses), batch_size)
        )
        # conn -> [batch, cursor, process, deadline]  (mutable: cursor and
        # deadline advance as the child streams outcomes)
        running: dict = {}

        def finish(i: int, attempt: int, error: Optional[str]) -> None:
            if error is None:
                return
            if attempt < self.retries:
                self.stats.retried += 1
                pending.append([(i, attempt + 1)])
            else:
                results[i] = CellFailure(
                    key=keys[i], error=error, attempts=attempt + 1
                )

        def requeue_rest(batch, cursor) -> None:
            """Cells behind a dead/hung one never ran: retry them solo,
            without charging an attempt."""
            for i, attempt in batch[cursor:]:
                pending.append([(i, attempt)])

        while pending or running:
            while pending and len(running) < self.workers:
                batch = pending.popleft()
                recv, send = multiprocessing.Pipe(duplex=False)
                proc = multiprocessing.Process(
                    target=_batch_entry,
                    args=(worker, [cells[i] for i, _a in batch], send),
                    daemon=True,
                )
                proc.start()
                send.close()
                deadline = (
                    None
                    if self.cell_timeout is None
                    else time.monotonic() + self.cell_timeout
                )
                running[recv] = [batch, 0, proc, deadline]

            deadlines = [d for *_ignored, d in running.values() if d is not None]
            wait_for = (
                max(0.0, min(deadlines) - time.monotonic()) if deadlines else None
            )
            ready = _conn_wait(list(running), timeout=wait_for)
            for conn in ready:
                entry = running[conn]
                batch, cursor, proc, _deadline = entry
                try:
                    status, payload = conn.recv()
                except EOFError:
                    # the child died on the cell at the cursor; the rest of
                    # the batch never started
                    del running[conn]
                    conn.close()
                    proc.join()
                    i, attempt = batch[cursor]
                    finish(i, attempt, f"worker died (exit {proc.exitcode})")
                    requeue_rest(batch, cursor + 1)
                    continue
                i, attempt = batch[cursor]
                entry[1] = cursor + 1
                if status == "ok":
                    results[i] = payload
                else:
                    finish(i, attempt, payload)
                if entry[1] == len(batch):
                    del running[conn]
                    conn.close()
                    proc.join()
                elif self.cell_timeout is not None:
                    # per-cell budget: the clock restarts for the next cell
                    entry[3] = time.monotonic() + self.cell_timeout
            now = time.monotonic()
            for conn, (batch, cursor, proc, deadline) in list(running.items()):
                if deadline is not None and now >= deadline:
                    del running[conn]
                    proc.terminate()
                    proc.join()
                    conn.close()
                    self.stats.timeouts += 1
                    i, attempt = batch[cursor]
                    finish(
                        i, attempt, f"timed out after {self.cell_timeout:g}s"
                    )
                    requeue_rest(batch, cursor + 1)

    # ------------------------------------------------------------- caching
    def _cache_path(self, key: str) -> Optional[str]:
        if not self.cache_dir:
            return None
        return os.path.join(self.cache_dir, f"{key}.pkl")

    def _cache_load(self, key: str):
        path = self._cache_path(key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except Exception:
            return None  # corrupt/partial entry: treat as a miss

    def _cache_store(self, key: str, result) -> None:
        path = self._cache_path(key)
        if path is None or result is None:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)  # atomic: concurrent writers can't tear
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass


def run_cells(
    cfgs: Sequence[ExperimentConfig],
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> list[ExperimentResult]:
    """One-shot helper for figure/table harnesses: run the cells through a
    :class:`SweepExecutor` (workers/cache from the environment unless
    overridden — serial and uncached by default)."""
    return SweepExecutor(workers=workers, cache_dir=cache_dir).run(cfgs)


def run_grid(
    cells: Sequence[tuple[tuple[str, str], ExperimentConfig]],
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    executor: Optional[SweepExecutor] = None,
) -> dict[str, dict[str, ExperimentResult]]:
    """Run ``((row, col), config)`` cells and assemble the results as
    ``grid[row][col]`` — the shape every figure harness tabulates.  Keeps
    label/result pairing in one place so cell ordering can never
    desynchronize from the assembled table.  Pass ``executor`` to reuse a
    caller-owned one (its ``stats`` then reflect this run)."""
    if executor is None:
        executor = SweepExecutor(workers=workers, cache_dir=cache_dir)
    results = executor.run([cfg for _label, cfg in cells])
    grid: dict[str, dict[str, ExperimentResult]] = {}
    for ((row, col), _cfg), res in zip(cells, results):
        grid.setdefault(row, {})[col] = res
    return grid
