"""Parallel sweep executor with a content-addressed result cache.

Every cell of a paper figure/table is an independent, deterministic
simulation — a pure function of its :class:`ExperimentConfig` (or scenario
name + seed).  :class:`SweepExecutor` exploits both properties:

* **parallelism** — independent cells fan out across a process pool
  (``workers`` > 1); a single-worker executor runs them serially in
  process, byte-identical to calling :func:`run_experiment` in a loop;
* **content-addressed caching** — a cell's result is stored under the
  SHA-256 of its canonical config serialization, so re-running a sweep
  (or sharing cells between figures) pays only for cells never seen.

Cache invalidation: the key hashes the *config*, not the code.  Any change
to the engine or cluster model that alters results must bump
:data:`CACHE_SCHEMA` (or the operator clears the cache directory).  The
cache is opt-in — no ``cache_dir`` (and no ``REPRO_CACHE_DIR``) means
every cell runs.

Environment knobs: ``REPRO_WORKERS`` (default worker count),
``REPRO_CACHE_DIR`` (default cache directory).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.fault.digest import canonical as _canonical
from repro.harness.runner import ExperimentConfig, ExperimentResult, run_experiment

if TYPE_CHECKING:  # pragma: no cover
    from repro.fault.runner import ScenarioResult

__all__ = [
    "CACHE_SCHEMA",
    "SweepStats",
    "SweepExecutor",
    "config_key",
    "scenario_key",
    "run_cells",
    "run_grid",
]

#: bump when a code change alters simulation results (engine semantics,
#: cost model, trace generation) — cached cells from older schemas are
#: then unreachable and simply re-run
CACHE_SCHEMA = 1


def config_key(cfg: ExperimentConfig) -> str:
    """Content address of one experiment cell."""
    payload = {f.name: getattr(cfg, f.name) for f in fields(cfg)}
    payload["__schema__"] = CACHE_SCHEMA
    payload["__kind__"] = "experiment"
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


def scenario_key(name: str, seed: int) -> str:
    """Content address of one fault-scenario cell."""
    payload = {
        "__schema__": CACHE_SCHEMA,
        "__kind__": "scenario",
        "name": name,
        "seed": int(seed),
    }
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


# ---------------------------------------------------------------- workers
# Module-level so they pickle into pool workers.

def _experiment_cell(cfg: ExperimentConfig) -> ExperimentResult:
    return run_experiment(cfg)  # keep_cluster=False: results must pickle


def _scenario_cell(args: tuple[str, int]) -> "ScenarioResult":
    from repro.fault.runner import ScenarioRunner
    from repro.fault.scenarios import get_scenario

    name, seed = args
    return ScenarioRunner(get_scenario(name)).run(seed=seed)


@dataclass
class SweepStats:
    """Accounting for the executor's last sweep."""

    cells: int = 0
    cache_hits: int = 0
    workers: int = 1
    wall_seconds: float = 0.0


class SweepExecutor:
    """Fan independent sweep cells across a process pool, with caching."""

    def __init__(
        self,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
    ) -> None:
        if workers is None:
            workers = int(os.environ.get("REPRO_WORKERS", "1"))
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
        self.cache_dir = cache_dir
        self.stats = SweepStats(workers=workers)

    # ------------------------------------------------------------- running
    def run(self, cfgs: Sequence[ExperimentConfig]) -> list[ExperimentResult]:
        """Run every config; results are in input order.

        Parallel and serial execution produce equal results: each cell is a
        deterministic single-process simulation either way (asserted by the
        test suite).
        """
        return self._run([config_key(c) for c in cfgs], list(cfgs), _experiment_cell)

    def run_scenarios(
        self, names: Iterable[str], seeds: Iterable[int]
    ) -> list["ScenarioResult"]:
        """Run the scenario × seed grid (row-major: all seeds per name)."""
        names = list(names)
        seeds = [int(s) for s in seeds]  # materialize: one-shot iterators
        cells = [(name, seed) for name in names for seed in seeds]
        keys = [scenario_key(name, seed) for name, seed in cells]
        return self._run(keys, cells, _scenario_cell)

    def _run(self, keys: list[str], cells: list, worker) -> list:
        t0 = time.perf_counter()
        self.stats = SweepStats(workers=self.workers)
        self.stats.cells = len(cells)
        results: list = [None] * len(cells)
        misses: list[int] = []
        for i, key in enumerate(keys):
            hit = self._cache_load(key)
            if hit is not None:
                results[i] = hit
                self.stats.cache_hits += 1
            else:
                misses.append(i)

        if misses:
            if self.workers > 1 and len(misses) > 1:
                from concurrent.futures import ProcessPoolExecutor

                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    for i, res in zip(
                        misses, pool.map(worker, [cells[i] for i in misses])
                    ):
                        results[i] = res
            else:
                for i in misses:
                    results[i] = worker(cells[i])
            for i in misses:
                self._cache_store(keys[i], results[i])

        self.stats.wall_seconds = time.perf_counter() - t0
        return results

    # ------------------------------------------------------------- caching
    def _cache_path(self, key: str) -> Optional[str]:
        if not self.cache_dir:
            return None
        return os.path.join(self.cache_dir, f"{key}.pkl")

    def _cache_load(self, key: str):
        path = self._cache_path(key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except Exception:
            return None  # corrupt/partial entry: treat as a miss

    def _cache_store(self, key: str, result) -> None:
        path = self._cache_path(key)
        if path is None or result is None:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)  # atomic: concurrent writers can't tear
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass


def run_cells(
    cfgs: Sequence[ExperimentConfig],
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> list[ExperimentResult]:
    """One-shot helper for figure/table harnesses: run the cells through a
    :class:`SweepExecutor` (workers/cache from the environment unless
    overridden — serial and uncached by default)."""
    return SweepExecutor(workers=workers, cache_dir=cache_dir).run(cfgs)


def run_grid(
    cells: Sequence[tuple[tuple[str, str], ExperimentConfig]],
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    executor: Optional[SweepExecutor] = None,
) -> dict[str, dict[str, ExperimentResult]]:
    """Run ``((row, col), config)`` cells and assemble the results as
    ``grid[row][col]`` — the shape every figure harness tabulates.  Keeps
    label/result pairing in one place so cell ordering can never
    desynchronize from the assembled table.  Pass ``executor`` to reuse a
    caller-owned one (its ``stats`` then reflect this run)."""
    if executor is None:
        executor = SweepExecutor(workers=workers, cache_dir=cache_dir)
    results = executor.run([cfg for _label, cfg in cells])
    grid: dict[str, dict[str, ExperimentResult]] = {}
    for ((row, col), _cfg), res in zip(cells, results):
        grid.setdefault(row, {})[col] = res
    return grid
