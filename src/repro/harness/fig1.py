"""Fig. 1 — critical-path latency decomposition per update method.

The paper's Fig. 1 is a schematic of the update paths; here we measure it:
two back-to-back 4 KiB updates to the *same address* are issued on an
otherwise idle cluster.  The first ("cold") update exercises each method's
first-touch path (PARIX's extra serial hop, PLR's first reserved append...),
the second ("warm") its steady-state path.  Expected ordering: FO longest;
the write-after-read family (PL/PLR/CoRD) next; TSUE shortest (replica-style
sequential append).
"""

from __future__ import annotations

from repro.cluster.ecfs import ECFS
from repro.harness.runner import ExperimentConfig
from repro.metrics.tables import format_table
from repro.net.fabric import NetParams

__all__ = ["METHODS", "run"]

METHODS = ("fo", "fl", "pl", "plr", "parix", "cord", "tsue")


def run(scale: str | None = None) -> tuple[str, dict]:
    rows: dict[str, dict[str, float]] = {}
    for method in METHODS:
        cfg = ExperimentConfig(method=method, k=6, m=4, seed=99)
        ecfs = ECFS(
            cfg.cluster_config(),
            method=method,
            net_params=NetParams(latency=cfg.net_latency),
        )
        files = ecfs.populate(n_files=1, stripes_per_file=1, fill="zeros")
        (client,) = ecfs.add_clients(1)

        def two_updates():
            yield ecfs.env.process(client.update(files[0], 8192, 4096))
            yield ecfs.env.process(client.update(files[0], 8192, 4096))

        ecfs.env.run(ecfs.env.process(two_updates(), name="fig1"))
        cold, warm = (lat * 1e6 for lat in ecfs.metrics.updates.latencies[:2])
        rows[method.upper()] = {"cold update (us)": cold, "warm update (us)": warm}
    text = format_table(
        rows, title="Fig.1 — single-update critical-path latency", floatfmt="{:,.1f}"
    )
    return text, rows
