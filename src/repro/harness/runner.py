"""Shared experiment runner: build cluster, replay trace, collect results."""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.cluster.config import ClusterConfig
from repro.cluster.ecfs import ECFS
from repro.common.perf import parked_gc
from repro.common.units import KiB, MiB
from repro.metrics.workload import WorkloadReport, aggregate_workload
from repro.net.fabric import NetParams
from repro.traces.alicloud import alicloud_spec
from repro.traces.msr import msr_spec
from repro.traces.replayer import TraceReplayer
from repro.traces.synthetic import SyntheticTraceSpec
from repro.traces.tencloud import tencloud_spec

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "current_scale",
    "run_experiment",
    "resolve_trace",
]

#: one-way latency of the paper's cloud testbed (virtualized 25 Gb/s
#: Ethernet on Chameleon — VM-to-VM latency is north of 100 us, which is
#: what makes PARIX's serial second hop "particularly detrimental in a
#: 25Gb/s cloud environment", §5.2)
CLOUD_LATENCY = 120e-6


def current_scale() -> str:
    scale = os.environ.get("REPRO_SCALE", "quick")
    if scale not in ("quick", "full"):
        raise ValueError(f"REPRO_SCALE must be quick|full, got {scale!r}")
    return scale


def resolve_trace(name: str) -> SyntheticTraceSpec:
    """Trace spec by harness name: alicloud, tencloud, tencloud-writeonly,
    or msr-<volume>."""
    if name == "alicloud":
        return alicloud_spec()
    if name == "tencloud":
        return tencloud_spec()
    if name == "tencloud-writeonly":
        # tencloud's size/locality fingerprint at update_ratio=1.0: the
        # steady-state write microbench (every op enters the update path)
        import dataclasses

        return dataclasses.replace(
            tencloud_spec(), name="tencloud-writeonly", update_ratio=1.0
        )
    if name.startswith("msr-"):
        return msr_spec(name[4:])
    raise KeyError(f"unknown trace {name!r}")


@dataclass
class ExperimentConfig:
    """Everything needed to run one cell of a paper table/figure."""

    method: str = "tsue"
    trace: str = "tencloud"
    k: int = 6
    m: int = 4
    n_clients: int = 16
    n_ops: int = 2000
    device: str = "ssd"
    n_osds: int = 16
    block_size: int = 256 * KiB
    log_unit_size: int = 1 * MiB
    log_max_units: int = 4
    log_pools: int = 4
    n_files: int = 6
    stripes_per_file: int = 8
    #: restrict the trace to the first N files (None = all): models a
    #: cluster whose capacity is mostly cold while updates hammer hot files
    hot_files: Optional[int] = None
    net_latency: float = CLOUD_LATENCY
    seed: int = 2025
    duration: Optional[float] = None
    verify: bool = False
    #: drain logs after replay (Table 1 accounting); recovery experiments
    #: set False — the paper fails the node with logs outstanding
    drain: bool = True
    #: macro-op fan-out batching (the legacy per-leg path is the
    #: equivalence oracle — same digests either way)
    macro_batching: bool = True
    #: table-driven steady-state write schedules (the generator path is the
    #: equivalence oracle — same digests either way)
    request_schedules: bool = True
    #: vectorized bulk drain/recycle plane (the per-unit/per-extent path is
    #: the equivalence oracle — same digests either way)
    bulk_drain: bool = True
    method_options: dict[str, Any] = field(default_factory=dict)

    def cluster_config(self) -> ClusterConfig:
        return ClusterConfig(
            n_osds=self.n_osds,
            k=self.k,
            m=self.m,
            block_size=self.block_size,
            device=self.device,
            log_unit_size=self.log_unit_size,
            log_max_units=self.log_max_units,
            log_pools=self.log_pools,
            macro_batching=self.macro_batching,
            request_schedules=self.request_schedules,
            bulk_drain=self.bulk_drain,
            seed=self.seed,
        )


@dataclass
class ExperimentResult:
    config: ExperimentConfig
    iops: float
    update_iops: float
    latency: dict[str, float]
    workload: WorkloadReport
    elapsed_sim: float
    memory_bytes: int
    extra: dict[str, Any] = field(default_factory=dict)
    ecfs: Optional[ECFS] = None
    #: host-side performance of the run (wall seconds, simulated seconds,
    #: DES events, events/sec).  Excluded from the canonical digest — two
    #: identical simulations on different hardware agree on everything
    #: except this dict.
    perf: dict[str, float] = field(default_factory=dict)


def run_experiment(cfg: ExperimentConfig, keep_cluster: bool = False) -> ExperimentResult:
    """Build, populate, replay, (optionally) drain+verify, measure.

    The whole timed section runs with the cyclic GC parked
    (:func:`repro.common.perf.parked_gc`): ambient gen-2 passes scale with
    whatever earlier work left alive in the process and can multiply the
    wall clock several-fold, corrupting the recorded ``perf`` numbers.
    """
    with parked_gc():
        return _run_experiment(cfg, keep_cluster)


def _run_experiment(cfg: ExperimentConfig, keep_cluster: bool) -> ExperimentResult:
    wall0 = time.perf_counter()
    from repro.harness.prefix import cached_trace, populate_cached

    ecfs = ECFS(
        cfg.cluster_config(),
        method=cfg.method,
        net_params=NetParams(latency=cfg.net_latency),
        method_options=cfg.method_options,
    )
    files = populate_cached(
        ecfs,
        cfg.n_files,
        cfg.stripes_per_file,
        fill="random" if cfg.verify else "zeros",
    )
    file_bytes = ecfs.mds.lookup(files[0]).size
    spec = resolve_trace(cfg.trace)
    targets = files[: cfg.hot_files] if cfg.hot_files else files
    trace = cached_trace(spec, cfg.n_ops, targets, file_bytes, seed=cfg.seed)
    replay = TraceReplayer(ecfs, trace).run(cfg.n_clients, duration=cfg.duration)
    # per-phase split: everything up to here (build+populate+replay) vs the
    # drain/verify tail — the phase the bulk plane targets
    replay_wall = time.perf_counter() - wall0
    replay_events = ecfs.env.steps
    # Drain outstanding logs before accounting: the paper's workload numbers
    # (Table 1) include each method's recycle I/O.  Replay IOPS/latency were
    # already captured, so the drain does not distort throughput numbers.
    if cfg.drain:
        ecfs.drain()
    if cfg.verify:
        ecfs.drain()
        ecfs.verify()
    workload = aggregate_workload(ecfs.osds, ecfs.net)
    wall = time.perf_counter() - wall0
    events = ecfs.env.steps
    drain_wall = wall - replay_wall
    drain_events = events - replay_events
    result = ExperimentResult(
        config=cfg,
        iops=replay.iops,
        update_iops=ecfs.metrics.aggregate_iops("updates"),
        latency=ecfs.metrics.latency_stats("updates"),
        workload=workload,
        elapsed_sim=replay.elapsed,
        memory_bytes=ecfs.method_memory(),
        ecfs=ecfs if keep_cluster else None,
        perf={
            "wall_seconds": wall,
            "sim_seconds": ecfs.env.now,
            "events": float(events),
            "events_per_sec": events / wall if wall > 0 else 0.0,
            # simulated ops per host second: the metric that stays honest
            # when an optimization REMOVES events (events/sec rewards doing
            # the same work with more scaffolding; ops/sec does not)
            "sim_ops_per_sec": cfg.n_ops / wall if wall > 0 else 0.0,
            # fraction of update dispatches the compiled schedule fast
            # path admitted (repro.sim.schedule); 0.0 when the engine is
            # off so BENCH entries stay comparable
            "schedule_hit_rate": (
                ecfs.schedules.hit_rate if ecfs.schedules is not None else 0.0
            ),
            # per-phase split: replay = build+populate+replay, drain = the
            # drain/verify tail (zero when cfg.drain and cfg.verify are off)
            "replay_wall_seconds": replay_wall,
            "replay_events": float(replay_events),
            "replay_us_per_event": (
                replay_wall * 1e6 / replay_events if replay_events else 0.0
            ),
            "drain_wall_seconds": drain_wall,
            "drain_events": float(drain_events),
            "drain_us_per_event": (
                drain_wall * 1e6 / drain_events if drain_events else 0.0
            ),
        },
    )
    if ecfs.bulk is not None:
        result.extra["bulk_drain"] = ecfs.bulk.stats()
    if hasattr(ecfs.method, "stall_stats"):
        result.extra["stalls"] = ecfs.method.stall_stats()
    if hasattr(ecfs.method, "peak_memory_bytes"):
        result.extra["peak_memory_bytes"] = ecfs.method.peak_memory_bytes()
    return result
