"""Experiment harness: one driver per table/figure of the paper.

Every driver exposes ``run(scale=...)`` returning ``(text, data)`` where
``text`` is the formatted table/series (printed by the benchmarks) and
``data`` is the raw dict for assertions.  ``scale`` is "quick" (CI-sized,
seconds per experiment) or "full" (closer to paper scale); the default
comes from the ``REPRO_SCALE`` environment variable.
"""

from repro.harness.runner import (
    ExperimentConfig,
    ExperimentResult,
    current_scale,
    run_experiment,
)
from repro.harness import fig1, fig5, fig6, fig7, fig8, table1, table2

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "current_scale",
    "run_experiment",
    "fig1",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "table1",
    "table2",
]
