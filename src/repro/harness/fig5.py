"""Fig. 5 — update throughput on the SSD cluster.

Sweep: {Ali-Cloud, Ten-Cloud} x RS(6,2) (12,2) (6,3) (12,3) (6,4) (12,4) x
client counts, methods FO, PL, PLR, PARIX, CoRD, TSUE.  Reported metric is
aggregate update IOPS, exactly the paper's y-axis.
"""

from __future__ import annotations

from typing import Iterable

from repro.harness.runner import ExperimentConfig, current_scale, run_experiment
from repro.harness.sweep import run_grid
from repro.metrics.tables import format_table

__all__ = ["METHODS", "RS_CODES", "run", "run_cell", "cell_config"]

METHODS = ("fo", "pl", "plr", "parix", "cord", "tsue")
RS_CODES = ((6, 2), (12, 2), (6, 3), (12, 3), (6, 4), (12, 4))


def cell_config(
    method: str, trace: str, k: int, m: int, n_clients: int, n_ops: int, seed: int = 2025
) -> ExperimentConfig:
    """Config of one bar of one subplot."""
    return ExperimentConfig(
        method=method,
        trace=trace,
        k=k,
        m=m,
        n_clients=n_clients,
        n_ops=n_ops,
        seed=seed,
    )


def run_cell(
    method: str, trace: str, k: int, m: int, n_clients: int, n_ops: int, seed: int = 2025
) -> float:
    """One bar of one subplot: aggregate update IOPS."""
    return run_experiment(cell_config(method, trace, k, m, n_clients, n_ops, seed)).iops


def run(
    scale: str | None = None,
    traces: Iterable[str] = ("alicloud", "tencloud"),
    rs_codes: Iterable[tuple[int, int]] | None = None,
    methods: Iterable[str] = METHODS,
    client_counts: Iterable[int] | None = None,
) -> tuple[str, dict]:
    scale = scale or current_scale()
    if rs_codes is None:
        rs_codes = ((6, 2), (6, 4)) if scale == "quick" else RS_CODES
    if client_counts is None:
        client_counts = (64,) if scale == "quick" else (4, 16, 64)
    n_ops = 1200 if scale == "quick" else 6000

    # independent cells: fanned through the sweep executor (serial and
    # uncached unless REPRO_WORKERS / REPRO_CACHE_DIR say otherwise)
    grid = run_grid(
        [
            (
                (f"{trace} RS({k},{m}) c{nc}", method.upper()),
                cell_config(method, trace, k, m, nc, n_ops),
            )
            for trace in traces
            for k, m in rs_codes
            for nc in client_counts
            for method in methods
        ]
    )
    data = {
        row: {col: res.iops for col, res in cols.items()}
        for row, cols in grid.items()
    }
    text = format_table(
        data,
        title="Fig.5 — aggregate update IOPS (SSD cluster)",
        floatfmt="{:,.0f}",
    )
    return text, data
