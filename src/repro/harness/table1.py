"""Table 1 — storage workload and network traffic.

Replays the Ten-Cloud twin under RS(6,4) for every method and reports
READ/WRITE ops + volume, OVERWRITE ops + volume, and network traffic —
plus the derived erase counts behind the lifespan claim.
"""

from __future__ import annotations

from typing import Iterable

from repro.harness.runner import ExperimentConfig, current_scale
from repro.harness.sweep import run_cells
from repro.metrics.lifespan import lifespan_ratios
from repro.metrics.tables import format_table

__all__ = ["METHODS", "run"]

METHODS = ("fo", "pl", "plr", "parix", "cord", "tsue")


def run(
    scale: str | None = None, methods: Iterable[str] = METHODS
) -> tuple[str, dict]:
    scale = scale or current_scale()
    n_ops = 1500 if scale == "quick" else 8000
    methods = list(methods)
    results = run_cells(
        [
            ExperimentConfig(
                method=method, trace="tencloud", k=6, m=4, n_clients=16, n_ops=n_ops
            )
            for method in methods
        ]
    )
    data: dict[str, dict[str, float]] = {}
    erases: dict[str, float] = {}
    for method, res in zip(methods, results):
        row = res.workload.row()
        row["ERASES"] = res.workload.total_erases
        data[method.upper()] = row
        erases[method] = res.workload.total_erases
    ratios = lifespan_ratios(erases, reference="tsue")
    for method in methods:
        data[method.upper()]["LIFESPAN (TSUE=1x)"] = (
            1.0 / ratios[method] if ratios[method] else float("inf")
        )
    text = format_table(
        data,
        title="Table 1 — storage workload and network traffic "
        "(Ten-Cloud, RS(6,4))",
        floatfmt="{:,.3f}",
    )
    return text, {"rows": data, "lifespan_ratio_vs_tsue": ratios}
