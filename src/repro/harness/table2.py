"""Table 2 — time updated data resides in memory, per log layer.

Replays Ali-Cloud and Ten-Cloud twins under RS(12,4) with TSUE and reports
mean APPEND / BUFFER / RECYCLE time per layer (microseconds) plus the total
residence (first append to final parity merge).
"""

from __future__ import annotations

from repro.harness.runner import ExperimentConfig, current_scale, run_experiment
from repro.metrics.tables import format_table

__all__ = ["run"]


def run(scale: str | None = None) -> tuple[str, dict]:
    scale = scale or current_scale()
    n_ops = 1500 if scale == "quick" else 8000
    rows: dict[str, dict[str, float]] = {}
    raw: dict[str, dict] = {}
    for trace in ("alicloud", "tencloud"):
        cfg = ExperimentConfig(
            method="tsue", trace=trace, k=12, m=4, n_clients=16, n_ops=n_ops
        )
        res = run_experiment(cfg, keep_cluster=True)
        stats = res.ecfs.method.residence_stats()
        raw[trace] = stats
        total = sum(
            stats[layer][phase]
            for layer in stats
            for phase in ("append", "buffer", "recycle")
        )
        for layer, phases in stats.items():
            rows[f"{trace} {layer}"] = {
                "APPEND (us)": phases["append"] * 1e6,
                "BUFFER (us)": phases["buffer"] * 1e6,
                "RECYCLE (us)": phases["recycle"] * 1e6,
            }
        rows[f"{trace} TOTAL"] = {"TOTAL (us)": total * 1e6}
    text = format_table(
        rows,
        title="Table 2 — residence time of updated data (TSUE, RS(12,4))",
        floatfmt="{:,.1f}",
    )
    return text, raw
