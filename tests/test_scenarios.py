"""The scenario catalog: every named scenario runs, verifies, and is
seed-deterministic; the CLI exposes the catalog."""

import pytest

from repro.fault.runner import ScenarioRunner
from repro.fault.scenarios import SCENARIOS, get_scenario
from repro.harness.cli import main


def test_catalog_has_at_least_six_scenarios():
    assert len(SCENARIOS) >= 6


def test_unknown_scenario_raises():
    with pytest.raises(KeyError):
        get_scenario("no-such-scenario")


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_runs_and_verifies(name):
    result = ScenarioRunner(get_scenario(name)).run(seed=7)
    assert result.stripes_verified > 0
    assert result.ops > 0
    assert result.digest  # canonical digest computed


@pytest.mark.parametrize("name", ["crash-mid-update", "rolling-restart", "scrub-repair"])
def test_scenario_seed_determinism(name):
    a = ScenarioRunner(get_scenario(name)).run(seed=5)
    b = ScenarioRunner(get_scenario(name)).run(seed=5)
    assert a.digest == b.digest
    assert a.ops == b.ops and a.failures == b.failures
    assert a.fault_log == b.fault_log
    c = ScenarioRunner(get_scenario(name)).run(seed=6)
    assert c.digest != a.digest


def test_crash_scenario_reports_recovery():
    result = ScenarioRunner(get_scenario("crash-mid-update")).run(seed=7)
    assert len(result.recovery_reports) == 1
    assert result.recovery_reports[0].blocks_rebuilt > 0
    assert result.detected  # heartbeat saw the failure


def test_scrub_scenario_repairs_everything():
    result = ScenarioRunner(get_scenario("scrub-repair")).run(seed=7)
    assert sum(len(r.repaired) for r in result.scrub_reports) == 2


def test_partition_scenario_readmits_islanders():
    result = ScenarioRunner(get_scenario("partition-heal")).run(seed=7)
    assert {idx for idx, _ in result.detected} == {0, 1}
    assert {idx for idx, _ in result.readmitted} == {0, 1}
    assert not result.recovery_reports


# ---------------------------------------------------------------------- CLI
def test_cli_scenario_list(capsys):
    assert main(["scenario", "--list"]) == 0
    out = capsys.readouterr().out
    for name in SCENARIOS:
        assert name in out
    assert len(out.strip().splitlines()) >= 6


def test_cli_scenario_run(capsys):
    assert main(["scenario", "scrub-repair", "--seed", "9"]) == 0
    out = capsys.readouterr().out
    assert "digest:" in out
    assert "scrub-repair" in out


def test_cli_scenario_unknown(capsys):
    assert main(["scenario", "bogus"]) == 2
