"""Smoke tests for the experiment harness (tiny configurations)."""

import pytest

from repro.harness.runner import (
    ExperimentConfig,
    current_scale,
    resolve_trace,
    run_experiment,
)


def _tiny(**kw):
    defaults = dict(
        n_ops=80,
        n_clients=4,
        n_files=1,
        stripes_per_file=2,
        block_size=1 << 16,
        log_unit_size=1 << 17,
    )
    defaults.update(kw)
    return ExperimentConfig(**defaults)


def test_resolve_trace_names():
    assert resolve_trace("alicloud").name == "alicloud"
    assert resolve_trace("tencloud").name == "tencloud"
    assert resolve_trace("msr-hm0").name == "msr-hm0"
    with pytest.raises(KeyError):
        resolve_trace("bogus")


def test_current_scale_env(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert current_scale() == "quick"
    monkeypatch.setenv("REPRO_SCALE", "full")
    assert current_scale() == "full"
    monkeypatch.setenv("REPRO_SCALE", "huge")
    with pytest.raises(ValueError):
        current_scale()


def test_run_experiment_returns_metrics():
    res = run_experiment(_tiny(method="tsue"))
    assert res.iops > 0
    assert res.latency["count"] > 0
    assert res.workload.rw_ops > 0
    assert res.elapsed_sim > 0
    assert res.ecfs is None  # not kept by default


def test_run_experiment_keep_cluster():
    res = run_experiment(_tiny(method="fo"), keep_cluster=True)
    assert res.ecfs is not None
    assert res.ecfs.verify() >= 0 or True  # cluster accessible


def test_run_experiment_with_verify():
    res = run_experiment(_tiny(method="pl", verify=True))
    assert res.iops > 0  # verify raised nothing


def test_run_experiment_hot_files_restricts_targets():
    cfg = _tiny(method="fo", n_files=3, hot_files=1)
    res = run_experiment(cfg, keep_cluster=True)
    # files 2 and 3 never received updates: their (zero-filled) data blocks
    # are untouched in the oracle
    import numpy as np

    for block in sorted(res.ecfs.known_blocks):
        if block.file_id != 1 and block.idx < res.ecfs.rs.k:
            assert not res.ecfs.oracle.expected(block).any(), block


def test_run_experiment_hdd_device():
    res = run_experiment(_tiny(method="fo", device="hdd", n_ops=30))
    assert res.iops > 0


def test_method_options_forwarded():
    from repro.update.tsue import TSUEOptions

    cfg = _tiny(
        method="tsue",
        method_options={"options": TSUEOptions(use_deltalog=False)},
    )
    res = run_experiment(cfg, keep_cluster=True)
    assert res.ecfs.method.opts.use_deltalog is False


def test_duration_cap_stops_early():
    cfg = _tiny(method="tsue", n_ops=100_000, duration=0.02)
    res = run_experiment(cfg)
    assert res.elapsed_sim <= 0.05
