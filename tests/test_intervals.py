"""Unit + property tests for ExtentMap (the second-level index)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Extent, ExtentMap, MergePolicy


def _bytes(seed, n):
    return np.random.default_rng(seed).integers(0, 256, n, dtype=np.uint8)


def test_insert_disjoint_keeps_both():
    m = ExtentMap(MergePolicy.OVERWRITE)
    m.insert(0, _bytes(0, 8))
    m.insert(100, _bytes(1, 8))
    assert len(m) == 2
    assert m.live_bytes == 16


def test_overwrite_same_range_latest_wins():
    m = ExtentMap(MergePolicy.OVERWRITE)
    first, second = _bytes(0, 16), _bytes(1, 16)
    m.insert(32, first)
    m.insert(32, second)
    assert len(m) == 1
    assert np.array_equal(m.lookup(32, 16), second)
    assert m.records_absorbed == 2


def test_overwrite_partial_overlap_layers_correctly():
    m = ExtentMap(MergePolicy.OVERWRITE)
    a = np.full(8, 1, dtype=np.uint8)
    b = np.full(8, 2, dtype=np.uint8)
    m.insert(0, a)
    m.insert(4, b)  # covers [4, 12)
    assert len(m) == 1
    got = m.lookup(0, 12)
    assert np.array_equal(got[:4], a[:4])
    assert np.array_equal(got[4:], b)


def test_adjacent_extents_coalesce():
    m = ExtentMap(MergePolicy.OVERWRITE)
    m.insert(0, np.full(4, 1, dtype=np.uint8))
    m.insert(4, np.full(4, 2, dtype=np.uint8))
    assert len(m) == 1
    ext = next(m.extents())
    assert ext.start == 0 and ext.size == 8


def test_coalesce_bridging_three():
    m = ExtentMap(MergePolicy.OVERWRITE)
    m.insert(0, np.full(4, 1, dtype=np.uint8))
    m.insert(8, np.full(4, 3, dtype=np.uint8))
    m.insert(4, np.full(4, 2, dtype=np.uint8))  # bridges the gap
    assert len(m) == 1
    assert np.array_equal(
        m.lookup(0, 12),
        np.concatenate([np.full(4, 1), np.full(4, 2), np.full(4, 3)]).astype(np.uint8),
    )


def test_xor_policy_composes_deltas():
    m = ExtentMap(MergePolicy.XOR)
    a, b = _bytes(0, 8), _bytes(1, 8)
    m.insert(16, a)
    m.insert(16, b)
    assert np.array_equal(m.lookup(16, 8), a ^ b)


def test_xor_partial_overlap():
    m = ExtentMap(MergePolicy.XOR)
    a = np.full(8, 0x0F, dtype=np.uint8)
    b = np.full(8, 0xF0, dtype=np.uint8)
    m.insert(0, a)
    m.insert(4, b)
    got = m.lookup(0, 12)
    assert np.array_equal(got[:4], a[:4])
    assert np.array_equal(got[4:8], a[4:] ^ b[:4])
    assert np.array_equal(got[8:], b[4:])


def test_lookup_miss_outside():
    m = ExtentMap(MergePolicy.OVERWRITE)
    m.insert(10, _bytes(0, 10))
    assert m.lookup(0, 5) is None
    assert m.lookup(15, 10) is None  # extends past the extent
    assert m.lookup(25, 4) is None


def test_covers_any():
    m = ExtentMap(MergePolicy.OVERWRITE)
    m.insert(10, _bytes(0, 10))
    assert m.covers_any(15, 100)
    assert m.covers_any(0, 11)
    assert not m.covers_any(0, 10)
    assert not m.covers_any(20, 5)


def test_uncovered_gaps():
    m = ExtentMap(MergePolicy.OVERWRITE)
    m.insert(10, _bytes(0, 10))  # [10, 20)
    m.insert(30, _bytes(1, 10))  # [30, 40)
    assert m.uncovered(0, 50) == [(0, 10), (20, 10), (40, 10)]
    assert m.uncovered(10, 10) == []
    assert m.uncovered(12, 4) == []
    assert m.uncovered(15, 20) == [(20, 10)]


def test_read_range_across_extents():
    m = ExtentMap(MergePolicy.OVERWRITE)
    a, b = _bytes(0, 10), _bytes(1, 10)
    m.insert(0, a)
    m.insert(10, b)  # coalesced anyway
    got = m.read_range(5, 10)
    assert np.array_equal(got, np.concatenate([a[5:], b[:5]]))
    assert m.read_range(15, 10) is None


def test_invalid_inserts_rejected():
    m = ExtentMap(MergePolicy.OVERWRITE)
    with pytest.raises(ValueError):
        m.insert(-1, _bytes(0, 4))
    with pytest.raises(ValueError):
        m.insert(0, np.zeros(0, dtype=np.uint8))
    with pytest.raises(ValueError):
        m.insert(0, np.zeros((2, 2), dtype=np.uint8))


def test_reduction_ratio_counts_merges():
    m = ExtentMap(MergePolicy.OVERWRITE)
    for _ in range(10):
        m.insert(0, _bytes(0, 4))
    assert m.reduction_ratio == 10.0


def test_clear_resets():
    m = ExtentMap(MergePolicy.OVERWRITE)
    m.insert(0, _bytes(0, 4))
    m.clear()
    assert len(m) == 0
    assert m.records_absorbed == 0


# ------------------------------------------------------------ property tests
@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=200),
            st.integers(min_value=1, max_value=50),
            st.integers(min_value=0, max_value=255),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_overwrite_matches_flat_buffer(records):
    """OVERWRITE extent map == writing the same records into a flat array."""
    m = ExtentMap(MergePolicy.OVERWRITE)
    flat = np.zeros(256, dtype=np.uint8)
    written = np.zeros(256, dtype=bool)
    for offset, size, fill in records:
        data = np.full(size, fill, dtype=np.uint8)
        m.insert(offset, data)
        flat[offset : offset + size] = data
        written[offset : offset + size] = True
    # 1. extents are sorted, non-overlapping, non-adjacent
    exts = list(m.extents())
    for left, right in zip(exts, exts[1:]):
        assert left.end < right.start
    # 2. coverage matches and bytes match
    covered = np.zeros(256, dtype=bool)
    for ext in exts:
        covered[ext.start : ext.end] = True
        assert np.array_equal(ext.data, flat[ext.start : ext.end])
    assert np.array_equal(covered, written)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=200),
            st.integers(min_value=1, max_value=50),
            st.integers(min_value=0, max_value=255),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_xor_matches_flat_xor_buffer(records):
    """XOR extent map == XOR-accumulating into a flat array."""
    m = ExtentMap(MergePolicy.XOR)
    flat = np.zeros(256, dtype=np.uint8)
    touched = np.zeros(256, dtype=bool)
    for offset, size, fill in records:
        data = np.full(size, fill, dtype=np.uint8)
        m.insert(offset, data)
        flat[offset : offset + size] ^= data
        touched[offset : offset + size] = True
    covered = np.zeros(256, dtype=bool)
    for ext in m.extents():
        covered[ext.start : ext.end] = True
        assert np.array_equal(ext.data, flat[ext.start : ext.end])
    # XOR may retain zero bytes where deltas cancelled — coverage equals
    # everything ever touched
    assert np.array_equal(covered, touched)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=400),
            st.integers(min_value=1, max_value=64),
        ),
        min_size=1,
        max_size=25,
    ),
    st.integers(min_value=0, max_value=420),
    st.integers(min_value=1, max_value=80),
)
def test_uncovered_complements_coverage(records, q_off, q_size):
    m = ExtentMap(MergePolicy.OVERWRITE)
    covered = np.zeros(512, dtype=bool)
    for offset, size in records:
        m.insert(offset, np.ones(size, dtype=np.uint8))
        covered[offset : offset + size] = True
    gaps = m.uncovered(q_off, q_size)
    from_gaps = np.zeros(512, dtype=bool)
    for off, size in gaps:
        assert q_off <= off and off + size <= q_off + q_size
        from_gaps[off : off + size] = True
    window = np.zeros(512, dtype=bool)
    window[q_off : q_off + q_size] = True
    assert np.array_equal(from_gaps, window & ~covered)
