"""Unit tests for metrics collection, workload aggregation, formatting."""

import numpy as np
import pytest

from repro.metrics import (
    MetricsCollector,
    aggregate_workload,
    format_series,
    format_table,
    lifespan_ratios,
)
from repro.net import NetworkFabric
from repro.sim import Environment
from repro.storage import IOKind, IORequest, SSDevice


class _FakeEnv:
    def __init__(self):
        self.now = 0.0


def test_collector_iops_over_span():
    env = _FakeEnv()
    mc = MetricsCollector(env)
    for t in (1.0, 1.5, 2.0, 3.0):
        env.now = t
        mc.record_update(0.001, 4096)
    assert mc.aggregate_iops("updates") == pytest.approx(4 / 2.0)
    assert mc.updates.bytes == 4 * 4096


def test_collector_single_op_iops():
    env = _FakeEnv()
    mc = MetricsCollector(env)
    env.now = 1.0
    mc.record_update(0.001, 4096)
    assert mc.aggregate_iops("updates") == 1.0


def test_latency_stats():
    env = _FakeEnv()
    mc = MetricsCollector(env)
    for lat in (0.001, 0.002, 0.003, 0.010):
        mc.record_read(lat, 1)
    stats = mc.latency_stats("reads")
    assert stats["count"] == 4
    assert stats["mean"] == pytest.approx(0.004)
    assert stats["max"] == pytest.approx(0.010)
    assert stats["p50"] == pytest.approx(0.0025)


def test_latency_stats_empty():
    mc = MetricsCollector(_FakeEnv())
    assert mc.latency_stats("updates")["count"] == 0


def test_iops_series_windows():
    env = _FakeEnv()
    mc = MetricsCollector(env)
    for t in np.linspace(0.0, 9.99, 100):
        env.now = float(t)
        mc.record_update(0.001, 1)
    centers, iops = mc.iops_series(window=1.0)
    assert len(centers) == 10
    assert iops.sum() == pytest.approx(100.0)


def test_iops_series_empty():
    mc = MetricsCollector(_FakeEnv())
    centers, iops = mc.iops_series()
    assert centers.size == 0 and iops.size == 0


def test_throughput_bytes():
    env = _FakeEnv()
    mc = MetricsCollector(env)
    env.now = 0.0
    mc.record_update(0.001, 1000)
    env.now = 2.0
    mc.record_update(0.001, 1000)
    assert mc.throughput_bytes("updates") == pytest.approx(1000.0)


# --------------------------------------------------------------- workload
def test_aggregate_workload_sums_devices():
    env = Environment()

    class _OSD:
        def __init__(self, dev):
            self.device = dev

    devs = [SSDevice(env, f"s{i}") for i in range(2)]
    net = NetworkFabric(env)
    net.add_node("a")
    net.add_node("b")

    def io():
        for dev in devs:
            yield env.process(
                dev.submit(IORequest(IOKind.WRITE, 1 << 28, 4096, stream="x", overwrite=True))
            )
        yield from net.transfer("a", "b", 12345)

    env.run(env.process(io()))
    report = aggregate_workload([_OSD(d) for d in devs], net)
    assert report.rw_ops == 2
    assert report.overwrite_ops == 2
    assert report.network_bytes == 12345
    assert report.page_programs == 2
    row = report.row()
    assert row["OVERWRITE Num."] == 2


# --------------------------------------------------------------- lifespan
def test_lifespan_ratios():
    ratios = lifespan_ratios({"tsue": 10.0, "fo": 130.0, "pl": 25.0})
    assert ratios["tsue"] == 1.0
    assert ratios["fo"] == pytest.approx(13.0)
    assert ratios["pl"] == pytest.approx(2.5)


def test_lifespan_zero_reference():
    ratios = lifespan_ratios({"tsue": 0.0, "fo": 5.0})
    assert ratios["fo"] == float("inf")


def test_lifespan_missing_reference():
    with pytest.raises(KeyError):
        lifespan_ratios({"fo": 1.0})


# -------------------------------------------------------------- formatting
def test_format_table_alignment_and_values():
    text = format_table(
        {"row1": {"A": 1.5, "B": 2}, "row2": {"A": 10.25}},
        title="T",
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "A" in lines[1] and "B" in lines[1]
    assert "1.50" in text
    assert "-" in lines[-1]  # missing B in row2 shown as dash


def test_format_table_empty():
    assert format_table({}, title="empty") == "empty"


def test_format_series():
    text = format_series([1.0, 2.0], [10.0, 20.0], "x", "y", title="S")
    assert text.startswith("S")
    assert "10.000" in text
