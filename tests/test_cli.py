"""Tests for the experiment CLI."""

import pytest

from repro.harness.cli import EXPERIMENTS, main


def test_list_prints_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.split()
    assert set(out) == set(EXPERIMENTS)


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])


def test_fig1_via_cli(capsys):
    assert main(["fig1"]) == 0
    out = capsys.readouterr().out
    assert "Fig.1" in out
    assert "TSUE" in out


def test_topology_matrix_via_cli(capsys):
    assert main(["topology", "--files", "4", "--stripes", "10"]) == 0
    out = capsys.readouterr().out
    assert "rack0" in out  # topology tree
    assert "rotation" in out and "crush" in out
    assert "data moved by one topology event" in out


def test_topology_live_via_cli(capsys):
    assert main(["topology", "--live", "--policy", "crush", "--event", "join"]) == 0
    out = capsys.readouterr().out
    assert "rebalance epoch 1" in out
    assert "time-to-balanced" in out


def test_topology_live_unknown_combo(capsys):
    assert main(["topology", "--live", "--policy", "bogus"]) == 2


def test_scale_flag_sets_env(monkeypatch, capsys):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert main(["fig1", "--scale", "quick"]) == 0
    import os

    assert os.environ["REPRO_SCALE"] == "quick"
