"""Unit + property tests for GF(2^8) arithmetic and matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import DecodeError
from repro.gf import (
    gf_add,
    gf_div,
    gf_inv,
    gf_mat_inv,
    gf_mat_mul,
    gf_mat_rank,
    gf_mat_vec,
    gf_mul,
    gf_mul_scalar,
    gf_pow,
    identity,
)

scalars = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


# ------------------------------------------------------------------ field
def test_add_is_xor():
    a = np.arange(256, dtype=np.uint8)
    b = np.arange(256, dtype=np.uint8)[::-1].copy()
    assert np.array_equal(gf_add(a, b), a ^ b)


def test_mul_identity_and_zero():
    a = np.arange(256, dtype=np.uint8)
    assert np.array_equal(gf_mul(a, np.uint8(1)), a)
    assert not gf_mul(a, np.uint8(0)).any()


@given(nonzero, nonzero)
def test_mul_commutative(a, b):
    assert gf_mul(np.uint8(a), np.uint8(b)) == gf_mul(np.uint8(b), np.uint8(a))


@given(scalars, scalars, scalars)
def test_mul_associative(a, b, c):
    ab_c = gf_mul(gf_mul(np.uint8(a), np.uint8(b)), np.uint8(c))
    a_bc = gf_mul(np.uint8(a), gf_mul(np.uint8(b), np.uint8(c)))
    assert ab_c == a_bc


@given(scalars, scalars, scalars)
def test_mul_distributes_over_add(a, b, c):
    left = gf_mul(np.uint8(a), np.uint8(b ^ c))
    right = gf_mul(np.uint8(a), np.uint8(b)) ^ gf_mul(np.uint8(a), np.uint8(c))
    assert left == right


@given(nonzero)
def test_inverse_roundtrip(a):
    assert gf_mul(np.uint8(a), np.uint8(gf_inv(a))) == 1


def test_inv_zero_raises():
    with pytest.raises(ZeroDivisionError):
        gf_inv(0)


@given(scalars, nonzero)
def test_div_is_mul_by_inverse(a, b):
    assert gf_div(np.uint8(a), np.uint8(b)) == gf_mul(np.uint8(a), np.uint8(gf_inv(b)))


def test_div_by_zero_raises():
    with pytest.raises(ZeroDivisionError):
        gf_div(np.uint8(3), np.uint8(0))


@given(nonzero, st.integers(min_value=0, max_value=300))
def test_pow_matches_repeated_mul(a, n):
    expected = 1
    for _ in range(n):
        expected = int(gf_mul(np.uint8(expected), np.uint8(a)))
    assert gf_pow(a, n) == expected


def test_pow_negative_raises():
    with pytest.raises(ValueError):
        gf_pow(2, -1)


def test_mul_scalar_matches_elementwise():
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, 4096, dtype=np.uint8)
    for coef in (0, 1, 2, 0x1D, 255):
        assert np.array_equal(
            gf_mul_scalar(coef, data), gf_mul(np.uint8(coef), data)
        )


def test_mul_scalar_out_of_range():
    with pytest.raises(ValueError):
        gf_mul_scalar(256, np.zeros(4, dtype=np.uint8))


def test_mul_scalar_returns_copy():
    data = np.ones(8, dtype=np.uint8)
    out = gf_mul_scalar(1, data)
    out[0] = 99
    assert data[0] == 1


# ----------------------------------------------------------------- matrix
def test_identity_is_multiplicative_identity():
    rng = np.random.default_rng(1)
    m = rng.integers(0, 256, (5, 5), dtype=np.uint8)
    assert np.array_equal(gf_mat_mul(identity(5), m), m)
    assert np.array_equal(gf_mat_mul(m, identity(5)), m)


@settings(max_examples=25)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=2**31))
def test_matrix_inverse_roundtrip(n, seed):
    rng = np.random.default_rng(seed)
    # random matrices over GF(256) are invertible with high probability;
    # retry until one is
    for _ in range(20):
        m = rng.integers(0, 256, (n, n), dtype=np.uint8)
        if gf_mat_rank(m) == n:
            break
    else:
        pytest.skip("no invertible matrix found")
    inv = gf_mat_inv(m)
    assert np.array_equal(gf_mat_mul(inv, m), identity(n))
    assert np.array_equal(gf_mat_mul(m, inv), identity(n))


def test_singular_matrix_raises():
    m = np.array([[1, 2], [1, 2]], dtype=np.uint8)
    with pytest.raises(DecodeError):
        gf_mat_inv(m)


def test_non_square_inverse_rejected():
    with pytest.raises(ValueError):
        gf_mat_inv(np.zeros((2, 3), dtype=np.uint8))


def test_rank_of_rectangular():
    m = np.array([[1, 0, 0], [0, 1, 0]], dtype=np.uint8)
    assert gf_mat_rank(m) == 2
    m2 = np.array([[1, 2, 3], [2, 4, 6]], dtype=np.uint8)
    # row 2 = 2 * row 1 over GF(256)? 2*3 = 6 in GF(256), 2*2=4, 2*1=2 -> yes
    assert gf_mat_rank(m2) == 1


def test_mat_vec_matches_mat_mul():
    rng = np.random.default_rng(2)
    m = rng.integers(0, 256, (3, 4), dtype=np.uint8)
    x = rng.integers(0, 256, 4, dtype=np.uint8)
    assert np.array_equal(gf_mat_vec(m, x), gf_mat_mul(m, x[:, None])[:, 0])


def test_mat_mul_shape_mismatch():
    with pytest.raises(ValueError):
        gf_mat_mul(np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 3), dtype=np.uint8))
