"""Byte-compat pins for the cheap paper artifacts (fig1, table1-quick).

The harness artifacts are deterministic text: same tree, same bytes.  The
committed goldens pin that — any change to simulated timing, placement,
RNG consumption, or table formatting shows up here as a readable diff
instead of silently shifting a published number.  They run in the fast CI
tier, so a result-changing commit cannot land without either fixing the
regression or deliberately re-blessing the files (and bumping
``CACHE_SCHEMA`` in :mod:`repro.harness.sweep`, which the blessing commit
must justify).

Goldens were last blessed for the integer-microsecond event core: service
and wire times now round onto the µs grid, which moved every latency by
sub-µs amounts (e.g. fig1's TSUE warm update is exactly 381 µs).
"""

from __future__ import annotations

import pathlib

from repro.harness import fig1, table1

_GOLDEN = pathlib.Path(__file__).parent / "golden"


def _assert_matches(text: str, name: str) -> None:
    want = (_GOLDEN / name).read_text()
    assert text == want, (
        f"{name} diverged from the committed golden; if the change is "
        f"intended, re-bless tests/golden/{name} and bump CACHE_SCHEMA"
    )


def test_fig1_byte_compat():
    text, _ = fig1.run()
    _assert_matches(text, "fig1.txt")


def test_table1_quick_byte_compat():
    text, _ = table1.run(scale="quick")
    _assert_matches(text, "table1_quick.txt")
