"""Crash-durability matrix: every update method survives a mid-update crash.

For each method in :data:`repro.update.METHODS`, a workload replays with
failure-tolerant clients while an OSD is crashed abruptly mid-stream (no
quiesce — in-flight foreground and background work is cut off), recovery
rebuilds the node, and the stripe-verify oracle must pass byte-for-byte:
no acked update may be lost, none may double-apply.
"""

import pytest

from repro.cluster import ClusterConfig, ECFS
from repro.fault.events import CrashOSD, FaultSchedule, after_ops
from repro.fault.injector import FaultInjector
from repro.harness.runner import resolve_trace
from repro.traces.replayer import TraceReplayer
from repro.traces.synthetic import generate_trace
from repro.update import METHODS


def _run_crash(method: str, victim: int = 0, seed: int = 21, n_ops: int = 150):
    ecfs = ECFS(
        ClusterConfig(
            n_osds=10, k=4, m=2, block_size=1 << 16, log_unit_size=1 << 17,
            seed=seed,
        ),
        method=method,
    )
    files = ecfs.populate(n_files=2, stripes_per_file=2, fill="random")
    schedule = FaultSchedule().when(
        after_ops(n_ops // 3), CrashOSD(osd=victim, recover=True)
    )
    injector = FaultInjector(ecfs, schedule)
    injector.start()
    trace = generate_trace(
        resolve_trace("tencloud"), n_ops, files,
        ecfs.mds.lookup(files[0]).size, seed=seed,
    )
    replay = TraceReplayer(ecfs, trace).run(4, tolerate_failures=True)
    ecfs.drain()
    ecfs.env.run(injector.done())
    ecfs.drain()
    return ecfs, injector, replay


@pytest.mark.parametrize("method", sorted(METHODS))
def test_method_survives_mid_update_crash(method):
    ecfs, injector, replay = _run_crash(method)
    assert len(injector.recovery_reports) == 1
    assert injector.recovery_reports[0].blocks_rebuilt > 0
    # every acked update must survive, byte-for-byte
    assert ecfs.verify() == 4


@pytest.mark.parametrize("method", ["fo", "tsue"])
def test_crash_of_second_victim(method):
    """Same matrix against a different victim (different data/parity mix)."""
    ecfs, injector, _replay = _run_crash(method, victim=5, seed=33)
    assert ecfs.verify() == 4


def test_ops_fail_during_outage_but_service_continues():
    ecfs, _injector, replay = _run_crash("tsue", seed=77, n_ops=240)
    # the workload finished despite the mid-stream crash; clients kept going
    assert replay.ops_issued + replay.failures == 240
    assert ecfs.verify() == 4
