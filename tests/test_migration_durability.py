"""Durability under elasticity: the {crash, bounce} x {mid-migration,
mid-epoch-advance} x update-method matrix.

Every cell joins an OSD under live updates, lands a fault either between
the epoch advance and the first block move or in the thick of the
migration, lets recovery (crash) or a restart (bounce) run concurrently
with the remaining moves, and then requires the stripe-verify oracle to
pass byte-for-byte — no acked update lost, none double-applied, no matter
which epoch a block's log content was written under.

The fast tier runs a smoke subset; the full matrix is ``slow`` (nightly).
Alongside the matrix: white-box coverage of the settle-or-ship migration
protocol (``Rebalancer.ship_threshold``), the scheduler's ``expedite``
escape hatch, and TSUE's arbiter-bypassing recovery flush — the two halves
of the recovery-priority-inversion fix.
"""

import pytest

from repro.cluster import ClusterConfig, ECFS, RecoveryManager
from repro.harness.runner import resolve_trace
from repro.placement import Rebalancer
from repro.traces.replayer import TraceReplayer
from repro.traces.synthetic import generate_trace
from repro.update import METHODS

_BS = 1 << 16
_VICTIM = 3


def _cluster(method, seed, background=None):
    cfg = dict(
        n_osds=10,
        k=4,
        m=2,
        block_size=_BS,
        log_unit_size=2 * _BS,
        placement_policy="crush",
        seed=seed,
    )
    if background is not None:
        cfg["background"] = background
    return ECFS(ClusterConfig(**cfg), method=method)


def _run_cell(method, fault, phase, seed=21, n_ops=140, background=None, **rebal_kw):
    """One matrix cell; returns (ecfs, outcome dict) after full settlement."""
    ecfs = _cluster(method, seed, background)
    files = ecfs.populate(n_files=2, stripes_per_file=3, fill="random")
    env = ecfs.env
    # slow the migration (8 blocks/sec via the legacy cap unless the cell
    # brings its own pacing) so both fault windows are wide enough to land
    # in deterministically
    if background is None:
        rebal_kw.setdefault("bandwidth_cap", 8 * _BS)
    rebal = Rebalancer(ecfs, **rebal_kw)
    outcome = {}

    def inject():
        if fault == "crash":
            ecfs.crash_osd(_VICTIM)
            report = yield env.process(
                RecoveryManager(ecfs).fail_and_recover(_VICTIM), name="recover"
            )
            outcome["recovery"] = report
        else:  # bounce: transient outage, contents intact, no rebuild
            ecfs.osds[_VICTIM].fail()
            yield env.timeout(0.05)
            ecfs.restart_osd(_VICTIM)

    def elastic():
        yield env.timeout(5e-4)  # updates already in flight
        _osd, plan = ecfs.join_osd()
        assert plan.moves
        if phase == "mid-epoch-advance":
            # the victim dies after the epoch advanced but before a single
            # block moved; repair and migration then race each other
            fault_proc = env.process(inject(), name="inject")
            report = yield env.process(rebal.run(plan), name="rebal")
        else:  # mid-migration
            proc = env.process(rebal.run(plan), name="rebal")
            while rebal.moved_blocks < 1:
                yield env.timeout(2e-4)
            fault_proc = env.process(inject(), name="inject")
            report = yield proc
        yield fault_proc
        outcome["rebalance"] = report

    proc = env.process(elastic(), name="elastic")
    trace = generate_trace(
        resolve_trace("tencloud"), n_ops, files,
        ecfs.mds.lookup(files[0]).size, seed=seed,
    )
    TraceReplayer(ecfs, trace).run(4, tolerate_failures=True)
    env.run(proc)
    ecfs.drain()
    return ecfs, outcome


# the fast-tier smoke subset: one cell per fault/phase axis, both pacing
# paths for TSUE; every other cell runs in the nightly full matrix
_SMOKE = {
    ("crash", "mid-migration", "tsue"),
    ("bounce", "mid-migration", "tsue"),
    ("crash", "mid-epoch-advance", "pl"),
}

_MATRIX = [
    pytest.param(
        fault, phase, method,
        marks=() if (fault, phase, method) in _SMOKE else pytest.mark.slow,
        id=f"{fault}-{phase}-{method}",
    )
    for fault in ("crash", "bounce")
    for phase in ("mid-migration", "mid-epoch-advance")
    for method in sorted(METHODS)
]


@pytest.mark.parametrize("fault,phase,method", _MATRIX)
def test_fault_during_elasticity_rebuilds_byte_identically(fault, phase, method):
    ecfs, outcome = _run_cell(method, fault, phase)
    if fault == "crash":
        assert outcome["recovery"].blocks_rebuilt > 0
    report = outcome["rebalance"]
    assert report.moved_blocks + report.skipped == report.planned
    assert ecfs.verify() == 6  # 2 files x 3 stripes, byte-exact vs oracle


def test_crash_mid_migration_with_scheduler_pacing():
    """The same crash cell through the unified background scheduler's
    ``rebalance`` stream (MoveOp grants) instead of the legacy cap — both
    pacing paths run the identical settle-or-ship protocol."""
    from repro.background import BackgroundConfig

    bg = BackgroundConfig(enabled=True, bandwidth=2 * _BS)
    ecfs, outcome = _run_cell("tsue", "crash", "mid-migration", background=bg)
    assert outcome["recovery"].blocks_rebuilt > 0
    assert ecfs.verify() == 6


# ------------------------------------------------------- settle-or-ship
def _loaded_cluster(seed=11):
    """A TSUE cluster with live, undrained log debt (no flush after replay)."""
    ecfs = _cluster("tsue", seed)
    files = ecfs.populate(n_files=2, stripes_per_file=3, fill="random")
    trace = generate_trace(
        resolve_trace("tencloud"), 120, files,
        ecfs.mds.lookup(files[0]).size, seed=seed,
    )
    TraceReplayer(ecfs, trace).run(4)
    assert any(ecfs.method.log_debt_bytes(o) for o in ecfs.osds)
    return ecfs


def _debt_carrying_osd(ecfs) -> int:
    """Index of an OSD hosting at least one block with live log content
    addressed to it — decommissioning it guarantees the migration meets
    pending log bytes (a join's few moves may miss them by chance)."""
    for block in sorted(ecfs.known_blocks):
        osd = ecfs.osd_hosting(block)
        if ecfs.method.block_log_bytes(osd, block) > 0:
            return osd.idx
    raise AssertionError("no block with pending log content")


def test_ship_path_replays_live_log_content_at_destination():
    """``ship_threshold=0`` forces every block with pending log content
    down the log-shipping path: extents travel with the block and replay
    at the destination, dedup-token-guarded — and the cluster still
    verifies byte-exact."""
    ecfs = _loaded_cluster()
    plan = ecfs.decommission_osd(_debt_carrying_osd(ecfs))
    report = ecfs.env.run(
        ecfs.env.process(Rebalancer(ecfs, ship_threshold=0).run(plan), name="rebal")
    )
    assert report.shipped_log_bytes > 0
    ecfs.drain()
    assert ecfs.verify() == 6


def test_settle_path_drains_in_place_and_ships_nothing():
    """With the threshold above any per-block debt, every move settles via
    recycle-before-move and the ship path stays cold."""
    ecfs = _loaded_cluster()
    plan = ecfs.decommission_osd(_debt_carrying_osd(ecfs))
    report = ecfs.env.run(
        ecfs.env.process(
            Rebalancer(ecfs, ship_threshold=1 << 30).run(plan), name="rebal"
        )
    )
    assert report.shipped_log_bytes == 0
    ecfs.drain()
    assert ecfs.verify() == 6


# --------------------------------------------- recovery-priority inversion
def test_expedite_releases_parked_recycle_grants():
    """The scheduler-side half of the inversion fix: ``expedite`` fires
    every queued grant of a stream immediately, accounts it granted (and
    expedited), and leaves at most the one in-flight item paced."""
    from repro.background import BackgroundConfig
    from repro.background.work import RecycleOp

    # 1 KiB/s: the first grant sits in paced service for ~minutes of sim
    # time, everything behind it parks in the lane heap
    bg = BackgroundConfig(enabled=True, bandwidth=1024.0)
    ecfs = _cluster("tsue", seed=5, background=bg)
    sched = ecfs.background
    env = ecfs.env
    done = []

    def submit(tag):
        yield from sched.request(RecycleOp(osd="osd0", nbytes=1 << 20, tag=tag))
        done.append(tag)

    for tag in ("a", "b", "c"):
        env.process(submit(tag), name=f"sub-{tag}")
    env.run(until=0.01)
    assert not done  # all three submitted, none granted yet
    assert sched.expedite("recycle") == 2  # "a" is in paced service
    env.run(until=0.02)
    assert sorted(done) == ["b", "c"]
    assert sched.expedited_items == 2
    assert sched.expedited_bytes == 2 << 20
    # expedited grants count as granted: only the in-flight item remains
    assert sched.streams["recycle"].backlog_bytes == 1 << 20
    # a foreign stream is untouched
    assert sched.expedite("scrub") == 0


def test_expedite_is_a_noop_when_disabled():
    ecfs = _cluster("tsue", seed=5)
    assert not ecfs.background.enabled
    assert ecfs.background.expedite("recycle") == 0


def test_recovery_flush_bypasses_arbitered_recycle():
    """The method-side half: during ``_recovery_flush`` TSUE's recyclers
    skip the governed arbiter entirely (counted in
    ``recovery_bypass_bytes``) so recovery settlement cannot queue behind
    a throttled recycle backlog."""
    from repro.background import BackgroundConfig

    bg = BackgroundConfig(enabled=True, bandwidth=4 * _BS)
    ecfs = _cluster("tsue", seed=9, background=bg)
    files = ecfs.populate(n_files=2, stripes_per_file=3, fill="random")
    trace = generate_trace(
        resolve_trace("tencloud"), 120, files,
        ecfs.mds.lookup(files[0]).size, seed=9,
    )
    TraceReplayer(ecfs, trace).run(4)
    method = ecfs.method
    assert method.recovery_bypass_bytes == 0
    ecfs.env.run(ecfs.env.process(method._recovery_flush(), name="rf"))
    assert method.recovery_bypass_bytes > 0
    assert method._recovery_boost == 0  # boost released even on success
    ecfs.drain()
    assert ecfs.verify() == 6


# ------------------------------------------------------ catalog scenarios
def test_crash_mid_rebalance_scenario_smoke():
    """The acceptance scenario: an OSD crashes mid-migration (the
    ``mid_rebalance`` predicate guarantees blocks were in flight) and the
    cluster rebuilds byte-identically — checks assert inside the runner."""
    from repro.fault.runner import ScenarioRunner
    from repro.fault.scenarios import get_scenario

    result = ScenarioRunner(get_scenario("topo-crash-mid-rebalance")).run(seed=7)
    assert result.epoch == 1


@pytest.mark.slow
def test_storm_crash_recovery_scenario():
    """Maintenance-storm crash: recovery flushes complete ahead of the
    governed recycle backlog (asserted by the scenario's own
    ``_expect_recovery_unstarved`` check)."""
    from repro.fault.runner import ScenarioRunner
    from repro.fault.scenarios import get_scenario

    ScenarioRunner(get_scenario("bg-storm-crash-recovery")).run(seed=7)
