"""SLO scenario grid + metric regression tests (fast tier).

The catalog-wide run/verify/determinism coverage lives in
tests/test_scenarios.py (parametrized over every scenario, slo-* included);
this file pins the *SLO semantics*: per-class availability ordering, the
presence and shape of the windowed series, retry/hedge behaviour under each
fault archetype, and the CLI surfaces (`repro slo`, `repro sweep --table`).
"""

import pytest

from repro.fault.runner import ScenarioRunner
from repro.fault.scenarios import SCENARIOS, get_scenario
from repro.harness.cli import main
from repro.metrics.tables import format_markdown

_SLO_KEYS = {
    "submitted", "served", "shed", "failed", "deadline_missed", "retries",
    "hedges", "hedge_wins", "availability", "goodput", "error_budget",
    "slo_target", "p50", "p99", "p999",
}


@pytest.fixture(scope="module")
def slo_results():
    return {
        name: ScenarioRunner(get_scenario(name)).run(seed=7)
        for name in sorted(SCENARIOS)
        if name.startswith("slo-")
    }


def test_grid_covers_qos_by_fault(slo_results):
    assert set(slo_results) == {
        "slo-steady",
        "slo-qos-crash",
        "slo-qos-partition",
        "slo-qos-rebalance",
        "slo-adaptive-brownout",
    }
    for result in slo_results.values():
        # every cell reports all three QoS classes with the full SLO schema
        classes = {who.split("/")[1] for who in result.slo}
        assert classes == {"gold", "silver", "bronze"}
        for stats in result.slo.values():
            assert _SLO_KEYS <= set(stats)


def test_steady_baseline_meets_targets(slo_results):
    for who, stats in slo_results["slo-steady"].slo.items():
        assert stats["availability"] == 1.0, who
        assert stats["error_budget"] == 1.0, who
        assert stats["failed"] == 0 and stats["shed"] == 0


def test_crash_cell_heals_by_retry(slo_results):
    result = slo_results["slo-qos-crash"]
    stats = result.frontend_stats
    assert stats["retries"] > 0
    assert len(result.recovery_reports) == 1
    # availability dips below steady but the floors hold
    for who, s in result.slo.items():
        assert 0.75 <= s["availability"] <= 1.0, who


def test_partition_cell_hedges_reads(slo_results):
    result = slo_results["slo-qos-partition"]
    stats = result.frontend_stats
    assert stats["hedges"] > 0 and stats["hedge_wins"] > 0
    # updates into the island miss their deadline; nothing hard-fails
    assert stats["deadline"] > 0 and stats["failed"] == 0
    # the cut shows up in the latency tail
    p99 = {w.split("/")[1]: s["p99"] for w, s in result.slo.items()}
    steady_p99 = {
        w.split("/")[1]: s["p99"]
        for w, s in slo_results["slo-steady"].slo.items()
    }
    assert p99["silver"] > 10 * steady_p99["silver"]


def test_rebalance_cell_produces_window_series(slo_results):
    result = slo_results["slo-qos-rebalance"]
    series = result.slo_series
    assert len(series["t"]) >= 3  # the arrival span covers several windows
    assert len(series["t"]) == len(series["availability"]) == len(series["p99"])
    assert all(0.0 <= a <= 1.0 for a in series["availability"])
    # the migration ran to completion under load and the series spans it
    assert result.rebalance_stats["moved_blocks"] > 0
    assert result.epoch == 1


def test_slo_fields_change_the_digest(slo_results):
    """The canonical digest covers the SLO read-out: two different fault
    cells over the same geometry/tenants never collide."""
    digests = {name: r.digest for name, r in slo_results.items()}
    assert len(set(digests.values())) == len(digests)


# ---------------------------------------------------------------------- CLI
def test_cli_slo_single_scenario(capsys):
    assert main(["slo", "slo-steady", "--seed", "9"]) == 0
    out = capsys.readouterr().out
    assert "slo t-gold/gold" in out
    assert "window series" in out
    assert "SLO grid" in out


def test_cli_slo_rejects_non_frontend_scenario(capsys):
    assert main(["slo", "crash-mid-update"]) == 2


def test_cli_sweep_table_markdown(capsys):
    assert (
        main(
            [
                "sweep", "--table", "--methods", "tsue", "--traces", "tencloud",
                "--seeds", "2025", "--ops", "60", "--clients", "4", "--workers", "1",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "| trace / seed | TSUE |" in out
    assert "| --- | ---: |" in out


def test_cli_sweep_table_scenarios(capsys):
    assert (
        main(["sweep", "--table", "--scenarios", "slo-steady", "--seeds", "7"])
        == 0
    )
    out = capsys.readouterr().out
    assert "| scenario | seed 7 |" in out
    assert "slo-steady" in out


def test_format_markdown_cells():
    table = format_markdown(
        {"r1": {"a": 1.5, "b": 2}, "r2": {"a": None, "b": "x"}}, corner="row"
    )
    lines = table.splitlines()
    assert lines[0] == "| row | a | b |"
    assert lines[1] == "| --- | ---: | ---: |"
    assert lines[2] == "| r1 | 1.50 | 2 |"
    assert lines[3] == "| r2 | - | x |"
