"""Tests for degraded reads and heartbeat failure detection."""

import numpy as np
import pytest

from repro.cluster import (
    BlockId,
    ClusterConfig,
    ECFS,
    HeartbeatService,
    RecoveryManager,
)
from repro.common.errors import DecodeError


def _cluster(method="tsue", **kw):
    defaults = dict(
        n_osds=10, k=4, m=2, block_size=1 << 16, log_unit_size=1 << 17, seed=61
    )
    defaults.update(kw)
    return ECFS(ClusterConfig(**defaults), method=method)


# ---------------------------------------------------------- degraded reads
def test_degraded_read_returns_correct_bytes():
    ecfs = _cluster()
    files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    (client,) = ecfs.add_clients(1)
    env = ecfs.env

    def flow():
        yield env.process(client.update(files[0], 4096, 4096))
        # drain so the update reaches the data block before the node dies
        yield env.process(ecfs.method.flush())
        block, _ = ecfs.mds.locate(files[0], 4096, ecfs.rs.k)
        ecfs.osd_hosting(block).fail()
        data = yield env.process(client.read(files[0], 4096, 4096))
        return data

    data = env.run(env.process(flow()))
    block, _ = ecfs.mds.locate(files[0], 4096, ecfs.rs.k)
    expected = ecfs.oracle.expected(block)[4096:8192]
    assert np.array_equal(data, expected)


def test_degraded_read_costs_more_than_normal():
    ecfs = _cluster(method="fo")
    files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    (client,) = ecfs.add_clients(1)
    env = ecfs.env

    def normal():
        yield env.process(client.read(files[0], 0, 4096))

    env.run(env.process(normal()))
    normal_lat = ecfs.metrics.reads.latencies[-1]

    block, _ = ecfs.mds.locate(files[0], 0, ecfs.rs.k)
    ecfs.osd_hosting(block).fail()

    def degraded():
        yield env.process(client.read(files[0], 0, 4096))

    env.run(env.process(degraded()))
    degraded_lat = ecfs.metrics.reads.latencies[-1]
    assert degraded_lat > normal_lat  # k fetches + decode beat one fetch


def test_degraded_read_too_many_failures():
    ecfs = _cluster(method="fo", n_osds=12, m=2)
    files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    (client,) = ecfs.add_clients(1)
    # kill three nodes of the stripe: beyond m=2 tolerance
    killed = 0
    for i in range(ecfs.rs.k + ecfs.rs.m):
        bid = BlockId(files[0], 0, i)
        osd = ecfs.osd_hosting(bid)
        if not osd.failed:
            osd.fail()
            killed += 1
        if killed == 3:
            break
    with pytest.raises(DecodeError):
        ecfs.env.run(ecfs.env.process(client.read(files[0], 0, 4096)))


# ------------------------------------------------------------- heartbeats
def test_heartbeat_detects_failure_within_timeout():
    ecfs = _cluster(method="fo")
    ecfs.populate(n_files=1, stripes_per_file=1, fill="zeros")
    service = HeartbeatService(ecfs, interval=0.5, timeout=2.0)
    service.start()
    env = ecfs.env
    env.run(until=3.0)
    assert service.detected == []  # everyone healthy
    ecfs.osds[4].fail()
    env.run(until=10.0)
    assert [idx for idx, _t in service.detected] == [4]
    _, t_detect = service.detected[0]
    assert 3.0 < t_detect <= 3.0 + 2.0 + 1.0  # within timeout + one period


def test_heartbeat_triggers_user_callback():
    ecfs = _cluster(method="fo")
    ecfs.populate(n_files=1, stripes_per_file=1, fill="zeros")
    fired = []
    service = HeartbeatService(
        ecfs, interval=0.5, timeout=1.5, on_failure=fired.append
    )
    service.start()
    ecfs.osds[2].fail()
    ecfs.env.run(until=5.0)
    assert fired == [2]


def test_heartbeat_validation():
    ecfs = _cluster(method="fo")
    with pytest.raises(ValueError):
        HeartbeatService(ecfs, interval=1.0, timeout=0.5)


def test_heartbeat_then_automatic_recovery():
    """End to end: heartbeat detects, callback launches recovery, reads
    continue via degraded path meanwhile, verify passes afterwards."""
    ecfs = _cluster(method="fo")
    files = ecfs.populate(n_files=1, stripes_per_file=2, fill="random")
    env = ecfs.env
    manager = RecoveryManager(ecfs)
    reports = []

    def recover(idx):
        def job():
            report = yield env.process(manager.fail_and_recover(idx))
            reports.append(report)

        env.process(job(), name="auto-recover")

    service = HeartbeatService(ecfs, interval=0.5, timeout=1.5, on_failure=recover)
    service.start()
    ecfs.osds[0].fail()
    env.run(until=15.0)
    assert len(reports) == 1
    assert reports[0].blocks_rebuilt >= 1
    assert ecfs.verify() == 2


# ------------------------------------------------------------ compression
def test_tsue_delta_compression_reduces_traffic():
    from repro.update.tsue import TSUEOptions

    def net_bytes(compress):
        opts = TSUEOptions(compress_deltas=compress, compression_ratio=0.5)
        ecfs = _cluster(method="tsue", seed=62)
        ecfs.method.opts = opts  # same cluster build, different options
        files = ecfs.populate(n_files=1, stripes_per_file=2, fill="random")
        (client,) = ecfs.add_clients(1)

        def flow():
            for i in range(30):
                yield ecfs.env.process(client.update(files[0], i * 8192, 4096))

        ecfs.env.run(ecfs.env.process(flow()))
        ecfs.drain()
        ecfs.verify()
        return ecfs.net.total_bytes

    assert net_bytes(True) < net_bytes(False)


def test_degraded_read_overlays_unrecycled_datalog():
    """The paper's §4.2 story: a node dies with an acked update still in
    its DataLog; degraded reads consult the replica log and return the NEW
    bytes, not the decode of the stale stripe."""
    ecfs = _cluster()
    files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    (client,) = ecfs.add_clients(1)
    env = ecfs.env

    def flow():
        yield env.process(client.update(files[0], 4096, 4096))
        block, _ = ecfs.mds.locate(files[0], 4096, ecfs.rs.k)
        ecfs.osd_hosting(block).fail()  # update only in the victim's log
        data = yield env.process(client.read(files[0], 4096, 4096))
        return data

    data = env.run(env.process(flow()))
    block, _ = ecfs.mds.locate(files[0], 4096, ecfs.rs.k)
    expected = ecfs.oracle.expected(block)[4096:8192]
    assert np.array_equal(data, expected)


def test_degraded_overlay_survives_stash_transition():
    """After on_node_failed tears the victim's pools down, the recovery
    stash still answers degraded reads."""
    ecfs = _cluster()
    files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    (client,) = ecfs.add_clients(1)
    env = ecfs.env

    def flow():
        yield env.process(client.update(files[0], 0, 4096))
        block, _ = ecfs.mds.locate(files[0], 0, ecfs.rs.k)
        victim = ecfs.osd_hosting(block)
        victim.fail()
        ecfs.method.on_node_failed(victim)  # pools -> stash
        data = yield env.process(client.read(files[0], 0, 4096))
        return data

    data = env.run(env.process(flow()))
    block, _ = ecfs.mds.locate(files[0], 0, ecfs.rs.k)
    expected = ecfs.oracle.expected(block)[:4096]
    assert np.array_equal(data, expected)
