"""Placement-subsystem invariants: byte-compat with the seed layout,
failure-domain spread, balance, cross-process determinism, minimal-movement
migration plans, and the epoch/remap bookkeeping that replaced
``ECFS.rehome_block``."""

import os
import subprocess
import sys

import pytest

from repro.cluster.ids import BlockId
from repro.placement import (
    CrushPolicy,
    MigrationPlanner,
    PlacementMap,
    RotationPolicy,
    Topology,
    make_policy,
)

_HASH_MIX = 0x9E3779B97F4A7C15


def _seed_mix(*values: int) -> int:
    """The seed tree's layout hash, re-implemented as a golden reference."""
    h = 0
    for v in values:
        h ^= (v + _HASH_MIX + (h << 6) + (h >> 2)) & 0xFFFFFFFFFFFFFFFF
    return h


def _blocks(n_files: int, stripes: int, width: int) -> list[BlockId]:
    return [
        BlockId(f, s, i)
        for f in range(1, n_files + 1)
        for s in range(stripes)
        for i in range(width)
    ]


# ------------------------------------------------------- seed byte-compat
def test_rotation_matches_seed_layout_exactly():
    """RotationPolicy must be byte-compatible with the original
    ``cluster.layout.Placement`` so seed figures stay identical."""
    n, k, m = 16, 6, 4
    p = RotationPolicy(n, k, m)
    for fid in range(1, 10):
        for s in range(10):
            base = _seed_mix(fid, s) % n
            assert p.stripe_base(fid, s) == base
            assert p.stripe_osds(fid, s) == [(base + i) % n for i in range(k + m)]
            for i in range(k + m):
                b = BlockId(fid, s, i)
                assert p.osd_of(b) == (base + i) % n
                assert p.pool_of(b) == _seed_mix(fid, s, i) % 4
            # seed replica rule: next node after the stripe's span
            used = set(p.stripe_osds(fid, s))
            b0 = BlockId(fid, s, 0)
            if len(used) < n:
                cand = (base + k + m) % n
                while cand in used:
                    cand = (cand + 1) % n
                assert p.replica_osd(b0) == cand
    # full-width fallback: neighbour node
    p10 = RotationPolicy(10, 6, 4)
    b = BlockId(1, 0, 2)
    assert p10.replica_osd(b) == (p10.osd_of(b) + 1) % 10


def test_rotation_elastic_active_list():
    """Rotation over an explicit membership list: joined nodes participate,
    removed ids never appear."""
    p = RotationPolicy(0, 4, 2, active=[0, 1, 2, 4, 5, 6, 7, 9])
    seen = set()
    for b in _blocks(6, 20, 6):
        osd = p.osd_of(b)
        seen.add(osd)
        assert osd in {0, 1, 2, 4, 5, 6, 7, 9}
    assert seen == {0, 1, 2, 4, 5, 6, 7, 9}


# ------------------------------------------------- distinct failure domains
@pytest.mark.parametrize("policy_name", ["rotation", "crush"])
def test_policies_place_stripes_on_distinct_osds(policy_name):
    topo = Topology.flat(16, osds_per_host=1, hosts_per_rack=4)
    policy = make_policy(policy_name, topo, 4, 2)
    for fid in range(1, 9):
        for s in range(12):
            osds = policy.stripe_osds(fid, s)
            assert len(set(osds)) == 6


def test_crush_places_stripes_on_distinct_failure_domains():
    """With >= k+m hosts, no two blocks of a stripe share a host — even
    when hosts hold several devices."""
    topo = Topology.flat(16, osds_per_host=2, hosts_per_rack=4)  # 8 hosts
    policy = CrushPolicy(topo, 4, 2)
    for fid in range(1, 9):
        for s in range(12):
            domains = [topo.domain_of(o) for o in policy.stripe_osds(fid, s)]
            assert len(set(domains)) == 6


def test_crush_replica_outside_stripe():
    topo = Topology.flat(16, 1, 4)
    policy = CrushPolicy(topo, 4, 2)
    for fid in range(1, 6):
        for s in range(8):
            used = set(policy.stripe_osds(fid, s))
            assert policy.replica_osd(BlockId(fid, s, 0)) not in used


# ------------------------------------------------------------------ balance
def test_crush_balances_load_within_tolerance():
    topo = Topology.flat(16, 1, 4)
    policy = CrushPolicy(topo, 4, 2)
    counts = {i: 0 for i in range(16)}
    for b in _blocks(8, 50, 6):
        counts[policy.osd_of(b)] += 1
    mean = sum(counts.values()) / 16
    assert max(counts.values()) <= 1.35 * mean
    assert min(counts.values()) >= 0.65 * mean


def test_crush_respects_weights():
    """A double-weight device carries roughly double the blocks."""
    topo = Topology.flat(12, 1, 4)
    topo.set_weight(3, 2.0)
    policy = CrushPolicy(topo, 4, 2)
    counts = {i: 0 for i in range(12)}
    for b in _blocks(8, 50, 6):
        counts[policy.osd_of(b)] += 1
    others = [c for i, c in counts.items() if i != 3]
    mean_other = sum(others) / len(others)
    assert counts[3] > 1.4 * mean_other


# ----------------------------------------------- cross-process determinism
_DETERMINISM_SNIPPET = """
import sys
from repro.cluster.ids import BlockId
from repro.placement import Topology, make_policy
topo = Topology.flat(13, osds_per_host=1, hosts_per_rack=4)
topo.set_weight(2, 0.5)
for name in ("rotation", "crush"):
    policy = make_policy(name, topo, 4, 2)
    out = []
    for f in range(1, 5):
        for s in range(6):
            for i in range(6):
                b = BlockId(f, s, i)
                out.append((policy.osd_of(b), policy.pool_of(b)))
            out.append(policy.replica_osd(BlockId(f, s, 0)))
    print(name, out)
"""


def test_placement_deterministic_across_processes():
    """Placement must not depend on PYTHONHASHSEED or process state: two
    fresh interpreters (different hash seeds) agree on every mapping."""
    src_dir = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

    def run(hashseed: str) -> str:
        env = dict(os.environ, PYTHONPATH=src_dir, PYTHONHASHSEED=hashseed)
        proc = subprocess.run(
            [sys.executable, "-c", _DETERMINISM_SNIPPET],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return proc.stdout

    assert run("1") == run("424242")


# -------------------------------------------------------- migration planning
def test_planner_empty_on_identity():
    topo = Topology.flat(16, 1, 4)
    policy = CrushPolicy(topo, 4, 2)
    plan = MigrationPlanner.plan(policy.osd_of, policy, _blocks(4, 10, 6))
    assert not plan.moves
    assert plan.fraction_moved == 0.0
    plan.assert_minimal(0.0)  # nothing moved: any bound holds


def test_crush_join_moves_about_one_nth():
    """One device joining an n-device cluster moves ~1/n of blocks (<= the
    1.5/n bound), and the overwhelming share lands on the newcomer."""
    n, k, m = 16, 4, 2
    blocks = _blocks(8, 40, k + m)
    topo = Topology.flat(n, 1, 4)
    old = CrushPolicy(topo, k, m)
    topo.add_osd(n, weight=1.0)
    new = CrushPolicy(topo, k, m)
    plan = MigrationPlanner.plan(old.osd_of, new, blocks)
    plan.assert_minimal(1.5 / (n + 1))
    assert plan.fraction_moved > 0.5 / (n + 1)  # the newcomer gets real load
    onto_new = sum(1 for op in plan.moves if op.dst == n)
    assert onto_new >= 0.6 * len(plan.moves)


def test_rotation_join_reshuffles_nearly_everything():
    """The contrast CRUSH exists for: rotation's join moves most blocks, so
    assert_minimal must fail loudly."""
    n, k, m = 16, 4, 2
    blocks = _blocks(8, 40, k + m)
    topo = Topology.flat(n, 1, 4)
    old = make_policy("rotation", topo, k, m)
    topo.add_osd(n, weight=1.0)
    new = make_policy("rotation", topo, k, m)
    plan = MigrationPlanner.plan(old.osd_of, new, blocks)
    assert plan.fraction_moved > 0.5
    with pytest.raises(AssertionError):
        plan.assert_minimal(1.5 / (n + 1))


def test_crush_decommission_moves_only_the_victims_blocks():
    n, k, m = 16, 4, 2
    blocks = _blocks(8, 40, k + m)
    topo = Topology.flat(n, 1, 4)
    old = CrushPolicy(topo, k, m)
    victim_blocks = {b for b in blocks if old.osd_of(b) == 5}
    topo.remove_osd(5)
    new = CrushPolicy(topo, k, m)
    plan = MigrationPlanner.plan(old.osd_of, new, blocks)
    moved = {op.block for op in plan.moves}
    assert victim_blocks <= moved  # everything on the victim leaves
    assert plan.fraction_moved <= 2.0 / n  # and little else moves
    assert all(op.dst != 5 for op in plan.moves)


# ------------------------------------------------------ epochs and remaps
def test_placement_map_pin_and_advance():
    """The epoch bookkeeping that replaced ``ECFS.rehome_block``: pins
    shadow the ideal mapping, epoch advances fold actual homes into fresh
    remaps, and pinning a block back to ideal clears its entry."""
    topo = Topology.flat(16, 1, 4)
    pmap = PlacementMap(make_policy("crush", topo, 4, 2))
    blocks = _blocks(2, 4, 6)
    b = blocks[0]
    ideal = pmap.osd_of(b)
    other = (ideal + 1) % 16
    pmap.pin(b, other)
    assert pmap.home_of(b) == other
    assert pmap.osd_of(b) == ideal  # ideal view unaffected
    assert not pmap.balanced()
    pmap.pin(b, ideal)  # back to ideal: remap clears
    assert pmap.balanced()

    pmap.pin(b, other)
    topo.add_osd(16, weight=1.0)
    plan = pmap.advance(make_policy("crush", topo, 4, 2), blocks)
    assert pmap.epoch == 1 and plan.epoch == 1
    # every remap points at the block's actual pre-advance home
    for op in plan.moves:
        assert pmap.home_of(op.block) == op.src
        pmap.commit_move(op.block, op.dst)
    assert pmap.balanced()


def test_epoch_advance_cannot_serve_stale_policy_caches():
    """The rehome-cache audit: policy memo caches are per-instance and the
    epoch bump swaps the instance, so a mapping memoized under epoch N is
    unreachable under epoch N+1."""
    topo = Topology.flat(16, 1, 4)
    pmap = PlacementMap(make_policy("crush", topo, 4, 2))
    blocks = _blocks(4, 10, 6)
    for b in blocks:  # populate epoch-0 memo caches
        pmap.osd_of(b)
    old_policy = pmap.policy
    assert old_policy._osd_cache  # memoized
    topo.add_osd(16, weight=1.0)
    pmap.advance(make_policy("crush", topo, 4, 2), blocks)
    assert pmap.policy is not old_policy
    fresh = make_policy("crush", topo, 4, 2)
    for b in blocks:
        assert pmap.osd_of(b) == fresh.osd_of(b)  # never the stale memo
    # the old instance still answers with its own epoch's view, untouched
    assert old_policy.osd_of(blocks[0]) == old_policy._osd_cache[blocks[0]]
