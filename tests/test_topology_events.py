"""Elastic topology events end-to-end: join/decommission/reweight on a live
cluster, the background rebalancer's correctness under concurrent updates,
bandwidth capping, and the catalog's policy x event scenarios."""

from repro.cluster import ClusterConfig, ECFS
from repro.fault.runner import ScenarioRunner
from repro.fault.scenarios import get_scenario
from repro.placement import Rebalancer


def _cluster(placement="crush", **kw):
    defaults = dict(
        n_osds=16,
        k=4,
        m=2,
        block_size=1 << 16,
        log_unit_size=1 << 17,
        placement_policy=placement,
        seed=33,
    )
    defaults.update(kw)
    return ECFS(ClusterConfig(**defaults))


def _run_rebalance(ecfs, plan, **kw):
    rebalancer = Rebalancer(ecfs, **kw)
    return ecfs.env.run(ecfs.env.process(rebalancer.run(plan), name="rebal"))


def test_join_rebalance_settles_and_verifies():
    ecfs = _cluster()
    ecfs.populate(n_files=3, stripes_per_file=4, fill="random")
    osd, plan = ecfs.join_osd()
    assert ecfs.placement.epoch == 1
    assert len(ecfs.osds) == 17
    assert plan.moves  # the newcomer takes real load
    report = _run_rebalance(ecfs, plan)
    assert report.moved_blocks == len(plan.moves)
    assert ecfs.placement.balanced()
    # moved blocks live (and are byte-correct) at their new homes
    for op in plan.moves:
        assert ecfs.placement.home_of(op.block) == op.dst
        assert op.block in ecfs.osds[op.dst].store
    ecfs.drain()
    assert ecfs.verify() == 12
    # the collector saw every move
    stats = ecfs.metrics.rebalance_stats()
    assert stats["moved_blocks"] == report.moved_blocks
    assert stats["moved_bytes"] == report.moved_bytes


def test_join_with_updates_in_flight_loses_nothing():
    """Updates race the migration: logged-but-unapplied TSUE DataLog content
    must settle before its block moves (block_unsettled), and clients chase
    mid-flight re-homes — the cluster verifies byte-clean afterwards."""
    from repro.traces import TraceReplayer, generate_trace, tencloud_spec

    ecfs = _cluster()
    files = ecfs.populate(n_files=3, stripes_per_file=4, fill="random")
    ecfs.add_clients(4)
    fsize = ecfs.mds.lookup(files[0]).size
    trace = generate_trace(tencloud_spec(), 150, files, fsize, seed=5)

    def join_mid_replay():
        yield ecfs.env.timeout(5e-4)
        _osd, plan = ecfs.join_osd()
        report = yield ecfs.env.process(
            Rebalancer(ecfs, parallel=2).run(plan), name="rebal"
        )
        return report

    proc = ecfs.env.process(join_mid_replay(), name="join")
    TraceReplayer(ecfs, trace).run(n_clients=4)
    report = ecfs.env.run(proc)
    assert report.moved_blocks + report.skipped == report.planned
    ecfs.drain()
    assert ecfs.placement.balanced()
    assert ecfs.verify() == 12


def test_decommission_drains_and_retires():
    ecfs = _cluster()
    ecfs.populate(n_files=3, stripes_per_file=4, fill="random")
    victim_blocks = [
        b for b in ecfs.known_blocks if ecfs.placement.home_of(b) == 5
    ]
    assert victim_blocks
    plan = ecfs.decommission_osd(5)
    assert {op.block for op in plan.moves} >= set(victim_blocks)
    assert not ecfs.retire_osd(5)  # refuses while blocks remain
    _run_rebalance(ecfs, plan)
    assert all(ecfs.placement.home_of(b) != 5 for b in ecfs.known_blocks)
    assert ecfs.retire_osd(5)
    assert ecfs.osds[5].failed
    ecfs.drain()
    assert ecfs.verify() == 12


def test_reweight_sheds_proportional_load():
    ecfs = _cluster()
    ecfs.populate(n_files=4, stripes_per_file=6, fill="random")
    before = ecfs.placement_loads()[2]
    plan = ecfs.set_osd_weight(2, 0.25)
    _run_rebalance(ecfs, plan)
    after = ecfs.placement_loads()[2]
    assert after < before
    ecfs.drain()
    assert ecfs.verify() == 24


def test_rebalancer_honours_bandwidth_cap():
    ecfs = _cluster()
    ecfs.populate(n_files=3, stripes_per_file=4, fill="random")
    _osd, plan = ecfs.join_osd()
    cap = 8 * ecfs.config.block_size  # bytes/sec
    report = _run_rebalance(ecfs, plan, bandwidth_cap=cap, parallel=4)
    assert report.moved_blocks == len(plan.moves)
    # the shared token timeline keeps aggregate throughput under the cap:
    # n moves reserve (n-1) * bs / cap of timeline before the last starts
    min_seconds = (report.moved_blocks - 1) * ecfs.config.block_size / cap
    assert report.seconds >= min_seconds


def test_join_then_recovery_interoperates():
    """A crash after a join: lost_blocks follows actual homes (including
    freshly migrated ones) and the rebuilt cluster verifies."""
    from repro.cluster import RecoveryManager

    ecfs = _cluster()
    ecfs.populate(n_files=2, stripes_per_file=3, fill="random")
    _osd, plan = ecfs.join_osd()
    _run_rebalance(ecfs, plan)
    moved_home = {op.dst for op in plan.moves}
    assert 16 in moved_home  # newcomer actually hosts blocks
    manager = RecoveryManager(ecfs)
    ecfs.env.run(ecfs.env.process(manager.fail_and_recover(16), name="rec"))
    ecfs.drain()
    assert ecfs.verify() == 6


def test_rotation_policy_join_also_verifies():
    """Rotation reshuffles nearly everything on a join, but the epoch
    machinery still converges and verifies."""
    ecfs = _cluster(placement="rotation", n_osds=8)
    ecfs.populate(n_files=2, stripes_per_file=2, fill="random")
    _osd, plan = ecfs.join_osd()
    assert plan.fraction_moved > 0.5
    _run_rebalance(ecfs, plan)
    assert ecfs.placement.balanced()
    ecfs.drain()
    assert ecfs.verify() == 4


def test_joined_osd_heartbeats_and_is_not_declared_failed():
    """A node joining under a live HeartbeatService gets its own sender:
    the monitor must never declare the healthy newcomer dead (which would
    trigger a spurious rebuild in on_failure-wired scenarios)."""
    from repro.cluster import HeartbeatService

    ecfs = _cluster()
    ecfs.populate(n_files=2, stripes_per_file=2, fill="random")
    service = HeartbeatService(ecfs, interval=0.5, timeout=1.6)
    service.start()
    _osd, plan = ecfs.join_osd()
    _run_rebalance(ecfs, plan)
    # run well past the heartbeat timeout: the newcomer keeps beating
    ecfs.env.run(until=ecfs.env.now + 5.0)
    assert 16 not in ecfs.mds.failed
    assert not service.detected
    service.stop()
    assert service._watch not in ecfs.on_osd_joined  # deregistered


# ------------------------------------------------------- catalog scenarios
def test_topo_join_crush_scenario_meets_movement_bound():
    result = ScenarioRunner(get_scenario("topo-join-crush")).run(seed=11)
    assert result.epoch == 1
    assert len(result.rebalance_reports) == 1
    report = result.rebalance_reports[0]
    total_bytes = 144 * (64 << 10)
    assert report.moved_bytes <= 1.5 / 17 * total_bytes
    assert result.rebalance_stats["moved_bytes"] == report.moved_bytes


def test_topo_scenarios_are_seed_deterministic():
    a = ScenarioRunner(get_scenario("topo-join-crush")).run(seed=3)
    b = ScenarioRunner(get_scenario("topo-join-crush")).run(seed=3)
    assert a.digest == b.digest
    assert a.fault_log == b.fault_log


def test_apply_topology_batch_rack_join_is_one_epoch():
    """A whole-rack join folds into ONE epoch advance and ONE plan — no
    block migrates to an intermediate home a later join would re-move."""
    ecfs = _cluster()
    ecfs.populate(n_files=3, stripes_per_file=4, fill="random")
    joined, plan = ecfs.apply_topology_batch(
        [("join", {"weight": 1.0, "rack": 99}) for _ in range(4)]
    )
    assert len(joined) == 4
    assert len(ecfs.osds) == 20
    assert ecfs.placement.epoch == 1  # one advance for four joins
    report = _run_rebalance(ecfs, plan)
    assert report.moved_blocks == len(plan.moves)
    assert ecfs.placement.balanced()
    # the batch moves no more than the equivalent share of four sequential
    # joins would (and usually less: no intermediate-home churn)
    total = len(ecfs.known_blocks) * ecfs.config.block_size
    assert report.moved_bytes <= 1.5 * 4 / 20 * total
    ecfs.drain()
    assert ecfs.verify() == 12


def test_apply_topology_batch_mixed_events():
    """Join + reweight + decommission resolve in one epoch; the drained
    node's blocks land directly on final homes."""
    ecfs = _cluster()
    ecfs.populate(n_files=3, stripes_per_file=4, fill="random")
    joined, plan = ecfs.apply_topology_batch(
        [
            ("join", {"weight": 1.0}),
            ("weight", {"osd": 0, "weight": 0.5}),
            ("decommission", {"osd": 5}),
        ]
    )
    assert len(joined) == 1 and ecfs.placement.epoch == 1
    _run_rebalance(ecfs, plan)
    assert ecfs.placement.balanced()
    assert not any(
        ecfs.placement.home_of(b) == 5 for b in ecfs.known_blocks
    )
    assert ecfs.retire_osd(5)
    ecfs.drain()
    assert ecfs.verify() == 12


def test_apply_topology_batch_rejects_unknown_op():
    import pytest

    from repro.common.errors import ConfigError

    ecfs = _cluster()
    with pytest.raises(ConfigError):
        ecfs.apply_topology_batch([("explode", {})])
