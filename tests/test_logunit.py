"""Unit tests for LogUnit lifecycle and residence accounting."""

import numpy as np
import pytest

from repro.common.errors import IntegrityError
from repro.core.intervals import MergePolicy
from repro.core.logunit import LogUnit, LogUnitState, RawKey


def _unit(capacity=1024, merge=True):
    return LogUnit(0, capacity, MergePolicy.OVERWRITE, merge=merge)


def _bytes(n, fill=7):
    return np.full(n, fill, dtype=np.uint8)


def test_append_tracks_used_bytes():
    u = _unit()
    u.append("blk", 0, _bytes(100), now=1.0)
    u.append("blk", 200, _bytes(50), now=2.0)
    assert u.used == 150
    assert u.fits(1024 - 150)
    assert not u.fits(1024 - 150 + 1)


def test_append_overflow_rejected():
    u = _unit(capacity=10)
    with pytest.raises(IntegrityError):
        u.append("blk", 0, _bytes(11), now=0.0)


def test_lifecycle_transitions():
    u = _unit()
    u.append("blk", 0, _bytes(10), now=1.0)
    u.seal(2.0)
    assert u.state is LogUnitState.RECYCLABLE
    u.start_recycle(3.0)
    assert u.state is LogUnitState.RECYCLING
    u.finish_recycle(4.0)
    assert u.state is LogUnitState.RECYCLED
    u.reuse()
    assert u.state is LogUnitState.EMPTY
    assert u.used == 0
    assert len(u.index) == 0


def test_illegal_transitions_rejected():
    u = _unit()
    with pytest.raises(IntegrityError):
        u.start_recycle(0.0)  # not sealed yet
    u.seal(0.0)
    with pytest.raises(IntegrityError):
        u.append("blk", 0, _bytes(1), now=0.0)
    with pytest.raises(IntegrityError):
        u.seal(0.0)
    with pytest.raises(IntegrityError):
        u.reuse()  # not recycled yet


def test_residence_intervals():
    u = _unit()
    u.append("blk", 0, _bytes(10), now=1.0)
    u.seal(5.0)
    u.start_recycle(7.0)
    u.finish_recycle(9.5)
    assert u.buffer_interval == pytest.approx(6.0)  # first append -> recycle
    assert u.recycle_interval == pytest.approx(2.5)


def test_residence_none_before_events():
    u = _unit()
    assert u.buffer_interval is None
    assert u.recycle_interval is None


def test_merge_mode_merges_same_block():
    u = _unit()
    u.append("blk", 0, _bytes(10, 1), now=0.0)
    u.append("blk", 0, _bytes(10, 2), now=0.0)
    assert u.index.total_extents == 1


def test_raw_mode_keeps_every_record_in_order():
    u = _unit(merge=False)
    u.append("blk", 0, _bytes(10, 1), now=0.0)
    u.append("blk", 0, _bytes(10, 2), now=0.0)
    keys = list(u.index.blocks())
    assert keys == [RawKey("blk", 0), RawKey("blk", 1)]
    # latest record's payload is the later key's extent
    ext = next(iter(u.index.extents(RawKey("blk", 1))))
    assert ext.data[0] == 2


def test_reuse_resets_raw_sequence():
    u = _unit(merge=False)
    u.append("blk", 0, _bytes(10), now=0.0)
    u.seal(0.0)
    u.start_recycle(0.0)
    u.finish_recycle(0.0)
    u.reuse()
    u.append("blk", 0, _bytes(10), now=0.0)
    assert list(u.index.blocks()) == [RawKey("blk", 0)]
