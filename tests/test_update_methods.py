"""Correctness matrix: every update method, through the integrity oracle.

Each test replays a workload, drains the method's logs, and verifies that
every stripe's data blocks match the oracle byte-for-byte AND the parity
blocks equal a fresh RS encode — i.e. the update path preserved the
erasure-code invariant end-to-end.
"""

import numpy as np
import pytest

from repro.cluster import BlockId, ClusterConfig, ECFS
from repro.traces import TraceReplayer, generate_trace, tencloud_spec
from repro.update import METHODS
from repro.update.tsue import TSUEOptions

ALL_METHODS = sorted(METHODS)


def _cluster(method, seed=11, method_options=None, **cfg_kw):
    defaults = dict(
        n_osds=10, k=4, m=2, block_size=1 << 16, log_unit_size=1 << 17, seed=seed
    )
    defaults.update(cfg_kw)
    return ECFS(
        ClusterConfig(**defaults), method=method, method_options=method_options or {}
    )


def _replay(ecfs, n_ops=200, n_clients=8, seed=1):
    files = ecfs.populate(n_files=2, stripes_per_file=2, fill="random")
    fsize = ecfs.mds.lookup(files[0]).size
    trace = generate_trace(tencloud_spec(), n_ops, files, fsize, seed=seed)
    result = TraceReplayer(ecfs, trace).run(n_clients=n_clients)
    ecfs.drain()
    return files, result


@pytest.mark.parametrize("method", ALL_METHODS)
def test_stripes_verify_after_replay(method):
    ecfs = _cluster(method)
    _files, result = _replay(ecfs)
    assert result.updates > 0
    assert ecfs.verify() == 4  # 2 files x 2 stripes
    assert ecfs.total_log_debt() == 0


@pytest.mark.parametrize("method", ALL_METHODS)
def test_single_update_roundtrip(method):
    """One update to one offset: data lands, parity updates, time advances."""
    ecfs = _cluster(method, seed=5)
    files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    (client,) = ecfs.add_clients(1)
    ecfs.env.run(ecfs.env.process(client.update(files[0], 12345, 4000)))
    ecfs.drain()
    assert ecfs.verify() == 1
    assert ecfs.metrics.updates.count == 1
    assert ecfs.metrics.latency_stats()["mean"] > 0


@pytest.mark.parametrize("method", ALL_METHODS)
def test_concurrent_same_offset_updates_serialize(method):
    """Hammer one 4K range from many clients: last committed wins and
    parity must still verify (the lost-update hazard)."""
    ecfs = _cluster(method, seed=6)
    files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    clients = ecfs.add_clients(8)

    def one(client):
        for _ in range(5):
            yield ecfs.env.process(client.update(files[0], 8192, 4096))

    procs = [ecfs.env.process(one(c)) for c in clients]
    ecfs.env.run(ecfs.env.all_of(procs))
    ecfs.drain()
    assert ecfs.verify() == 1


@pytest.mark.parametrize("method", ALL_METHODS)
def test_cross_block_boundary_update_clamped(method):
    """An update reaching past a block boundary is clamped to the block."""
    ecfs = _cluster(method, seed=7)
    files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    (client,) = ecfs.add_clients(1)
    bs = ecfs.config.block_size
    ecfs.env.run(ecfs.env.process(client.update(files[0], bs - 2048, 8192)))
    ecfs.drain()
    assert ecfs.verify() == 1


@pytest.mark.parametrize("method", ALL_METHODS)
def test_read_after_update_not_stale(method):
    """Reads served during the log-buffered window must see new data."""
    ecfs = _cluster(method, seed=8)
    files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    (client,) = ecfs.add_clients(1)

    def flow():
        yield ecfs.env.process(client.update(files[0], 0, 4096))
        data = yield ecfs.env.process(client.read(files[0], 0, 4096))
        return data

    data = ecfs.env.run(ecfs.env.process(flow()))
    expected = ecfs.oracle.expected(BlockId(files[0], 0, 0))[:4096]
    assert np.array_equal(data, expected)


def test_tsue_partial_overlap_read_merges_log():
    """TSUE's overlay path: update 4K, read 8K spanning it."""
    ecfs = _cluster("tsue", seed=9)
    files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    (client,) = ecfs.add_clients(1)

    def flow():
        yield ecfs.env.process(client.update(files[0], 4096, 4096))
        data = yield ecfs.env.process(client.read(files[0], 0, 8192))
        return data

    data = ecfs.env.run(ecfs.env.process(flow()))
    expected = ecfs.oracle.expected(BlockId(files[0], 0, 0))[:8192]
    assert np.array_equal(data, expected)


@pytest.mark.parametrize(
    "step,opts", sorted(TSUEOptions.breakdown().items())
)
def test_tsue_breakdown_variants_all_correct(step, opts):
    """Every fig.7 feature-ladder variant must still be byte-correct."""
    ecfs = _cluster("tsue", seed=13, method_options={"options": opts})
    _files, result = _replay(ecfs, n_ops=150)
    assert result.updates > 0
    assert ecfs.verify() == 4


def test_tsue_hdd_variant_correct():
    opts = TSUEOptions.hdd()
    ecfs = _cluster(
        "tsue", seed=14, method_options={"options": opts}, device="hdd"
    )
    _files, _result = _replay(ecfs, n_ops=100, n_clients=4)
    assert ecfs.verify() == 4


@pytest.mark.parametrize("m", [1, 2, 3, 4])
def test_tsue_works_across_parity_counts(m):
    ecfs = _cluster("tsue", seed=15, m=m, n_osds=12)
    _files, _result = _replay(ecfs, n_ops=120, n_clients=4)
    assert ecfs.verify() == 4


def test_parix_cold_path_ships_old_data():
    """First-touch updates must generate the extra (old-data) transfers."""
    ecfs = _cluster("parix", seed=16)
    files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    (client,) = ecfs.add_clients(1)
    env = ecfs.env
    env.run(env.process(client.update(files[0], 0, 4096)))
    cold_msgs = ecfs.net.total_msgs
    env.run(env.process(client.update(files[0], 0, 4096)))
    warm_msgs = ecfs.net.total_msgs - cold_msgs
    # cold: client->osd + m*(new + nack + old) + ack; warm: client + m*new + ack
    assert cold_msgs > warm_msgs


def test_tsue_update_never_touches_data_block_in_foreground():
    """The two-stage split: foreground update issues NO random block I/O on
    the data OSD — only sequential log appends."""
    ecfs = _cluster("tsue", seed=17)
    files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    (client,) = ecfs.add_clients(1)
    block, _ = ecfs.mds.locate(files[0], 0, ecfs.rs.k)
    osd = ecfs.osd_hosting(block)
    before_reads = osd.device.counters.reads
    ecfs.env.run(ecfs.env.process(client.update(files[0], 0, 4096)))
    # no read happened on the data path (the RMW is deferred to recycle)
    assert osd.device.counters.reads == before_reads


def test_fo_has_zero_log_debt_always():
    ecfs = _cluster("fo", seed=18)
    _replay(ecfs, n_ops=60, n_clients=4)
    assert ecfs.total_log_debt() == 0


def test_pl_accumulates_then_flushes_debt():
    ecfs = _cluster("pl", seed=19)
    files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    (client,) = ecfs.add_clients(1)
    ecfs.env.run(ecfs.env.process(client.update(files[0], 0, 4096)))
    assert ecfs.total_log_debt() > 0  # parity deltas parked in the log
    ecfs.drain()
    assert ecfs.total_log_debt() == 0
    assert ecfs.verify() == 1
