"""Unit tests for device models, wear accounting, and the block store."""

import numpy as np
import pytest

from repro.common.errors import IntegrityError
from repro.sim import Environment
from repro.storage import (
    BlockStore,
    FlashWearModel,
    HDDevice,
    HDDParams,
    IOKind,
    IORequest,
    SSDevice,
    SSDParams,
)
from repro.storage.base import IOPriority


def _io(env, dev, *reqs):
    def proc():
        for r in reqs:
            yield env.process(dev.submit(r))

    env.run(env.process(proc()))


# ------------------------------------------------------------------- SSD
def test_ssd_sequential_detection():
    env = Environment()
    ssd = SSDevice(env, "s")
    _io(
        env, ssd,
        IORequest(IOKind.WRITE, 0, 4096, stream="log"),
        IORequest(IOKind.WRITE, 4096, 4096, stream="log"),
        IORequest(IOKind.WRITE, 1 << 30, 4096, stream="log"),  # jump: random
    )
    assert ssd.counters.seq_ops == 1
    assert ssd.counters.rand_ops == 2


def test_ssd_streams_tracked_independently():
    env = Environment()
    ssd = SSDevice(env, "s")
    _io(
        env, ssd,
        IORequest(IOKind.WRITE, 0, 4096, stream="a"),
        IORequest(IOKind.WRITE, 1 << 20, 4096, stream="b"),
        IORequest(IOKind.WRITE, 4096, 4096, stream="a"),  # sequential in a
        IORequest(IOKind.WRITE, (1 << 20) + 4096, 4096, stream="b"),
    )
    assert ssd.counters.seq_ops == 2


def test_ssd_random_slower_than_sequential():
    env = Environment()
    ssd = SSDevice(env, "s")
    p = ssd.params
    seq = IORequest(IOKind.READ, 4096, 4096, stream="s")
    rand = IORequest(IOKind.READ, 1 << 28, 4096, stream="r")
    ssd._stream_end["s"] = 4096  # prime sequential history
    assert ssd.estimate(rand) > 3 * ssd.estimate(seq)
    assert ssd.estimate(rand) == pytest.approx(p.rand_read_lat + 4096 / p.seq_read_bw)


def test_ssd_queueing_serializes_beyond_channels():
    env = Environment()
    ssd = SSDevice(env, "s", SSDParams(channels=1))
    t_one = ssd.estimate(IORequest(IOKind.READ, 1 << 28, 4096, stream="x"))
    reqs = [IORequest(IOKind.READ, (i + 7) << 28, 4096, stream=f"r{i}") for i in range(4)]
    done = []

    def proc(r):
        yield env.process(ssd.submit(r))
        done.append(env.now)

    for r in reqs:
        env.process(proc(r))
    env.run()
    # each service time lands on the engine's integer-microsecond grid
    assert done[-1] == pytest.approx(4 * round(t_one * 1e6) / 1e6)


def test_ssd_priority_queue_favors_foreground():
    env = Environment()
    ssd = SSDevice(env, "s", SSDParams(channels=1))
    order = []

    def submit(tag, prio, delay):
        yield env.timeout(delay)
        yield env.process(
            ssd.submit(
                IORequest(IOKind.READ, hash(tag) % (1 << 30), 4096,
                          stream=tag, priority=prio)
            )
        )
        order.append(tag)

    env.process(submit("hold", IOPriority.FOREGROUND, 0))
    env.process(submit("bg", IOPriority.BACKGROUND, 1e-6))
    env.process(submit("fg", IOPriority.FOREGROUND, 2e-6))
    env.run()
    assert order == ["hold", "fg", "bg"]


def test_counters_overwrite_accounting():
    env = Environment()
    ssd = SSDevice(env, "s")
    _io(
        env, ssd,
        IORequest(IOKind.WRITE, 0, 4096, stream="x", overwrite=True),
        IORequest(IOKind.WRITE, 1 << 20, 8192, stream="x"),
        IORequest(IOKind.READ, 0, 4096, stream="x"),
    )
    c = ssd.counters
    assert c.writes == 2 and c.reads == 1
    assert c.overwrites == 1
    assert c.overwrite_bytes == 4096
    assert c.write_bytes == 4096 + 8192


def test_invalid_requests_rejected():
    with pytest.raises(ValueError):
        IORequest(IOKind.READ, 0, 0)
    with pytest.raises(ValueError):
        IORequest(IOKind.READ, -1, 10)


# ------------------------------------------------------------------- HDD
def test_hdd_seek_dominates_random():
    env = Environment()
    hdd = HDDevice(env, "h")
    p = hdd.params
    rand = IORequest(IOKind.READ, 1 << 30, 4096, stream="r")
    est = hdd.estimate(rand)
    assert est == pytest.approx(p.avg_seek + p.avg_rotation + 4096 / p.seq_bw)
    # the random/sequential gap on HDD is much larger than on SSD
    hdd._stream_end["s"] = 4096
    seq = IORequest(IOKind.READ, 4096, 4096, stream="s")
    assert est / hdd.estimate(seq) > 50


def test_hdd_single_channel():
    env = Environment()
    hdd = HDDevice(env, "h")
    assert hdd.resource.capacity == 1


# ------------------------------------------------------------------ wear
def test_wear_random_write_programs_full_page():
    w = FlashWearModel(page_size=16384)
    w.record_write(4096, sequential=False, overwrite=False, stream="x")
    assert w.page_programs == 1  # 4K random write burns a full page


def test_wear_sequential_appends_coalesce():
    w = FlashWearModel(page_size=16384)
    for _ in range(4):
        w.record_write(4096, sequential=True, overwrite=False, stream="log")
    assert w.page_programs == 1  # 4 x 4K appends fill exactly one page
    w.record_write(4096, sequential=True, overwrite=False, stream="log")
    w.flush()
    assert w.page_programs == 2  # partial page flushed at end


def test_wear_overwrites_drive_gc():
    w = FlashWearModel(page_size=16384, pages_per_block=256, gc_live_fraction=0.25)
    for _ in range(192):
        w.record_write(4096, sequential=False, overwrite=True, stream="x")
    # 192 invalidated pages / (256 * 0.75) reclaimed per erase = 1 GC erase
    assert w.gc_erases == pytest.approx(1.0)
    assert w.total_erases > w.capacity_erases


def test_wear_lifespan_factor():
    light = FlashWearModel()
    heavy = FlashWearModel()
    light.record_write(16384, sequential=False, overwrite=False, stream="x")
    for _ in range(10):
        heavy.record_write(16384, sequential=False, overwrite=True, stream="x")
    assert light.lifespan_factor_vs(heavy) > 5


def test_wear_invalid_size():
    with pytest.raises(ValueError):
        FlashWearModel().record_write(0, sequential=False, overwrite=False)


# ------------------------------------------------------------- block store
def test_blockstore_roundtrip():
    bs = BlockStore(1024)
    data = np.arange(1024, dtype=np.uint8)
    bs.create("b", data)
    assert np.array_equal(bs.read("b"), data)
    assert np.array_equal(bs.read("b", 100, 10), data[100:110])


def test_blockstore_write_and_xor():
    bs = BlockStore(64)
    bs.write("b", 10, np.full(4, 5, dtype=np.uint8))
    bs.xor_in("b", 10, np.full(4, 3, dtype=np.uint8))
    assert (bs.read("b", 10, 4) == (5 ^ 3)).all()


def test_blockstore_bounds_checked():
    bs = BlockStore(64)
    bs.ensure("b")
    with pytest.raises(IntegrityError):
        bs.read("b", 60, 10)
    with pytest.raises(IntegrityError):
        bs.write("b", -1, np.ones(4, dtype=np.uint8))
    with pytest.raises(IntegrityError):
        bs.read("missing")


def test_blockstore_create_twice_rejected():
    bs = BlockStore(16)
    bs.create("b")
    with pytest.raises(IntegrityError):
        bs.create("b")


def test_blockstore_view_readonly():
    bs = BlockStore(16)
    bs.create("b")
    view = bs.view("b")
    with pytest.raises(ValueError):
        view[0] = 1


def test_blockstore_wrong_size_create():
    bs = BlockStore(16)
    with pytest.raises(IntegrityError):
        bs.create("b", np.zeros(8, dtype=np.uint8))
